"""Exception hierarchy for the SDAM reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without catching programming errors.
The sub-classes mirror the major subsystems: address-mapping math, the
chunk-mapping table, the OS memory allocators, and the simulators.
"""

from __future__ import annotations

import warnings

_DEPRECATION_WARNED: set[str] = set()


def warn_deprecated_once(key: str, message: str, stacklevel: int = 3) -> None:
    """Emit a :class:`DeprecationWarning` once per process per ``key``.

    The deprecation shims (``Machine(memory_model=...)``, the engines'
    ``backend_hints()``) warn through this so a sweep over thousands of
    cells does not repeat the same warning thousands of times.
    """
    if key in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


class ReproError(Exception):
    """Base class for all library errors."""


class MappingError(ReproError):
    """An address mapping is malformed (not a permutation, wrong width...)."""


class MappingIntegrityError(MappingError):
    """A strict-mode verification check failed on live translation state.

    Carries enough context for a runtime scrubber to act on: ``code``
    distinguishes corrupt CMT state (``"cmt-binding"``, ``"cmt-config"``)
    from a bad user mapping (``"bijectivity"``) or a broken datapath
    (``"translation"``); ``chunk_no``/``mapping_index`` locate the
    failure when known.
    """

    def __init__(
        self,
        message: str,
        code: str = "",
        chunk_no: int | None = None,
        mapping_index: int | None = None,
    ):
        super().__init__(message)
        self.code = code
        self.chunk_no = chunk_no
        self.mapping_index = mapping_index


class CMTError(ReproError):
    """Chunk-mapping-table misuse: unknown chunk, table overflow, etc."""


class AllocationError(ReproError):
    """Physical or virtual memory could not be allocated."""


class OutOfMemoryError(AllocationError):
    """No free chunks/frames/heap space remain."""


class AddressError(ReproError):
    """An address is outside the valid physical/virtual range."""


class ConfigError(ReproError):
    """A configuration object is internally inconsistent."""


class SimulationError(ReproError):
    """The memory simulator was driven into an invalid state."""


class ProfilingError(ReproError):
    """Profiling data is missing or inconsistent (unknown variable...)."""


class TrainingError(ReproError):
    """A machine-learning component failed to train or converge."""


class CacheCorruptionError(ReproError):
    """A stage-cache entry failed its checksum or could not be decoded.

    The store never propagates this to sweep code — the entry is
    quarantined and reported as a miss — but maintenance ops
    (``StageStore.verify``) and tests see it directly.
    """


class WorkerCrashError(ReproError):
    """A worker process died (or was made to die) mid-stage.

    Raised by injected ``raise`` faults and used to classify broken
    process pools; it is in the default retry class set, so a crashed
    cell is re-executed rather than recorded as failed.
    """


class RetryExhaustedError(ReproError):
    """A transient failure persisted through every allowed attempt."""


class BackendExecutionError(SimulationError):
    """A memory backend's guarded execution could not be completed.

    Raised when every recovery path for a sharded run — per-shard
    retries, re-dispatch, shard-granular serial fallback — has been
    exhausted.  The attached :class:`~repro.hbm.stats.BackendHealth`
    (``health``) records every degradation attempted on the way down.
    """

    def __init__(self, message: str, health=None):
        super().__init__(message)
        self.health = health


class BackendDivergenceError(SimulationError):
    """The runtime divergence guard found a cross-tier mismatch.

    Raised in ``mode="raise"`` when a sampled decoded chunk replayed
    through the reference tier disagrees with the primary tier beyond
    the declared tolerance (in ``mode="demote"`` the run degrades to
    the reference tier instead).  ``report`` is the structured
    divergence report (sampled chunk, both tiers' numbers, the
    tolerance band violated).
    """

    def __init__(self, message: str, report: dict | None = None):
        super().__init__(message)
        self.report = dict(report or {})


class ServiceError(ReproError):
    """The multi-tenant serving layer could not accept or finish work."""


class ServiceOverloadError(ServiceError):
    """Admission control shed a job instead of queueing it.

    Raised by the continuous front-end when a tenant's lane queue (or
    the service-wide pending bound) is full.  Shedding is structured,
    never silent: the shed is journaled in the
    :class:`~repro.service.health.ServiceHealth` before this is raised,
    and ``retry_after_s`` tells the client when resubmitting is likely
    to succeed (an estimate from the lane's observed service rate).
    """

    def __init__(
        self,
        message: str,
        tenant: str | None = None,
        retry_after_s: float = 0.0,
    ):
        super().__init__(message)
        self.tenant = tenant
        self.retry_after_s = float(retry_after_s)


class TenantQuarantinedError(ServiceError):
    """A job was submitted to a tenant the supervisor has quarantined.

    The tenant's lane accumulated too many strikes (crashes, exhausted
    retries) and is serving a probation window before its lane is
    restarted from a rebuilt context.  ``until_s`` is the remaining
    probation time when known.
    """

    def __init__(
        self,
        message: str,
        tenant: str | None = None,
        until_s: float | None = None,
    ):
        super().__init__(message)
        self.tenant = tenant
        self.until_s = until_s


class RASError(ReproError):
    """The RAS subsystem was misused or could not complete a repair."""


class DeviceFaultError(RASError):
    """A device fault specification is malformed (bad site, bad target)."""


class CampaignInterrupted(ReproError):
    """A long-running campaign stopped at a checkpoint before finishing.

    Raised by the deterministic ``stop_after`` test/CI hook (modelling
    a mid-campaign kill) after the checkpoint has been persisted;
    ``checkpoint_path`` names the file a ``resume`` run continues from.
    """

    def __init__(self, message: str, checkpoint_path: str | None = None):
        super().__init__(message)
        self.checkpoint_path = checkpoint_path
