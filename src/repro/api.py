"""Convenience surface: one import for the common SDAM workflows.

The primary entry point is :class:`Session` — it owns a stage cache
and a worker pool, so every run/compare/sweep gets memoisation and
parallelism by default::

    from repro import Session

    session = Session(workers=4)
    result = session.run(mixed_stride_workload(), "sdm_bsm_ml4")
    sweep = session.sweep(workloads)          # cached + parallel
    sweep.table.geomean("SDM+BSM+ML(4)")

For anything beyond these helpers, use the subsystem packages directly
(``repro.core``, ``repro.hbm``, ``repro.mem``, ``repro.cpu``,
``repro.profiling``, ``repro.ml``, ``repro.workloads``,
``repro.system``).

The pre-Session helpers (``build_machine``, ``compare_systems``,
``full_evaluation``) remain as deprecated shims.
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path

from repro.core import (
    ChunkGeometry,
    MappingSelection,
    SDAMController,
    select_application_mapping,
)
from repro.faults import FaultPlan
from repro.hbm import HBMConfig, WindowModel, hbm2_config
from repro.ml import AutoencoderConfig
from repro.online import (
    AdaptiveCampaignResult,
    AdaptiveController,
    run_adaptive_campaign,
)
from repro.ras import (
    CampaignResult,
    DeviceFaultPlan,
    DeviceFaultSpec,
    RASReport,
)
from repro.ras import run_campaign as run_ras_campaign
from repro.errors import ServiceOverloadError, TenantQuarantinedError
from repro.service import (
    JobHandle,
    LaneSupervisor,
    MappingService,
    ServiceCampaignResult,
    ServiceFrontend,
    ServiceHealth,
    SharedArtifacts,
    TenantContext,
    TenantRegistry,
    TenantSpec,
    run_service_campaign,
)
from repro.system import (
    ExperimentRunner,
    Machine,
    MachineResult,
    RetryPolicy,
    SpeedupTable,
    SuiteResult,
    SystemConfig,
    run_suite,
    standard_systems,
    system_by_key,
)
from repro.workloads import (
    MixedStrideWorkload,
    StridedCopyWorkload,
    Workload,
    data_intensive_suite,
    parsec_suite,
    spec2006_suite,
)

__all__ = [
    "AdaptiveCampaignResult",
    "AdaptiveController",
    "CampaignResult",
    "DeviceFaultPlan",
    "DeviceFaultSpec",
    "FaultPlan",
    "JobHandle",
    "LaneSupervisor",
    "MappingSelection",
    "MappingService",
    "RASReport",
    "RetryPolicy",
    "ServiceCampaignResult",
    "ServiceFrontend",
    "ServiceHealth",
    "ServiceOverloadError",
    "Session",
    "SharedArtifacts",
    "TenantQuarantinedError",
    "TenantContext",
    "TenantRegistry",
    "TenantSpec",
    "run_adaptive_campaign",
    "run_ras_campaign",
    "run_service_campaign",
    "select_application_mapping",
    "default_cache_dir",
    "evaluation_workloads",
    "strided_workload",
    "mixed_stride_workload",
    # deprecated shims
    "build_machine",
    "compare_systems",
    "full_evaluation",
]

QUICK_DL_CONFIG = AutoencoderConfig(pretrain_steps=40, joint_steps=20)

_UNSET = object()  # "use the default cache dir" sentinel


def default_cache_dir() -> str:
    """The default on-disk stage cache location.

    ``$REPRO_CACHE_DIR`` wins; otherwise a ``repro-sdam`` directory
    under ``$XDG_CACHE_HOME`` (or ``~/.cache``).
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME") or str(Path.home() / ".cache")
    return str(Path(xdg) / "repro-sdam")


def _resolve_system(system: str | SystemConfig) -> SystemConfig:
    return system if isinstance(system, SystemConfig) else system_by_key(system)


class Session:
    """An experiment session: one stage cache, one worker budget.

    Every ``run``/``compare``/``sweep`` goes through a shared
    :class:`~repro.system.runner.ExperimentRunner`, so profiling
    passes, mapping selections and whole results are computed once and
    reused — across systems, across calls, and (through the on-disk
    cache) across processes.

    Parameters
    ----------
    cache_dir:
        Stage-cache directory.  Defaults to :func:`default_cache_dir`;
        pass ``None`` to keep the cache in memory only.
    workers:
        Worker processes for independent cells.  ``0``/``1`` is
        serial in-process; ``None`` picks a small machine-appropriate
        default.
    cell_timeout:
        Per-cell time budget (seconds) for parallel sweeps; an
        overrunning cell is recorded as an error instead of stalling
        the sweep.
    retry:
        A :class:`~repro.system.RetryPolicy` for transiently failing
        cells (crashed workers, I/O flakes).  Defaults to three
        attempts with exponential backoff; ``RetryPolicy.none()``
        records every failure immediately.
    faults:
        A :class:`~repro.faults.FaultPlan` injecting failures at
        named engine sites, for resilience testing.  Defaults to the
        ``$REPRO_FAULT_PLAN`` environment hook (unset = no faults).
    machine_kwargs:
        Platform configuration forwarded to every
        :class:`~repro.system.machine.Machine` (``hbm``, ``geometry``,
        ``engine``, ``cores``, ``dl_config``, ...).
    """

    def __init__(
        self,
        cache_dir: str | None | object = _UNSET,
        workers: int | None = None,
        cell_timeout: float | None = None,
        retry: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
        **machine_kwargs,
    ):
        if cache_dir is _UNSET:
            cache_dir = default_cache_dir()
        if workers is None:
            workers = min(4, os.cpu_count() or 1)
        self.machine_kwargs = machine_kwargs
        self.runner = ExperimentRunner(
            cache_dir=cache_dir,
            max_workers=workers,
            cell_timeout=cell_timeout,
            retry_policy=retry,
            faults=faults,
        )

    # -- introspection -------------------------------------------------------
    @property
    def cache_dir(self) -> str | None:
        """Where stage outputs are persisted (None = memory only)."""
        return self.runner.cache_dir

    @property
    def workers(self) -> int:
        """The configured worker-process budget."""
        return self.runner.max_workers

    def __repr__(self) -> str:
        return (
            f"Session(cache_dir={self.cache_dir!r}, workers={self.workers})"
        )

    # -- the API -------------------------------------------------------------
    def _machine_kwargs(
        self,
        backend: str | None,
        guard: bool | None = None,
        guard_sample: float | None = None,
    ) -> dict:
        """Session-wide machine kwargs, with per-call overrides.

        ``backend`` picks the memory fidelity tier for one call;
        ``guard``/``guard_sample`` switch the cross-tier divergence
        guard on (or off) for one call without rebuilding the session.
        """
        kwargs = dict(self.machine_kwargs)
        if backend is not None:
            kwargs["backend"] = backend
        if guard is not None:
            kwargs["guard"] = guard
        if guard_sample is not None:
            kwargs["guard_sample"] = guard_sample
        return kwargs

    def run(
        self,
        workload: Workload,
        system: str | SystemConfig = "sdm_bsm",
        *,
        profile_seed: int = 0,
        eval_seed: int = 1,
        backend: str | None = None,
        guard: bool | None = None,
        guard_sample: float | None = None,
    ) -> MachineResult:
        """One workload under one system, cached.

        ``backend`` selects the memory fidelity tier (``"fast"``,
        ``"vector"``, ``"event"``) for this call, overriding the
        session-wide machine configuration.  ``guard=True`` wraps the
        chosen tier in a :class:`~repro.hbm.guard.GuardedBackend` that
        replays a deterministic sample of chunks through the
        event-driven reference and demotes (or raises) on divergence;
        the verdict rides on ``result.backend_health``.
        """
        return self.runner.run_one(
            workload,
            _resolve_system(system),
            profile_seed=profile_seed,
            eval_seed=eval_seed,
            **self._machine_kwargs(backend, guard, guard_sample),
        )

    def compare(
        self,
        workload: Workload,
        systems: tuple[str | SystemConfig, ...] = (
            "bs_dm",
            "bs_hm",
            "sdm_bsm",
            "sdm_bsm_ml4",
        ),
        *,
        profile_seed: int = 0,
        eval_seed: int = 1,
        backend: str | None = None,
        guard: bool | None = None,
        guard_sample: float | None = None,
    ) -> dict[str, MachineResult]:
        """One workload under several systems, keyed by the *caller's*
        system key (so duplicate labels cannot collide)."""
        results: dict[str, MachineResult] = {}
        for system in systems:
            config = _resolve_system(system)
            key = system if isinstance(system, str) else config.key
            results[key] = self.run(
                workload,
                config,
                profile_seed=profile_seed,
                eval_seed=eval_seed,
                backend=backend,
                guard=guard,
                guard_sample=guard_sample,
            )
        return results

    def sweep(
        self,
        workloads: list[Workload],
        systems: list[SystemConfig | str] | None = None,
        *,
        profile_seed: int = 0,
        eval_seed: int = 1,
        resume: bool = False,
        backend: str | None = None,
        guard: bool | None = None,
        guard_sample: float | None = None,
    ) -> SuiteResult:
        """Every workload under every system: cached, parallel, and
        failure-isolated.

        Returns a :class:`~repro.system.runner.SuiteResult` carrying
        the speedup table, per-stage metrics (wall time, cache
        hits/misses, bytes simulated) and any per-cell errors.

        ``resume=True`` finishes an interrupted or partially failed
        sweep: cells the sweep manifest records as healthy are served
        from the stage cache with zero recomputation, and only failed
        or missing cells re-run.
        """
        resolved = (
            [_resolve_system(s) for s in systems] if systems else None
        )
        return self.runner.run_suite(
            workloads,
            systems=resolved,
            profile_seed=profile_seed,
            eval_seed=eval_seed,
            resume=resume,
            **self._machine_kwargs(backend, guard, guard_sample),
        )

    def full_evaluation(self, *, quick: bool = True) -> SuiteResult:
        """The Fig. 12 sweep: all workloads x all systems.

        ``quick=True`` trims the suites and uses a small DL
        configuration; ``quick=False`` reproduces the full benchmark
        run (minutes, cold).
        """
        workloads = evaluation_workloads(quick=quick)
        if quick:
            self.machine_kwargs.setdefault("dl_config", QUICK_DL_CONFIG)
        return self.sweep(workloads, systems=standard_systems())

    def ras_campaign(
        self,
        seed: int = 0,
        kinds=None,
        *,
        quick: bool = True,
        backend: str | None = None,
        guard: bool | None = None,
        guard_sample: float | None = None,
        checkpoint_path: str | None = None,
        resume: bool = False,
    ):
        """Seeded device-fault campaign: inject, detect, repair, verify.

        Builds a faulty machine and a clean twin (honouring any ``hbm``
        / ``geometry`` overrides this session was created with), drives
        both with identical traffic while injecting one fault per
        requested kind, and checks that every fault is repaired by
        software-defined remapping — or explicitly reported as graceful
        degradation — with zero silent corruption.  Returns a
        :class:`~repro.ras.campaign.CampaignResult`.
        """
        from repro.ras.campaign import ALL_KINDS, run_campaign

        overrides = {}
        if "hbm" in self.machine_kwargs:
            overrides["config"] = self.machine_kwargs["hbm"]
        if "geometry" in self.machine_kwargs:
            overrides["geometry"] = self.machine_kwargs["geometry"]
        chosen = backend or self.machine_kwargs.get("backend")
        if chosen is not None:
            overrides["backend"] = chosen
        wants_guard = (
            guard if guard is not None
            else bool(self.machine_kwargs.get("guard"))
        )
        if wants_guard:
            overrides["guard"] = True
            chosen_sample = (
                guard_sample
                if guard_sample is not None
                else self.machine_kwargs.get("guard_sample")
            )
            if chosen_sample is not None:
                overrides["guard_sample"] = chosen_sample
        if checkpoint_path is not None:
            overrides["checkpoint_path"] = checkpoint_path
            overrides["resume"] = resume
        return run_campaign(
            seed=seed, kinds=kinds or ALL_KINDS, quick=quick, **overrides
        )

    def adaptive_campaign(
        self,
        seed: int = 0,
        *,
        quick: bool = True,
        backend: str | None = None,
        guard: bool | None = None,
        guard_sample: float | None = None,
        checkpoint_path: str | None = None,
        resume: bool = False,
        **campaign_kwargs,
    ) -> AdaptiveCampaignResult:
        """Seeded online-adaptation campaign: adaptive vs best static.

        Runs the phase-shifting workload on an adaptive machine (the
        :class:`~repro.online.controller.AdaptiveController` migrating
        mappings live) and under every relevant static mapping,
        honouring any ``hbm`` / ``geometry`` overrides this session was
        created with.  Returns an
        :class:`~repro.online.campaign.AdaptiveCampaignResult`.
        """
        overrides = dict(campaign_kwargs)
        if "hbm" in self.machine_kwargs:
            overrides.setdefault("config", self.machine_kwargs["hbm"])
        if "geometry" in self.machine_kwargs:
            overrides.setdefault("geometry", self.machine_kwargs["geometry"])
        chosen = backend or self.machine_kwargs.get("backend")
        if chosen is not None:
            overrides.setdefault("backend", chosen)
        wants_guard = (
            guard if guard is not None
            else bool(self.machine_kwargs.get("guard"))
        )
        if wants_guard:
            overrides.setdefault("guard", True)
            chosen_sample = (
                guard_sample
                if guard_sample is not None
                else self.machine_kwargs.get("guard_sample")
            )
            if chosen_sample is not None:
                overrides.setdefault("guard_sample", chosen_sample)
        if checkpoint_path is not None:
            overrides.setdefault("checkpoint_path", checkpoint_path)
            overrides.setdefault("resume", resume)
        return run_adaptive_campaign(seed=seed, quick=quick, **overrides)

    def service_campaign(
        self,
        seed: int = 0,
        tenants: int = 3,
        *,
        quick: bool = True,
        controllers: bool = True,
    ) -> ServiceCampaignResult:
        """Multi-tenant isolation selftest for the service layer.

        Admits ``tenants`` tenant contexts over shared immutable
        artifacts, runs each solo and then all concurrently (plus a
        fault-injection leg and, with ``controllers=True``, concurrent
        per-tenant adaptive/RAS campaigns), and checks every tenant's
        fingerprint is bit-identical across legs.  Returns a
        :class:`~repro.service.campaign.ServiceCampaignResult`; its
        ``isolated`` property is the verdict.
        """
        return run_service_campaign(
            seed=seed,
            tenants=tenants,
            quick=quick,
            controllers=controllers,
        )


def evaluation_workloads(*, quick: bool = True) -> list[Workload]:
    """The Fig. 12 workload population (trimmed when ``quick``)."""
    workloads = spec2006_suite() + parsec_suite() + data_intensive_suite()
    return workloads[:4] if quick else workloads


def strided_workload(stride_lines: int = 16, **kwargs) -> Workload:
    """The paper's synthetic data copy at one stride."""
    return StridedCopyWorkload(stride_lines=stride_lines, **kwargs)


def mixed_stride_workload(
    strides: tuple[int, ...] = (1, 4, 8, 16), **kwargs
) -> Workload:
    """The four-pattern mix of Fig. 4 / Fig. 11."""
    return MixedStrideWorkload(strides=strides, **kwargs)


# ---------------------------------------------------------------------------
# Deprecated shims (pre-Session surface)
# ---------------------------------------------------------------------------

def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.api.{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def build_machine(system: str = "sdm_bsm", **machine_kwargs) -> Machine:
    """Deprecated: build a Machine directly or use :class:`Session`."""
    _deprecated("build_machine", "repro.Machine / Session.run")
    return Machine(system_by_key(system), **machine_kwargs)


def compare_systems(
    workload: Workload,
    *,
    system_keys: tuple[str, ...] = ("bs_dm", "bs_hm", "sdm_bsm", "sdm_bsm_ml4"),
    **machine_kwargs,
) -> dict[str, MachineResult]:
    """Deprecated: use :meth:`Session.compare`.

    Results are keyed by the *requested* system key (historically they
    were keyed by the system label, which silently overwrote entries
    when two configurations shared a label).
    """
    _deprecated("compare_systems", "Session.compare")
    session = Session(cache_dir=None, workers=0, **machine_kwargs)
    return session.compare(workload, system_keys)


def full_evaluation(*, quick: bool = True, **machine_kwargs) -> SpeedupTable:
    """Deprecated: use :meth:`Session.full_evaluation`.

    Returns the bare :class:`SpeedupTable` (the Session variant also
    carries stage metrics and error capture).
    """
    _deprecated("full_evaluation", "Session.full_evaluation")
    session = Session(cache_dir=None, workers=0, **machine_kwargs)
    return session.full_evaluation(quick=quick).raise_errors().table
