"""Convenience surface: one import for the common SDAM workflows.

For anything beyond these helpers, use the subsystem packages directly
(``repro.core``, ``repro.hbm``, ``repro.mem``, ``repro.cpu``,
``repro.profiling``, ``repro.ml``, ``repro.workloads``,
``repro.system``).
"""

from __future__ import annotations

from repro.core import ChunkGeometry, SDAMController
from repro.hbm import HBMConfig, WindowModel, hbm2_config
from repro.ml import AutoencoderConfig
from repro.system import (
    Machine,
    MachineResult,
    run_suite,
    standard_systems,
    system_by_key,
)
from repro.workloads import (
    MixedStrideWorkload,
    StridedCopyWorkload,
    Workload,
    data_intensive_suite,
    parsec_suite,
    spec2006_suite,
)

__all__ = [
    "build_machine",
    "strided_workload",
    "mixed_stride_workload",
    "compare_systems",
    "full_evaluation",
]


def build_machine(system: str = "sdm_bsm", **machine_kwargs) -> Machine:
    """A ready-to-run machine for a system key (e.g. ``sdm_bsm_dl32``)."""
    return Machine(system_by_key(system), **machine_kwargs)


def strided_workload(stride_lines: int = 16, **kwargs) -> Workload:
    """The paper's synthetic data copy at one stride."""
    return StridedCopyWorkload(stride_lines=stride_lines, **kwargs)


def mixed_stride_workload(
    strides: tuple[int, ...] = (1, 4, 8, 16), **kwargs
) -> Workload:
    """The four-pattern mix of Fig. 4 / Fig. 11."""
    return MixedStrideWorkload(strides=strides, **kwargs)


def compare_systems(
    workload: Workload,
    system_keys: tuple[str, ...] = ("bs_dm", "bs_hm", "sdm_bsm", "sdm_bsm_ml4"),
    **machine_kwargs,
) -> dict[str, MachineResult]:
    """Run one workload under several systems; keyed by system label."""
    results: dict[str, MachineResult] = {}
    for key in system_keys:
        machine = build_machine(key, **machine_kwargs)
        result = machine.run(workload)
        results[result.system] = result
    return results


def full_evaluation(quick: bool = True, **machine_kwargs):
    """The Fig. 12 sweep: all workloads x all systems.

    ``quick=True`` trims the suites and uses a small DL configuration;
    ``quick=False`` reproduces the full benchmark run (minutes).
    """
    workloads = spec2006_suite() + parsec_suite() + data_intensive_suite()
    if quick:
        workloads = workloads[:4]
        machine_kwargs.setdefault(
            "dl_config", AutoencoderConfig(pretrain_steps=40, joint_steps=20)
        )
    return run_suite(workloads, systems=standard_systems(), **machine_kwargs)
