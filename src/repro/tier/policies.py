"""Pluggable swap policies for the tiered backend.

The three policies mirror the tracehm family (SNIPPETS.md), reproduced
on this repo's online signals:

* :class:`FastSwap` — promote every slow page touched in the last wave
  (aggressive recency; thrashes on scans);
* :class:`SlowSwap` — never migrate: first-touch placement is final
  (the conservative static baseline);
* :class:`SmartSwap` — rank pages by the decayed reference counts a
  :class:`~repro.online.stream.VariableActivity` accumulates (page ids
  as the variable tags) and promote only when a slow page is decisively
  hotter than the coldest fast page, with the hysteresis tightened
  when the wave's :class:`~repro.online.stream.StreamingBFRV` signature
  says the traffic is a sequential scan (scans must not evict the
  resident hot set).

Policies only *plan*; the backend applies the plan through the
placement map, so every policy obeys the same conservation invariants.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.online.stream import StreamingBFRV, VariableActivity
from repro.tier.config import TierConfig
from repro.tier.placement import TierPlacement

__all__ = [
    "FastSwap",
    "SlowSwap",
    "SmartSwap",
    "SwapPolicy",
    "available_policies",
    "create_policy",
]


class SwapPolicy:
    """Base class: per-wave observation + promotion planning."""

    name = "policy"

    def __init__(self, config: TierConfig, line_bits: int = 6):
        self.config = config
        self.line_bits = line_bits
        self.activity = VariableActivity(
            page_bits=config.page_bits, decay=0.5
        )
        self.bfrv = StreamingBFRV(
            num_bits=max(config.page_bits, line_bits + 4), decay=0.5
        )
        self.last_touch: dict[int, int] = {}
        self.wave = 0
        self.wave_pages: list[int] = []
        self.streaming = False

    def observe(self, ha: np.ndarray, pages: np.ndarray) -> None:
        """Fold one wave's accesses into the online signals."""
        self.wave += 1
        rates = self.bfrv.update(ha)
        self.activity.update(ha, pages.astype(np.int64))
        # First-touch order, deduplicated — deterministic across runs.
        _, first = np.unique(pages, return_index=True)
        self.wave_pages = [
            int(p) for p in pages[np.sort(first)]
        ]
        for page in self.wave_pages:
            self.last_touch[page] = self.wave
        self.streaming = self._looks_streaming(rates)

    def _looks_streaming(self, rates: np.ndarray) -> bool:
        """A sequential scan flips the line-stride bit nearly every pair."""
        stride_bit = self.line_bits
        if rates.size <= stride_bit + 3:
            return False
        high = rates[stride_bit + 2 :]
        return float(rates[stride_bit]) > 0.8 and float(high.mean()) < 0.3

    def refs(self, page: int) -> float:
        """Decayed reference count of a page (0.0 when never seen)."""
        return self.activity.references.get(int(page), 0.0)

    def victim_order(self, placement: TierPlacement) -> list[int]:
        """Fast pages coldest-first (refs, then recency, then id)."""
        return sorted(
            placement.fast,
            key=lambda p: (self.refs(p), self.last_touch.get(p, 0), p),
        )

    def pick_victim(
        self, placement: TierPlacement, exclude: set[int]
    ) -> int | None:
        """The coldest demotable fast page, or None."""
        for page in self.victim_order(placement):
            if page not in exclude:
                return page
        return None

    def plan(self, placement: TierPlacement, budget: int) -> list[int]:
        """Slow pages to promote this wave (hottest first)."""
        raise NotImplementedError  # pragma: no cover - abstract


class FastSwap(SwapPolicy):
    """Promote everything touched last wave (recency, no hysteresis)."""

    name = "fast"

    def plan(self, placement: TierPlacement, budget: int) -> list[int]:
        if placement.fast_capacity is None:
            return []
        promote = []
        for page in self.wave_pages:
            if len(promote) >= budget:
                break
            if placement.tier_of(page) == "slow" and not placement.is_pinned(
                page
            ):
                promote.append(page)
        return promote


class SlowSwap(SwapPolicy):
    """Never migrate: first-touch placement is final."""

    name = "slow"

    def plan(self, placement: TierPlacement, budget: int) -> list[int]:
        return []


class SmartSwap(SwapPolicy):
    """Decayed-heat ranking with scan-aware hysteresis.

    Beyond beating the victim by the hysteresis factor, a candidate
    must clear a break-even floor: swapping a page costs two page
    copies, which only pays off when the page's decayed reference count
    predicts enough future fast-tier hits.  The floor is
    ``2 * lines_per_page / reuse_horizon`` — the per-line copy cost and
    per-access slow-tier saving are the same order, so refs must cover
    the copied lines amortised over the assumed reuse horizon (waves of
    continued heat).  Without it the policy churns cold pages for cold
    pages whose refs have decayed to ~0.
    """

    name = "smart"

    def __init__(
        self,
        config: TierConfig,
        line_bits: int = 6,
        hysteresis: float = 1.5,
        reuse_horizon: float = 8.0,
    ):
        super().__init__(config, line_bits)
        if hysteresis < 1.0:
            raise ConfigError("hysteresis must be >= 1.0")
        if reuse_horizon <= 0.0:
            raise ConfigError("reuse_horizon must be positive")
        self.hysteresis = hysteresis
        self.reuse_horizon = reuse_horizon
        lines_per_page = 1 << max(config.page_bits - line_bits, 0)
        self.min_refs = 2.0 * lines_per_page / reuse_horizon

    def plan(self, placement: TierPlacement, budget: int) -> list[int]:
        if placement.fast_capacity is None:
            return []
        candidates = sorted(
            (
                p
                for p in placement.slow
                if not placement.is_pinned(p) and self.refs(p) > 0.0
            ),
            key=lambda p: (-self.refs(p), p),
        )
        victims = self.victim_order(placement)
        factor = self.hysteresis * (2.0 if self.streaming else 1.0)
        promote: list[int] = []
        free = placement.fast_free or 0
        victim_index = 0
        for page in candidates:
            if len(promote) >= budget:
                break
            if free > 0:
                # No demotion needed: half the swap cost, half the bar.
                if self.refs(page) < self.min_refs / 2.0:
                    break
                promote.append(page)
                free -= 1
                continue
            if victim_index >= len(victims):
                break
            cold = victims[victim_index]
            bar = max(factor * self.refs(cold), self.min_refs)
            if self.refs(page) > bar:
                promote.append(page)
                victim_index += 1
            else:
                # Candidates are ranked hottest-first: nothing that
                # follows can clear the bar either.
                break
        return promote


_POLICIES: dict[str, type[SwapPolicy]] = {
    FastSwap.name: FastSwap,
    SlowSwap.name: SlowSwap,
    SmartSwap.name: SmartSwap,
}


def available_policies() -> tuple[str, ...]:
    """Registered policy names, sorted."""
    return tuple(sorted(_POLICIES))


def create_policy(
    name: str, config: TierConfig, line_bits: int = 6, **kwargs
) -> SwapPolicy:
    """Instantiate a swap policy by name."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown swap policy {name!r}; "
            f"available: {', '.join(available_policies())}"
        ) from None
    return cls(config, line_bits=line_bits, **kwargs)
