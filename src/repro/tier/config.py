"""Configuration for the tiered (fast HBM + slow DDR/CXL) backend.

The slow tier is a deliberately simple latency/bandwidth model, not a
second bank-level simulator: a per-line access latency served over a
small number of independent channels (a CXL-attached DDR expander is
latency-dominated, so row-buffer structure adds little).  METICULOUS
(PAPERS.md) emulates heterogeneous tiers the same way — a flat latency
adder over the fast device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["SlowTierConfig", "TierConfig"]


@dataclass(frozen=True)
class SlowTierConfig:
    """Latency/bandwidth model of the slow (DDR/CXL-like) tier."""

    name: str = "cxl-ddr"
    t_access_ns: float = 120.0
    """Per-line service latency (CXL round-trip + DDR access)."""
    channels: int = 2
    """Independent channels the slow tier serves lines over."""

    def __post_init__(self) -> None:
        if self.t_access_ns <= 0:
            raise ConfigError("t_access_ns must be positive")
        if self.channels <= 0:
            raise ConfigError("slow tier needs at least one channel")

    def service_ns(self, accesses: int) -> float:
        """Makespan of ``accesses`` line transfers (bandwidth-bound)."""
        if accesses <= 0:
            return 0.0
        return accesses * self.t_access_ns / self.channels


@dataclass(frozen=True)
class TierConfig:
    """Knobs of the tiered backend's placement machinery.

    ``fast_pages=None`` disables the slow tier (unbounded fast
    capacity): the backend then degenerates to its delegate and must be
    bit-identical to it — the acceptance property the calibration tests
    assert.
    """

    fast_pages: int | None = None
    """Fast-tier capacity in pages (None = unbounded, slow disabled)."""
    page_bits: int = 12
    """Placement granularity (4 KiB pages by default)."""
    wave_accesses: int = 4096
    """Accesses per swap wave: the policy observes and plans per wave."""
    swap_budget: int = 32
    """Maximum promotions per wave (each may force a demotion)."""
    trans_cache_pages: int = 64
    """Capacity of the tier translation cache (non-resident pages)."""
    trans_miss_ns: float = 50.0
    """Charge per translation-cache miss (page-table walk)."""
    slow: SlowTierConfig = SlowTierConfig()

    def __post_init__(self) -> None:
        if self.fast_pages is not None and self.fast_pages < 0:
            raise ConfigError("fast_pages must be >= 0 (or None)")
        if self.page_bits < 6:
            raise ConfigError("page_bits must cover at least a cache line")
        if self.wave_accesses < 1:
            raise ConfigError("wave_accesses must be >= 1")
        if self.swap_budget < 0:
            raise ConfigError("swap_budget must be >= 0")
        if self.trans_cache_pages < 0:
            raise ConfigError("trans_cache_pages must be >= 0")
        if self.trans_miss_ns < 0:
            raise ConfigError("trans_miss_ns must be >= 0")

    @property
    def page_bytes(self) -> int:
        """Placement granularity in bytes."""
        return 1 << self.page_bits
