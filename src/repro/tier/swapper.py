"""SDAM-aware swap: tier migration that also reprograms the mapping.

Moving a chunk's pages between tiers changes their access pattern (a
demoted region goes latency-bound, a promoted one becomes
bandwidth-sensitive), so a tier swap is the natural moment to also
reprogram the chunk's address mapping.  :class:`SDAMAwareSwapper` rides
the existing :class:`~repro.mem.migration.ChunkMigrator` — including
its mid-copy rollback guarantee: if the copy faults, the CMT entry is
restored to the old mapping and the fault is recorded as a rollback,
never a half-switched chunk.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.hbm.config import HBMConfig
from repro.mem.kernel import Kernel
from repro.mem.migration import ChunkMigrator, MigrationReport
from repro.tier.stats import TierTraffic

__all__ = ["SDAMAwareSwapper"]


class SDAMAwareSwapper:
    """Couples tier swaps with CMT reprogramming, with rollback."""

    def __init__(
        self,
        kernel: Kernel,
        hbm: HBMConfig | None = None,
        traffic: TierTraffic | None = None,
    ):
        self.kernel = kernel
        self.migrator = ChunkMigrator(kernel, hbm=hbm)
        self.traffic = traffic if traffic is not None else TierTraffic()

    def mapping_index_of(self, chunk_no: int) -> int:
        """The chunk's current hardware mapping index."""
        return self.kernel.sdam.cmt.mapping_index_of(chunk_no)

    def swap_chunk(
        self,
        chunk_no: int,
        new_mapping_id: int,
        on_copy=None,
    ) -> MigrationReport:
        """Reprogram a migrating chunk's mapping, accounting the cost.

        Delegates to :meth:`~repro.mem.migration.ChunkMigrator.
        migrate_chunk`; a mid-copy library fault rolls the CMT back
        (verified by re-raising only after the rollback is counted in
        :attr:`traffic`).
        """
        line_bytes = self.migrator.hbm.line_bytes
        try:
            report = self.migrator.migrate_chunk(
                chunk_no, new_mapping_id, on_copy=on_copy
            )
        except (ReproError, OSError):
            self.traffic.sdam_rollbacks += 1
            raise
        self.traffic.sdam_remaps += 1
        self.traffic.swap_bytes += 2 * report.lines_copied * line_bytes
        self.traffic.swap_ns += report.cost_ns
        return report
