"""Page-granular tier placement: which tier serves which page.

The placement map is the tiered backend's single source of truth.  Its
invariants are the subsystem's conservation laws, checked by the
campaign after every swap wave and by hypothesis properties over
arbitrary operation sequences:

* **exactly one tier** — the fast and slow page sets are disjoint, and
  every admitted page is in exactly one of them;
* **capacity** — the fast set never exceeds its capacity;
* **pins** — RAS-retired pages are pinned to the slow tier (a subset of
  the slow set) and can never be promoted, so retirement falls back to
  slow capacity instead of shrinking the fast tier.
"""

from __future__ import annotations

from repro.errors import ConfigError, SimulationError

__all__ = ["TierPlacement"]


class TierPlacement:
    """Fast/slow page sets with conservation invariants.

    ``fast_capacity`` is the fast tier's size in pages; ``None`` means
    unbounded (the slow tier is effectively disabled and every page is
    admitted fast — the configuration under which the tiered backend
    must be bit-identical to its delegate).
    """

    def __init__(self, fast_capacity: int | None = None):
        if fast_capacity is not None and fast_capacity < 0:
            raise ConfigError("fast_capacity must be >= 0 (or None)")
        self.fast_capacity = fast_capacity
        self.fast: set[int] = set()
        self.slow: set[int] = set()
        self.pinned: set[int] = set()

    # -- queries -------------------------------------------------------------
    @property
    def known(self) -> set[int]:
        """Every page the placement has admitted."""
        return self.fast | self.slow

    @property
    def fast_free(self) -> int | None:
        """Free fast-tier pages (``None`` when capacity is unbounded)."""
        if self.fast_capacity is None:
            return None
        return self.fast_capacity - len(self.fast)

    def tier_of(self, page: int) -> str | None:
        """``"fast"``, ``"slow"``, or ``None`` for an unknown page."""
        if page in self.fast:
            return "fast"
        if page in self.slow:
            return "slow"
        return None

    def is_pinned(self, page: int) -> bool:
        """True when the page was retired into the slow tier."""
        return page in self.pinned

    # -- transitions ---------------------------------------------------------
    def admit(self, page: int) -> str:
        """Place a first-touched page: fast while space remains, else slow.

        Idempotent for known pages (returns the current tier).
        """
        tier = self.tier_of(page)
        if tier is not None:
            return tier
        if self.fast_free is None or self.fast_free > 0:
            self.fast.add(page)
            return "fast"
        self.slow.add(page)
        return "slow"

    def promote(self, page: int) -> None:
        """Move a slow page to the fast tier."""
        if page not in self.slow:
            raise SimulationError(f"page {page} is not in the slow tier")
        if page in self.pinned:
            raise SimulationError(
                f"page {page} is retired (pinned slow); cannot promote"
            )
        if self.fast_free is not None and self.fast_free <= 0:
            raise SimulationError(
                f"fast tier full ({self.fast_capacity} pages); "
                "demote before promoting"
            )
        self.slow.discard(page)
        self.fast.add(page)

    def demote(self, page: int) -> None:
        """Move a fast page to the slow tier."""
        if page not in self.fast:
            raise SimulationError(f"page {page} is not in the fast tier")
        self.fast.discard(page)
        self.slow.add(page)

    def pin_slow(self, page: int) -> bool:
        """Retire a page into the slow tier (RAS fallback).

        A fast page is demoted first; an unknown page is admitted
        straight to slow.  Returns True when the page was newly pinned.
        """
        if page in self.pinned:
            return False
        if page in self.fast:
            self.demote(page)
        self.slow.add(page)
        self.pinned.add(page)
        return True

    # -- invariants ----------------------------------------------------------
    def check_invariants(self, expected: set[int] | None = None) -> list[str]:
        """Every violated conservation law, as human-readable strings.

        ``expected`` (optional) is the set of pages that must be known —
        the page-conservation check the campaign runs after every swap
        wave (no page lost, none invented).
        """
        problems: list[str] = []
        overlap = self.fast & self.slow
        if overlap:
            problems.append(
                f"{len(overlap)} page(s) in both tiers "
                f"(e.g. {sorted(overlap)[:3]})"
            )
        if self.fast_capacity is not None and len(self.fast) > self.fast_capacity:
            problems.append(
                f"fast tier over capacity: {len(self.fast)} > "
                f"{self.fast_capacity}"
            )
        stray = self.pinned - self.slow
        if stray:
            problems.append(
                f"{len(stray)} pinned page(s) outside the slow tier"
            )
        if expected is not None:
            lost = expected - self.known
            invented = self.known - expected
            if lost:
                problems.append(
                    f"{len(lost)} page(s) lost (e.g. {sorted(lost)[:3]})"
                )
            if invented:
                problems.append(
                    f"{len(invented)} page(s) invented "
                    f"(e.g. {sorted(invented)[:3]})"
                )
        return problems

    def __repr__(self) -> str:
        cap = "inf" if self.fast_capacity is None else self.fast_capacity
        return (
            f"TierPlacement(fast={len(self.fast)}/{cap}, "
            f"slow={len(self.slow)}, pinned={len(self.pinned)})"
        )
