"""Tier traffic accounting: what the fast/slow split cost and saved.

:class:`TierTraffic` follows the same laws as
:class:`~repro.hbm.stats.RunStats` and
:class:`~repro.hbm.stats.RemapTraffic` — ``empty()`` is the identity of
an associative, commutative ``merge`` (all counters add), and
``__add__`` returns ``NotImplemented`` for foreign types — so traffic
from independent campaign legs or sequential runs folds together in any
order.  Like :class:`~repro.hbm.stats.BackendHealth` it is deliberately
*not* part of the frozen, cache-fingerprinted
:class:`~repro.hbm.stats.RunStats`: tier traffic describes how the
tiered backend obtained a result, never what the result is, so a
tiered run whose fast tier covers the whole footprint fingerprints
bit-identically to its delegate backend.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TierTraffic"]

_FIELDS = (
    "fast_accesses",
    "slow_accesses",
    "promotions",
    "demotions",
    "retired_pins",
    "swap_waves",
    "swap_bytes",
    "swap_ns",
    "trans_lookups",
    "trans_hits",
    "trans_misses",
    "trans_ns",
    "slow_busy_ns",
    "sdam_remaps",
    "sdam_rollbacks",
)


@dataclass
class TierTraffic:
    """Counters for one tiered run (or a merge of several)."""

    fast_accesses: int = 0
    slow_accesses: int = 0
    promotions: int = 0
    demotions: int = 0
    retired_pins: int = 0
    swap_waves: int = 0
    swap_bytes: int = 0
    swap_ns: float = 0.0
    trans_lookups: int = 0
    trans_hits: int = 0
    trans_misses: int = 0
    trans_ns: float = 0.0
    slow_busy_ns: float = 0.0
    sdam_remaps: int = 0
    sdam_rollbacks: int = 0

    @classmethod
    def empty(cls) -> "TierTraffic":
        """The merge identity: all counters zero."""
        return cls()

    def merge(self, other: "TierTraffic") -> "TierTraffic":
        """Combine traffic from independent runs (all counters add)."""
        return TierTraffic(
            **{
                name: getattr(self, name) + getattr(other, name)
                for name in _FIELDS
            }
        )

    def __add__(self, other: "TierTraffic") -> "TierTraffic":
        if not isinstance(other, TierTraffic):
            return NotImplemented
        return self.merge(other)

    @property
    def accesses(self) -> int:
        """All accesses the tiered datapath served."""
        return self.fast_accesses + self.slow_accesses

    @property
    def fast_fraction(self) -> float:
        """Share of accesses the fast tier absorbed."""
        total = self.accesses
        return self.fast_accesses / total if total else 0.0

    @property
    def swaps(self) -> int:
        """Pages moved between tiers (either direction)."""
        return self.promotions + self.demotions

    @property
    def trans_hit_rate(self) -> float:
        """Translation-cache hits over lookups."""
        if self.trans_lookups == 0:
            return 0.0
        return self.trans_hits / self.trans_lookups

    @property
    def overhead_ns(self) -> float:
        """Simulated time the tier machinery itself cost."""
        return self.swap_ns + self.trans_ns

    def to_dict(self) -> dict:
        """A JSON-serialisable form; :meth:`from_dict` round-trips it."""
        data = {name: getattr(self, name) for name in _FIELDS}
        data["fast_fraction"] = self.fast_fraction
        data["overhead_ns"] = self.overhead_ns
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TierTraffic":
        """Rebuild traffic written by :meth:`to_dict`."""
        kwargs = {}
        for name in _FIELDS:
            value = data.get(name, 0)
            kwargs[name] = (
                float(value)
                if name.endswith("_ns")
                else int(value)
            )
        return cls(**kwargs)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.accesses} accesses "
            f"({self.fast_fraction:.0%} fast), "
            f"{self.promotions}+{self.demotions} swaps "
            f"({self.swap_ns / 1e3:.1f} us), "
            f"trans hit-rate {self.trans_hit_rate:.2f}"
        )
