"""Tiered-memory campaign: policies under pressure and skew.

The experiment behind ``python -m repro tier``: run the
:class:`~repro.workloads.synthetic.TieredPressureWorkload` in two
shapes — hot/cold skew (a small hot set a good policy keeps fast) and
pure capacity pressure (uniform traffic over an oversized footprint,
where the right move is to not thrash) — through the tiered backend
under every swap policy, against an all-slow baseline (fast capacity
zero).  After **every** swap wave the placement map's conservation
invariants are checked exactly: every page seen so far lives in exactly
one tier, the fast tier is within capacity, pinned pages are slow.

Two side legs exercise the subsystem's integration points:

* **sdam** — an :class:`~repro.tier.swapper.SDAMAwareSwapper` remaps a
  live chunk's mapping mid-swap, first with an injected mid-copy fault
  (the CMT must roll back), then cleanly;
* **ras** — retired pages reported by
  :class:`~repro.mem.physical.PhysicalMemory` are pinned to the slow
  tier: fast capacity is unchanged and the pages are never promoted.

The campaign gates on SmartSwap being *strictly* faster than the
all-slow baseline on every workload leg; any gate or invariant failure
lands in ``problems`` and fails the CLI run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.chunks import ChunkGeometry, MiB
from repro.core.sdam import SDAMController
from repro.errors import ConfigError, SimulationError
from repro.hbm.config import HBMConfig, hbm2_config
from repro.mem.kernel import Kernel
from repro.mem.malloc import MappingAwareAllocator
from repro.tier.backend import TieredBackend
from repro.tier.policies import available_policies
from repro.tier.swapper import SDAMAwareSwapper
from repro.workloads.synthetic import TieredPressureWorkload

__all__ = ["TierCampaignResult", "run_tier_campaign"]

#: Policy evaluated against the all-slow baseline for the speed gate.
GATED_POLICY = "smart"


@dataclass
class TierCampaignResult:
    """Everything one tiered-memory campaign produced."""

    seed: int
    quick: bool
    policies: list[str]
    fast_pages: int
    wave_accesses: int
    waves: int
    legs: dict[str, dict[str, float]]
    baseline_ns: dict[str, float]
    traffic: dict[str, dict[str, dict]]
    sdam: dict = field(default_factory=dict)
    ras: dict = field(default_factory=dict)
    problems: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every invariant and gate held."""
        return not self.problems

    def speedup(self, leg: str, policy: str = GATED_POLICY) -> float:
        """Baseline (all-slow) over a policy's makespan for one leg."""
        policy_ns = self.legs[leg].get(policy, 0.0)
        if policy_ns <= 0:
            return 0.0
        return self.baseline_ns[leg] / policy_ns

    def to_dict(self) -> dict:
        """A JSON-serialisable form."""
        return {
            "seed": self.seed,
            "quick": self.quick,
            "policies": list(self.policies),
            "fast_pages": self.fast_pages,
            "wave_accesses": self.wave_accesses,
            "waves": self.waves,
            "legs": {
                leg: {p: float(v) for p, v in cells.items()}
                for leg, cells in self.legs.items()
            },
            "baseline_ns": {
                leg: float(v) for leg, v in self.baseline_ns.items()
            },
            "speedups": {
                leg: self.speedup(leg)
                for leg in self.legs
                if GATED_POLICY in self.legs[leg]
            },
            "traffic": {
                leg: {p: dict(t) for p, t in cells.items()}
                for leg, cells in self.traffic.items()
            },
            "sdam": dict(self.sdam),
            "ras": dict(self.ras),
            "problems": list(self.problems),
            "ok": self.ok,
            "elapsed_seconds": self.elapsed_seconds,
        }

    def fingerprint(self) -> dict:
        """:meth:`to_dict` with wall-clock provenance zeroed."""
        data = self.to_dict()
        data["elapsed_seconds"] = 0.0
        return data

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = []
        for leg, cells in self.legs.items():
            parts = ", ".join(
                f"{policy} {cells[policy] / 1e6:.2f} ms"
                for policy in sorted(cells)
            )
            line = f"{leg}: {parts} vs all-slow " + (
                f"{self.baseline_ns[leg] / 1e6:.2f} ms"
            )
            if GATED_POLICY in cells:
                line += f" -> {GATED_POLICY} {self.speedup(leg):.2f}x"
            lines.append(line)
        if self.sdam:
            lines.append(
                f"sdam: {self.sdam.get('remaps', 0)} remap(s), "
                f"{self.sdam.get('rollbacks', 0)} rollback(s) "
                f"(rollback {'ok' if self.sdam.get('rollback_ok') else 'FAILED'})"
            )
        if self.ras:
            lines.append(
                f"ras: {self.ras.get('retired', 0)} page(s) retired -> "
                f"slow tier (fast capacity "
                f"{'unchanged' if self.ras.get('capacity_ok') else 'SHRUNK'})"
            )
        lines.append(
            "invariants: OK" if self.ok else
            f"invariants: {len(self.problems)} problem(s)"
        )
        return "\n".join(lines)


def _leg_trace(workload: TieredPressureWorkload, seed: int) -> np.ndarray:
    """The leg's hardware-address trace (arena based at address 0)."""
    return workload.trace({"arena": 0}, input_seed=seed)[0].va


def _run_leg(
    label: str,
    ha: np.ndarray,
    config: HBMConfig,
    policy: str,
    fast_pages: int,
    wave_accesses: int,
    problems: list[str],
) -> tuple[float, dict]:
    """One (leg, policy) cell with per-wave invariant checks."""
    backend = TieredBackend(
        config,
        policy=policy,
        fast_pages=fast_pages,
        wave_accesses=wave_accesses,
    )
    pages = (ha >> np.uint64(backend.tier.page_bits)).astype(np.int64)
    expected: set[int] = set()
    cursor = 0

    def on_wave(index, placement, _traffic):
        nonlocal cursor
        end = min(cursor + wave_accesses, pages.size)
        expected.update(int(p) for p in pages[cursor:end])
        cursor = end
        for problem in placement.check_invariants(expected):
            problems.append(
                f"{label}/{policy} wave {index}: {problem}"
            )

    backend.on_wave = on_wave
    stats = backend.simulate(ha)
    return float(stats.makespan_ns), backend.last_traffic.to_dict()


def _sdam_leg(problems: list[str]) -> dict:
    """SDAM-aware swap with mid-copy fault rollback, then a clean remap."""
    geometry = ChunkGeometry(total_bytes=32 * MiB)
    kernel = Kernel(geometry, sdam=SDAMController(geometry))
    space = kernel.spawn()
    malloc = MappingAwareAllocator(kernel, space)
    swapper = SDAMAwareSwapper(kernel)
    new_mapping = malloc.add_addr_map(
        np.roll(np.arange(geometry.window_bits), 2)
    )
    va = malloc.malloc(1 * MiB, mapping_id=0, tag="hot")
    touch = np.arange(
        va, va + 1 * MiB, geometry.page_bytes, dtype=np.uint64
    )
    space.translate_trace(touch)
    chunk_no = geometry.chunk_number(space.translate(va))
    old_index = swapper.mapping_index_of(chunk_no)

    def exploding_copy(_pa_lines, _reads, _writes):
        raise SimulationError("injected mid-copy device fault")

    try:
        swapper.swap_chunk(chunk_no, new_mapping, on_copy=exploding_copy)
        problems.append("sdam: injected mid-copy fault did not propagate")
    except SimulationError:
        pass
    rollback_ok = swapper.mapping_index_of(chunk_no) == old_index
    if not rollback_ok:
        problems.append(
            "sdam: CMT not rolled back after mid-copy fault "
            f"(expected mapping {old_index})"
        )
    report = swapper.swap_chunk(chunk_no, new_mapping)
    if swapper.mapping_index_of(chunk_no) != new_mapping:
        problems.append("sdam: clean swap did not adopt the new mapping")
    return {
        "remaps": swapper.traffic.sdam_remaps,
        "rollbacks": swapper.traffic.sdam_rollbacks,
        "rollback_ok": rollback_ok,
        "lines_copied": int(report.lines_copied),
        "cost_ns": float(report.cost_ns),
    }


def _ras_leg(
    config: HBMConfig,
    fast_pages: int,
    wave_accesses: int,
    problems: list[str],
) -> dict:
    """Retired pages fall back to the slow tier, pinned for good."""
    backend = TieredBackend(
        config,
        policy="smart",
        fast_pages=fast_pages,
        wave_accesses=wave_accesses,
    )
    geometry = ChunkGeometry(total_bytes=32 * MiB)
    kernel = Kernel(geometry)
    kernel.physical.on_page_retired = backend.retire_page
    chunk = kernel.physical.acquire_chunk(0)
    offsets = list(range(4))
    retired = kernel.physical.retire_pages(chunk.number, offsets)
    base = chunk.number * geometry.pages_per_chunk
    global_pages = [base + offset for offset in offsets]
    for page in global_pages:
        if backend.placement.tier_of(page) != "slow":
            problems.append(f"ras: retired page {page} not in the slow tier")
        if not backend.placement.is_pinned(page):
            problems.append(f"ras: retired page {page} not pinned")
    if backend.placement.fast_capacity != fast_pages:
        problems.append("ras: retirement shrank the fast tier capacity")
    # Hammer the retired pages: even a hot retired page must stay slow.
    page_bytes = backend.tier.page_bytes
    ha = np.concatenate(
        [
            np.full(wave_accesses, page * page_bytes, dtype=np.uint64)
            for page in global_pages
        ]
    )
    backend.simulate(ha)
    promoted = [
        page
        for page in global_pages
        if backend.placement.tier_of(page) != "slow"
    ]
    if promoted:
        problems.append(f"ras: retired page(s) promoted: {promoted}")
    if len(backend.placement.fast) > fast_pages:
        problems.append("ras: fast tier over capacity after retirement")
    return {
        "retired": retired,
        "pinned": len(backend.placement.pinned),
        "capacity_ok": backend.placement.fast_capacity == fast_pages
        and len(backend.placement.fast) <= fast_pages,
        "never_promoted": not promoted,
        "slow_accesses": backend.last_traffic.slow_accesses,
    }


def run_tier_campaign(
    seed: int = 0,
    quick: bool = True,
    policy: str | None = None,
    config: HBMConfig | None = None,
    wave_accesses: int = 2048,
) -> TierCampaignResult:
    """Run the seeded tiered-memory campaign.

    ``quick`` shrinks the arena and the trace for smoke runs; the
    structure (both workload legs, the sdam and ras side legs, the
    per-wave invariant checks, the SmartSwap-vs-all-slow gate) is
    unchanged.  ``policy`` restricts the evaluated policies to one name
    (the all-slow baseline always runs).
    """
    started = time.perf_counter()
    hbm = config or hbm2_config()
    if policy is not None and policy not in available_policies():
        raise ConfigError(
            f"unknown swap policy {policy!r}; "
            f"available: {', '.join(available_policies())}"
        )
    policies = [policy] if policy else list(available_policies())
    footprint = 4 * MiB if quick else 16 * MiB
    accesses = 32768 if quick else 131072
    page_bits = 12
    fast_pages = (footprint >> page_bits) // 4
    workloads = {
        "skew": TieredPressureWorkload(
            footprint_bytes=footprint, hot_fraction=0.9, accesses=accesses
        ),
        "pressure": TieredPressureWorkload(
            footprint_bytes=footprint, hot_fraction=0.0, accesses=accesses
        ),
    }
    problems: list[str] = []
    legs: dict[str, dict[str, float]] = {}
    baseline_ns: dict[str, float] = {}
    traffic: dict[str, dict[str, dict]] = {}
    waves = 0
    for leg, workload in workloads.items():
        ha = _leg_trace(workload, seed)
        waves = max(waves, -(-int(ha.size) // wave_accesses))
        legs[leg] = {}
        traffic[leg] = {}
        for name in policies:
            makespan, cell_traffic = _run_leg(
                leg, ha, hbm, name, fast_pages, wave_accesses, problems
            )
            legs[leg][name] = makespan
            traffic[leg][name] = cell_traffic
        slow_ns, slow_traffic = _run_leg(
            leg, ha, hbm, "slow", 0, wave_accesses, problems
        )
        baseline_ns[leg] = slow_ns
        traffic[leg]["all-slow"] = slow_traffic
        if GATED_POLICY in legs[leg]:
            if not legs[leg][GATED_POLICY] < slow_ns:
                problems.append(
                    f"{leg}: SmartSwap ({legs[leg][GATED_POLICY]:.0f} ns) "
                    f"not strictly faster than all-slow ({slow_ns:.0f} ns)"
                )
    sdam = _sdam_leg(problems)
    ras = _ras_leg(hbm, fast_pages, wave_accesses, problems)
    return TierCampaignResult(
        seed=seed,
        quick=quick,
        policies=policies,
        fast_pages=fast_pages,
        wave_accesses=wave_accesses,
        waves=waves,
        legs=legs,
        baseline_ns=baseline_ns,
        traffic=traffic,
        sdam=sdam,
        ras=ras,
        problems=problems,
        elapsed_seconds=time.perf_counter() - started,
    )
