"""The ``"tiered"`` memory backend: fast HBM tier + slow tier.

A :class:`TieredBackend` sits behind the same
:class:`~repro.hbm.backend.MemoryBackend` protocol as the fast/vector/
event tiers, but splits the decoded request stream page-by-page between
a fast HBM device (timing delegated to an existing backend) and a
latency/bandwidth-modeled slow tier.  Placement is re-planned every
*wave* of accesses by a pluggable :mod:`~repro.tier.policies` swap
policy driven by the online BFRV/activity signals, and accesses to
non-resident pages pay a small translation cache.

Two exactness properties anchor the design:

* with ``fast_pages=None`` (unbounded fast capacity, the default) the
  backend delegates the *entire* stream untouched, so its
  :class:`~repro.hbm.stats.RunStats` are bit-identical to the delegate
  backend's — tiering is strictly additive;
* the wave split buffers the stream first, so chunked and whole-trace
  simulation agree for every chunk size, like every other backend.

Per-run accounting lands in :attr:`TieredBackend.last_traffic`
(a :class:`~repro.tier.stats.TierTraffic`), which rides on
:class:`~repro.system.machine.MachineResult` outside the fingerprint.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.hbm.backend import create_backend
from repro.hbm.config import HBMConfig
from repro.hbm.decode import DecodedTrace, concat_decoded, decode_trace
from repro.hbm.stats import RunStats
from repro.tier.config import SlowTierConfig, TierConfig
from repro.tier.placement import TierPlacement
from repro.tier.policies import SwapPolicy, create_policy
from repro.tier.stats import TierTraffic

__all__ = ["TieredBackend"]


class _TranslationCache:
    """A small LRU of pages whose placement differs from the default.

    Resident-by-default pages translate for free; only remapped or
    slow-tier pages need an entry, so an all-fast run never touches the
    cache (cost exactly zero — the parity property depends on it).
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: dict[int, None] = {}

    def probe(self, page: int) -> bool:
        """True on hit; misses insert the page (evicting the LRU)."""
        if page in self._entries:
            self._entries.pop(page)
            self._entries[page] = None
            return True
        if self.capacity > 0:
            if len(self._entries) >= self.capacity:
                oldest = next(iter(self._entries))
                self._entries.pop(oldest)
            self._entries[page] = None
        return False


class TieredBackend:
    """Fast tier + slow tier behind the MemoryBackend protocol.

    ``delegate`` names the backend that times the fast tier (``"fast"``
    or ``"vector"``); ``policy`` names the swap policy; the remaining
    keywords override individual :class:`~repro.tier.config.TierConfig`
    fields (``fast_pages=0`` is the all-slow baseline).
    """

    def __init__(
        self,
        config: HBMConfig,
        max_inflight: int = 64,
        tier: TierConfig | None = None,
        delegate: str = "fast",
        policy: str = "smart",
        fast_pages: int | None = None,
        wave_accesses: int | None = None,
        swap_budget: int | None = None,
        trans_cache_pages: int | None = None,
        slow: SlowTierConfig | None = None,
        on_wave=None,
        **delegate_options,
    ):
        if delegate == "tiered":
            raise ConfigError("the tiered backend cannot delegate to itself")
        tier = tier or TierConfig()
        overrides = {
            "fast_pages": fast_pages,
            "wave_accesses": wave_accesses,
            "swap_budget": swap_budget,
            "trans_cache_pages": trans_cache_pages,
            "slow": slow,
        }
        overrides = {k: v for k, v in overrides.items() if v is not None}
        if overrides:
            tier = dataclasses.replace(tier, **overrides)
        if tier.page_bits < config.line_bits:
            raise ConfigError("pages must be at least one cache line")
        self.config = config
        self.tier = tier
        self.delegate_name = delegate
        self.delegate = create_backend(
            delegate, config, max_inflight=max_inflight, **delegate_options
        )
        self.placement = TierPlacement(tier.fast_pages)
        self.policy: SwapPolicy = create_policy(
            policy, tier, line_bits=config.line_bits
        )
        self.on_wave = on_wave
        self.last_traffic = TierTraffic()
        self._trans = _TranslationCache(tier.trans_cache_pages)
        self._migrated: set[int] = set()
        layout = config.layout()
        self._shifts = {
            name: layout[name].shift
            for name in ("channel", "column", "bank", "row")
        }

    # -- RAS fallback --------------------------------------------------------
    def retire_page(self, page: int) -> None:
        """Pin a RAS-retired page to the slow tier.

        The fast tier keeps its full capacity — retirement costs slow
        capacity, never fast — and the page can never be promoted.
        """
        if self.placement.pin_slow(int(page)):
            self.last_traffic.retired_pins += 1
            self._migrated.add(int(page))

    # -- helpers -------------------------------------------------------------
    def _pages_of(self, decoded: DecodedTrace) -> tuple[np.ndarray, np.ndarray]:
        """Reconstruct HAs + page ids from decoded device coordinates."""
        s = self._shifts
        ha = (
            (decoded.channel.astype(np.uint64) << np.uint64(s["channel"]))
            | (decoded.column.astype(np.uint64) << np.uint64(s["column"]))
            | (decoded.bank.astype(np.uint64) << np.uint64(s["bank"]))
            | (decoded.row.astype(np.uint64) << np.uint64(s["row"]))
        )
        pages = (ha >> np.uint64(self.tier.page_bits)).astype(np.int64)
        return ha, pages

    def _swap_cost_ns(self) -> float:
        """Cost of moving one page between tiers (read + write)."""
        lines = self.tier.page_bytes // self.config.line_bytes
        return lines * (
            self.tier.slow.t_access_ns / self.tier.slow.channels
            + self.config.effective_t_burst_ns
        )

    def _apply_swaps(self, traffic: TierTraffic) -> None:
        """Plan with the policy, migrate through the placement map."""
        promote = self.policy.plan(self.placement, self.tier.swap_budget)
        moved = set(promote)
        cost = self._swap_cost_ns()
        for page in promote:
            free = self.placement.fast_free
            if free is not None and free <= 0:
                victim = self.policy.pick_victim(self.placement, moved)
                if victim is None:
                    break
                self.placement.demote(victim)
                self._migrated.add(victim)
                moved.add(victim)
                traffic.demotions += 1
                traffic.swap_bytes += 2 * self.tier.page_bytes
                traffic.swap_ns += cost
            self.placement.promote(page)
            self._migrated.add(page)
            traffic.promotions += 1
            traffic.swap_bytes += 2 * self.tier.page_bytes
            traffic.swap_ns += cost

    def _charge_translation(
        self, wave_pages: list[int], traffic: TierTraffic
    ) -> None:
        """Probe the translation cache for every non-default page."""
        for page in wave_pages:
            if page not in self.placement.slow and page not in self._migrated:
                continue
            traffic.trans_lookups += 1
            if self._trans.probe(page):
                traffic.trans_hits += 1
            else:
                traffic.trans_misses += 1
                traffic.trans_ns += self.tier.trans_miss_ns

    # -- MemoryBackend protocol ----------------------------------------------
    def simulate(self, ha) -> RunStats:
        """Run a hardware-address trace (decodes, then simulates)."""
        return self.simulate_decoded(decode_trace(ha, self.config))

    def simulate_decoded(self, decoded, forced_miss=None) -> RunStats:
        """Run a decoded stream through the fast/slow split."""
        traffic = TierTraffic()
        self.last_traffic = traffic
        if self.tier.fast_pages is None:
            # Slow tier disabled: delegate the stream untouched so the
            # result is bit-identical to the delegate backend's.
            stats = self.delegate.simulate_decoded(
                decoded, forced_miss=forced_miss
            )
            traffic.fast_accesses = stats.requests
            return stats
        if forced_miss is not None and not isinstance(decoded, DecodedTrace):
            raise SimulationError(
                "forced_miss requires a whole DecodedTrace, not chunks"
            )
        full = (
            decoded
            if isinstance(decoded, DecodedTrace)
            else concat_decoded(list(decoded))
        )
        n = len(full)
        ha, pages = self._pages_of(full)
        fast_mask = np.ones(n, dtype=bool)
        wave = self.tier.wave_accesses
        for index, start in enumerate(range(0, n, wave)):
            sl = slice(start, min(start + wave, n))
            wave_pages = pages[sl]
            _, first = np.unique(wave_pages, return_index=True)
            touched = [int(p) for p in wave_pages[np.sort(first)]]
            for page in touched:
                self.placement.admit(page)
            self.policy.observe(ha[sl], wave_pages)
            if self.placement.slow:
                slow_now = np.fromiter(
                    self.placement.slow, dtype=np.int64,
                    count=len(self.placement.slow),
                )
                fast_mask[sl] = ~np.isin(wave_pages, slow_now)
            self._charge_translation(touched, traffic)
            self._apply_swaps(traffic)
            traffic.swap_waves += 1
            if self.on_wave is not None:
                self.on_wave(index, self.placement, traffic)
        fast_sub = DecodedTrace(
            channel=full.channel[fast_mask],
            bank=full.bank[fast_mask],
            row=full.row[fast_mask],
            column=full.column[fast_mask],
            global_bank=full.global_bank[fast_mask],
        )
        fast_stats = self.delegate.simulate_decoded(
            fast_sub,
            forced_miss=(
                forced_miss[fast_mask] if forced_miss is not None else None
            ),
        )
        slow_count = int(n - len(fast_sub))
        slow_busy = self.tier.slow.service_ns(slow_count)
        traffic.fast_accesses = int(len(fast_sub))
        traffic.slow_accesses = slow_count
        traffic.slow_busy_ns = slow_busy
        per_channel = fast_stats.per_channel_requests + np.bincount(
            full.channel[~fast_mask], minlength=self.config.num_channels
        ).astype(np.int64)
        makespan = (
            max(fast_stats.makespan_ns, slow_busy)
            + traffic.swap_ns
            + traffic.trans_ns
        )
        return RunStats(
            requests=n,
            bytes_moved=n * self.config.line_bytes,
            makespan_ns=makespan,
            row_hits=fast_stats.row_hits,
            # The slow tier has no row buffer: every access is charged
            # as a miss, keeping hits + misses == requests exactly.
            row_misses=fast_stats.row_misses + slow_count,
            num_channels=self.config.num_channels,
            per_channel_requests=per_channel,
            per_channel_busy_ns=fast_stats.per_channel_busy_ns.copy(),
        )

    def __repr__(self) -> str:
        cap = (
            "unbounded"
            if self.tier.fast_pages is None
            else f"{self.tier.fast_pages} pages"
        )
        return (
            f"TieredBackend({self.delegate_name}+{self.tier.slow.name}, "
            f"fast={cap}, policy={self.policy.name!r})"
        )
