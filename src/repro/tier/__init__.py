"""Tiered heterogeneous memory: HBM fast tier + configurable slow tier.

The package behind the ``"tiered"`` entry in the memory-backend
registry: page-granular placement between a fast HBM tier (timing
delegated to the fast/vector backends) and a latency/bandwidth-modeled
slow tier, with pluggable swap policies driven by the online BFRV and
activity signals, SDAM-aware chunk swaps (mapping reprogramming with
rollback), and RAS-retired pages pinned to the slow tier.
"""

from repro.tier.backend import TieredBackend
from repro.tier.campaign import TierCampaignResult, run_tier_campaign
from repro.tier.config import SlowTierConfig, TierConfig
from repro.tier.placement import TierPlacement
from repro.tier.policies import (
    FastSwap,
    SlowSwap,
    SmartSwap,
    SwapPolicy,
    available_policies,
    create_policy,
)
from repro.tier.stats import TierTraffic
from repro.tier.swapper import SDAMAwareSwapper

__all__ = [
    "FastSwap",
    "SDAMAwareSwapper",
    "SlowSwap",
    "SlowTierConfig",
    "SmartSwap",
    "SwapPolicy",
    "TierCampaignResult",
    "TierConfig",
    "TierPlacement",
    "TierTraffic",
    "TieredBackend",
    "available_policies",
    "create_policy",
    "run_tier_campaign",
]
