"""Synthetic strided-copy workloads (Section 7.2, Figs. 3, 4, 11).

The paper's synthetic benchmark copies 64 B elements with a configurable
stride; the four-thread variant with mixed strides drives Fig. 4 and
Fig. 11.  Each distinct stride gets its own source/destination variable
pair so SDAM can give every stream its own mapping.
"""

from __future__ import annotations

import numpy as np

from repro.cpu.trace import AccessTrace
from repro.workloads.base import (
    LINE,
    VariableSpec,
    Workload,
    strided_addresses,
    tagged_trace,
)

__all__ = ["StridedCopyWorkload", "MixedStrideWorkload"]


class StridedCopyWorkload(Workload):
    """N threads copying data with one constant stride."""

    def __init__(
        self,
        stride_lines: int = 1,
        threads: int = 4,
        accesses_per_thread: int = 8192,
        buffer_bytes: int = 8 * 1024 * 1024,
    ):
        self.name = f"copy-stride{stride_lines}"
        self.stride_lines = stride_lines
        self.threads = threads
        self.accesses_per_thread = accesses_per_thread
        self.buffer_bytes = buffer_bytes

    def variables(self) -> list[VariableSpec]:
        """Allocation sites, in stable order (index = variable id)."""
        return [
            VariableSpec("src", self.buffer_bytes),
            VariableSpec("dst", self.buffer_bytes),
        ]

    def trace(self, base: dict[str, int], input_seed: int = 0) -> list[AccessTrace]:
        """Per-thread VA traces for the given base addresses and input."""
        traces = []
        per_thread = self.accesses_per_thread // 2
        for thread in range(self.threads):
            # Threads partition the buffer; the seed shifts the phase.
            start = thread * per_thread * self.stride_lines + input_seed * 17
            reads = strided_addresses(
                base["src"],
                self.buffer_bytes,
                per_thread,
                self.stride_lines,
                start_line=start,
            )
            writes = strided_addresses(
                base["dst"],
                self.buffer_bytes,
                per_thread,
                self.stride_lines,
                start_line=start,
            )
            traces.append(
                tagged_trace([(reads, 0, False), (writes, 1, True)])
            )
        return traces


class MixedStrideWorkload(Workload):
    """Concurrent copies with different strides (Fig. 4 / Fig. 11a).

    One thread (and one src/dst variable pair) per stride, so the trace
    mixes up to four distinct access patterns.
    """

    def __init__(
        self,
        strides: tuple[int, ...] = (1, 4, 8, 16),
        accesses_per_stride: int = 8192,
        buffer_bytes: int = 8 * 1024 * 1024,
    ):
        if not strides:
            raise ValueError("need at least one stride")
        self.name = "copy-mixed-" + "x".join(str(s) for s in strides)
        self.strides = tuple(strides)
        self.threads = len(strides)
        self.accesses_per_stride = accesses_per_stride
        self.buffer_bytes = buffer_bytes

    def variables(self) -> list[VariableSpec]:
        """Allocation sites, in stable order (index = variable id)."""
        specs = []
        for stride in self.strides:
            specs.append(VariableSpec(f"src_s{stride}", self.buffer_bytes))
            specs.append(VariableSpec(f"dst_s{stride}", self.buffer_bytes))
        return specs

    def trace(self, base: dict[str, int], input_seed: int = 0) -> list[AccessTrace]:
        """Per-thread VA traces for the given base addresses and input."""
        traces = []
        per_stream = self.accesses_per_stride // 2
        for index, stride in enumerate(self.strides):
            start = input_seed * 23
            reads = strided_addresses(
                base[f"src_s{stride}"],
                self.buffer_bytes,
                per_stream,
                stride,
                start_line=start,
            )
            writes = strided_addresses(
                base[f"dst_s{stride}"],
                self.buffer_bytes,
                per_stream,
                stride,
                start_line=start,
            )
            traces.append(
                tagged_trace(
                    [(reads, 2 * index, False), (writes, 2 * index + 1, True)]
                )
            )
        return traces


def max_stride_footprint(strides: tuple[int, ...], accesses: int) -> int:
    """Buffer size (bytes) that keeps every stride in-bounds unwrapped."""
    return max(strides) * accesses * LINE


# Re-export for symmetry with other workload modules.
SyntheticWorkloads = {
    "stride": StridedCopyWorkload,
    "mixed": MixedStrideWorkload,
}
