"""Synthetic strided-copy workloads (Section 7.2, Figs. 3, 4, 11).

The paper's synthetic benchmark copies 64 B elements with a configurable
stride; the four-thread variant with mixed strides drives Fig. 4 and
Fig. 11.  Each distinct stride gets its own source/destination variable
pair so SDAM can give every stream its own mapping.
"""

from __future__ import annotations

import numpy as np

from repro.cpu.trace import AccessTrace
from repro.errors import SimulationError
from repro.workloads.base import (
    LINE,
    VariableSpec,
    Workload,
    hotspot_addresses,
    pointer_chase_addresses,
    record_addresses,
    stable_name_seed,
    strided_addresses,
    tagged_trace,
)

__all__ = [
    "StridedCopyWorkload",
    "MixedStrideWorkload",
    "PhaseShiftWorkload",
    "TieredPressureWorkload",
]


class StridedCopyWorkload(Workload):
    """N threads copying data with one constant stride."""

    def __init__(
        self,
        stride_lines: int = 1,
        threads: int = 4,
        accesses_per_thread: int = 8192,
        buffer_bytes: int = 8 * 1024 * 1024,
    ):
        self.name = f"copy-stride{stride_lines}"
        self.stride_lines = stride_lines
        self.threads = threads
        self.accesses_per_thread = accesses_per_thread
        self.buffer_bytes = buffer_bytes

    def variables(self) -> list[VariableSpec]:
        """Allocation sites, in stable order (index = variable id)."""
        return [
            VariableSpec("src", self.buffer_bytes),
            VariableSpec("dst", self.buffer_bytes),
        ]

    def trace(self, base: dict[str, int], input_seed: int = 0) -> list[AccessTrace]:
        """Per-thread VA traces for the given base addresses and input."""
        traces = []
        per_thread = self.accesses_per_thread // 2
        for thread in range(self.threads):
            # Threads partition the buffer; the seed shifts the phase.
            start = thread * per_thread * self.stride_lines + input_seed * 17
            reads = strided_addresses(
                base["src"],
                self.buffer_bytes,
                per_thread,
                self.stride_lines,
                start_line=start,
            )
            writes = strided_addresses(
                base["dst"],
                self.buffer_bytes,
                per_thread,
                self.stride_lines,
                start_line=start,
            )
            traces.append(
                tagged_trace([(reads, 0, False), (writes, 1, True)])
            )
        return traces


class MixedStrideWorkload(Workload):
    """Concurrent copies with different strides (Fig. 4 / Fig. 11a).

    One thread (and one src/dst variable pair) per stride, so the trace
    mixes up to four distinct access patterns.
    """

    def __init__(
        self,
        strides: tuple[int, ...] = (1, 4, 8, 16),
        accesses_per_stride: int = 8192,
        buffer_bytes: int = 8 * 1024 * 1024,
    ):
        if not strides:
            raise ValueError("need at least one stride")
        self.name = "copy-mixed-" + "x".join(str(s) for s in strides)
        self.strides = tuple(strides)
        self.threads = len(strides)
        self.accesses_per_stride = accesses_per_stride
        self.buffer_bytes = buffer_bytes

    def variables(self) -> list[VariableSpec]:
        """Allocation sites, in stable order (index = variable id)."""
        specs = []
        for stride in self.strides:
            specs.append(VariableSpec(f"src_s{stride}", self.buffer_bytes))
            specs.append(VariableSpec(f"dst_s{stride}", self.buffer_bytes))
        return specs

    def trace(self, base: dict[str, int], input_seed: int = 0) -> list[AccessTrace]:
        """Per-thread VA traces for the given base addresses and input."""
        traces = []
        per_stream = self.accesses_per_stride // 2
        for index, stride in enumerate(self.strides):
            start = input_seed * 23
            reads = strided_addresses(
                base[f"src_s{stride}"],
                self.buffer_bytes,
                per_stream,
                stride,
                start_line=start,
            )
            writes = strided_addresses(
                base[f"dst_s{stride}"],
                self.buffer_bytes,
                per_stream,
                stride,
                start_line=start,
            )
            traces.append(
                tagged_trace(
                    [(reads, 2 * index, False), (writes, 2 * index + 1, True)]
                )
            )
        return traces


class PhaseShiftWorkload(Workload):
    """One buffer, one thread, four access-pattern phases in sequence.

    The adversary for *static* mapping selection: each phase's
    per-window varying-bit set conflicts with another phase's, so no
    single window permutation serves the whole run well —

    ``stream``
        stride-1 sweep; the low chunk-offset bits flip fastest, so the
        boot channel-interleaved mapping is already right.
    ``chase``
        a dependent pointer chase over the whole buffer; every offset
        bit flips, any permutation balances, nothing to gain.
    ``tiled``
        random record headers on ``tile_lines``-aligned boundaries; the
        low offset bits are *constant*, so a low-bit channel mapping
        serializes onto one channel and the mapping must move up.
    ``sweep``
        dwelling tile-local accesses (one ``tile_lines`` tile per
        ``dwell`` accesses, tiles advancing sequentially); now only the
        low bits vary per window and the ``tiled`` mapping serializes —
        the mapping must move back down.

    Phases are concatenated (not interleaved): the trace is a time
    series with genuine phase boundaries, the input the online
    controller exists for.
    """

    def __init__(
        self,
        buffer_bytes: int = 4 * 1024 * 1024,
        accesses_per_phase: int = 49152,
        tile_lines: int = 32,
        dwell: int = 2048,
        phases: tuple[str, ...] = ("stream", "chase", "tiled", "sweep"),
    ):
        if buffer_bytes < tile_lines * LINE:
            raise SimulationError("buffer smaller than one tile")
        self.name = "phase-shift"
        self.buffer_bytes = buffer_bytes
        self.accesses_per_phase = accesses_per_phase
        self.tile_lines = tile_lines
        self.dwell = dwell
        self.phases = tuple(phases)

    def variables(self) -> list[VariableSpec]:
        """Allocation sites, in stable order (index = variable id)."""
        return [VariableSpec("data", self.buffer_bytes)]

    def _sweep(self, base: int, count: int, start_tile: int) -> np.ndarray:
        """Dwell on one tile for ``dwell`` accesses, then advance."""
        index = np.arange(count, dtype=np.uint64)
        tiles = max(self.buffer_bytes // (self.tile_lines * LINE), 1)
        tile = (index // np.uint64(self.dwell) + np.uint64(start_tile)) % (
            np.uint64(tiles)
        )
        within = index % np.uint64(self.tile_lines)
        lines = tile * np.uint64(self.tile_lines) + within
        return np.uint64(base) + lines * np.uint64(LINE)

    def _phase(
        self, phase: str, base: int, rng: np.random.Generator, input_seed: int
    ) -> np.ndarray:
        count = self.accesses_per_phase
        if phase == "stream":
            return strided_addresses(
                base, self.buffer_bytes, count, 1, start_line=input_seed * 17
            )
        if phase == "chase":
            return pointer_chase_addresses(base, self.buffer_bytes, count, rng)
        if phase == "tiled":
            return record_addresses(
                base,
                self.buffer_bytes,
                count,
                rng,
                record_lines=self.tile_lines,
                lines_read=1,
            )
        if phase == "sweep":
            return self._sweep(base, count, start_tile=input_seed % 7)
        raise SimulationError(f"unknown phase {phase!r}")

    def trace(self, base: dict[str, int], input_seed: int = 0) -> list[AccessTrace]:
        """One thread's VA trace: the phases back to back."""
        rng = np.random.default_rng(
            stable_name_seed(self.name) * 65536 + input_seed
        )
        streams = [
            (self._phase(phase, base["data"], rng, input_seed), 0, False)
            for phase in self.phases
        ]
        return [tagged_trace(streams, interleave=False)]


class TieredPressureWorkload(Workload):
    """Capacity pressure with a tunable hot/cold skew (tiered memory).

    One arena larger than the fast tier; ``hot_fraction`` of the
    accesses land in a small hot region (``hot_bytes``), the rest are
    uniform over the whole arena.  ``hot_fraction=0.9`` is the
    hot/cold-skew scenario a placement policy should win (keep the hot
    region fast); ``hot_fraction=0.0`` degenerates to pure capacity
    pressure (uniform traffic over an oversized footprint), where the
    right move is to *not* thrash.

    ``cold_start`` prepends one reverse-order per-page sweep of the
    arena (an initialisation pass, tail first).  First-touch placement
    then captures the *end* of the arena, not the hot region at its
    front — so a policy must actively promote the hot set to win, and
    first-touch alone is no longer enough.
    """

    PAGE = 4096

    def __init__(
        self,
        footprint_bytes: int = 4 * 1024 * 1024,
        hot_bytes: int | None = None,
        hot_fraction: float = 0.9,
        accesses: int = 32768,
        cold_start: bool = True,
    ):
        if footprint_bytes < LINE:
            raise SimulationError("footprint smaller than a cache line")
        if not 0.0 <= hot_fraction <= 1.0:
            raise SimulationError("hot_fraction must be in [0, 1]")
        if hot_bytes is None:
            hot_bytes = max(footprint_bytes // 8, LINE)
        if hot_bytes > footprint_bytes:
            raise SimulationError("hot region larger than the footprint")
        self.name = f"tiered-pressure-h{int(round(hot_fraction * 100))}"
        self.footprint_bytes = footprint_bytes
        self.hot_bytes = hot_bytes
        self.hot_fraction = hot_fraction
        self.accesses = accesses
        self.cold_start = cold_start

    def variables(self) -> list[VariableSpec]:
        """Allocation sites, in stable order (index = variable id)."""
        return [VariableSpec("arena", self.footprint_bytes)]

    def trace(self, base: dict[str, int], input_seed: int = 0) -> list[AccessTrace]:
        """One thread's skewed VA trace over the arena."""
        rng = np.random.default_rng(
            stable_name_seed(self.name) * 65536 + input_seed
        )
        addresses = hotspot_addresses(
            base["arena"],
            self.footprint_bytes,
            self.accesses,
            rng,
            hot_fraction=self.hot_bytes / self.footprint_bytes,
            hot_probability=self.hot_fraction,
        )
        if self.cold_start and self.footprint_bytes >= self.PAGE:
            pages = self.footprint_bytes // self.PAGE
            sweep = np.uint64(base["arena"]) + np.arange(
                pages - 1, -1, -1, dtype=np.uint64
            ) * np.uint64(self.PAGE)
            addresses = np.concatenate([sweep, addresses])
        return [tagged_trace([(addresses, 0, False)])]


def max_stride_footprint(strides: tuple[int, ...], accesses: int) -> int:
    """Buffer size (bytes) that keeps every stride in-bounds unwrapped."""
    return max(strides) * accesses * LINE


# Re-export for symmetry with other workload modules.
SyntheticWorkloads = {
    "stride": StridedCopyWorkload,
    "mixed": MixedStrideWorkload,
    "phase-shift": PhaseShiftWorkload,
    "tiered-pressure": TieredPressureWorkload,
}
