"""Table-1-calibrated application models (SPEC2006 / PARSEC substitute).

The prototype runs the real SPEC2006 and PARSEC binaries; those cannot
run here, so each application is replaced by a *variable-level model*
calibrated to the paper's own characterisation (Table 1): the number of
variables, the number of major variables, and the major variables'
size distribution.  Each major variable is given a concrete access
pattern (stream, stride-k, random, hotspot, pointer chase) so the
per-variable address traces exhibit the diversity SDAM exploits; minor
variables share the remaining 20 % of references, as Experiment 3
defines.

Nominal (paper-scale) sizes are kept for reporting; allocations are
scaled down so a full suite fits comfortably in the simulated 8 GB.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.trace import AccessTrace
from repro.errors import ConfigError
from repro.workloads.base import (
    VariableSpec,
    Workload,
    hotspot_addresses,
    pointer_chase_addresses,
    random_addresses,
    record_addresses,
    stable_name_seed,
    strided_addresses,
    tagged_trace,
)

__all__ = ["MajorVariableModel", "ModeledWorkload", "major_sizes_mb"]

MB = 1_000_000
SCALE = 1 / 64
# Every major variable must exceed the cache hierarchy (1 MiB LLC), or
# its scaled-down working set would become cache-resident and vanish
# from the external trace the paper's mechanism operates on.
MIN_ALLOC = 2 * 1024 * 1024
MAX_ALLOC = 16 * 1024 * 1024

PATTERNS = (
    "stream",
    "stride2",
    "stride4",
    "stride8",
    "stride16",
    "stride32",
    "random",
    "hotspot",
    "chase",
    "record2",
    "record4",
    "record8",
)


@dataclass(frozen=True)
class MajorVariableModel:
    """One major variable: nominal size + access pattern."""

    name: str
    nominal_mb: float
    pattern: str

    def __post_init__(self) -> None:
        if self.pattern not in PATTERNS:
            raise ConfigError(f"unknown pattern {self.pattern!r}")

    @property
    def alloc_bytes(self) -> int:
        """Actual allocation size after scaling and clamping."""
        scaled = int(self.nominal_mb * MB * SCALE)
        return int(np.clip(scaled, MIN_ALLOC, MAX_ALLOC))


def major_sizes_mb(count: int, avg_mb: float, min_mb: float) -> list[float]:
    """A linear size ramp matching Table 1's (count, avg, min) exactly.

    The ramp runs from ``min`` to ``2*avg - min`` so its mean is ``avg``.
    """
    if count < 1:
        raise ConfigError("need at least one major variable")
    if count == 1:
        return [avg_mb]
    max_mb = max(2 * avg_mb - min_mb, min_mb)
    return list(np.linspace(min_mb, max_mb, count))


def _burst_merge(
    primary: np.ndarray, secondary: np.ndarray, burst: int = 256
) -> np.ndarray:
    """Alternate bursts of two phases into one stream."""
    pieces = []
    p_cursor = s_cursor = 0
    while p_cursor < primary.size or s_cursor < secondary.size:
        pieces.append(primary[p_cursor : p_cursor + burst])
        p_cursor += burst
        pieces.append(secondary[s_cursor : s_cursor + burst // 2])
        s_cursor += burst // 2
    return np.concatenate(pieces) if pieces else primary


def _pattern_addresses(
    pattern: str,
    base: int,
    size: int,
    count: int,
    rng: np.random.Generator,
    phase: int,
) -> np.ndarray:
    if pattern == "stream":
        return strided_addresses(base, size, count, 1, start_line=phase)
    if pattern.startswith("stride"):
        stride = int(pattern[len("stride") :])
        return strided_addresses(base, size, count, stride, start_line=phase)
    if pattern == "random":
        return random_addresses(base, size, count, rng)
    if pattern == "hotspot":
        return hotspot_addresses(base, size, count, rng)
    if pattern == "chase":
        return pointer_chase_addresses(base, size, count, rng)
    if pattern.startswith("record"):
        record_lines = int(pattern[len("record") :])
        return record_addresses(
            base, size, count, rng, record_lines=record_lines
        )
    raise ConfigError(f"unknown pattern {pattern!r}")  # pragma: no cover


class ModeledWorkload(Workload):
    """An application modelled as its major + minor variable population."""

    MAJOR_SHARE = 0.8  # Experiment 3: majors carry 80% of references

    def __init__(
        self,
        name: str,
        majors: list[MajorVariableModel],
        nominal_variable_count: int,
        total_accesses: int = 48_000,
        threads: int = 4,
        minor_variables: int = 8,
        write_fraction: float = 0.3,
        phase_mix: float = 0.0,
    ):
        if not majors:
            raise ConfigError("a workload needs at least one major variable")
        if not 0 <= phase_mix < 1:
            raise ConfigError("phase_mix must be in [0, 1)")
        self.name = name
        self.majors = majors
        self.phase_mix = phase_mix
        """Fraction of each major's accesses spent in a secondary
        *phase* with a different pattern.  Real variables rarely have
        one pure pattern; phase mixing is what degrades the time-
        averaged bit-flip-rate representation for K-Means while the
        sequence-aware DL path still separates the bursts (the
        Section 6.2 motivation for DL-assisted clustering)."""
        self.nominal_variable_count = max(
            nominal_variable_count, len(majors)
        )
        self.total_accesses = total_accesses
        self.threads = threads
        self.minor_variables = min(
            minor_variables, max(self.nominal_variable_count - len(majors), 0)
        )
        self.write_fraction = write_fraction

    # -- variables -----------------------------------------------------------
    def variables(self) -> list[VariableSpec]:
        """Allocation sites, in stable order (index = variable id)."""
        specs = [
            VariableSpec(major.name, major.alloc_bytes) for major in self.majors
        ]
        specs.extend(
            VariableSpec(f"minor_{index}", MIN_ALLOC)
            for index in range(self.minor_variables)
        )
        return specs

    def major_ids(self) -> list[int]:
        """Variable ids of the major variables."""
        return list(range(len(self.majors)))

    # -- Table 1 reporting ----------------------------------------------------
    def table1_nominal(self) -> dict[str, float]:
        """The Table 1 row this model was calibrated to."""
        sizes = [major.nominal_mb for major in self.majors]
        return {
            "benchmark": self.name,
            "num_variables": self.nominal_variable_count,
            "num_major_variables": len(self.majors),
            "avg_major_size_mb": float(np.mean(sizes)),
            "min_major_size_mb": float(np.min(sizes)),
        }

    # -- trace generation -------------------------------------------------------
    def trace(self, base: dict[str, int], input_seed: int = 0) -> list[AccessTrace]:
        """Per-thread VA traces for the given base addresses and input."""
        major_budget = int(self.total_accesses * self.MAJOR_SHARE)
        minor_budget = self.total_accesses - major_budget
        per_thread_major = major_budget // self.threads
        per_thread_minor = minor_budget // self.threads
        # Reference counts decay across majors (a few variables dominate),
        # while every major keeps a floor so it stays profile-visible.
        weights = 1.0 / np.sqrt(np.arange(1, len(self.majors) + 1))
        weights /= weights.sum()
        traces: list[AccessTrace] = []
        for thread in range(self.threads):
            rng = np.random.default_rng(
                stable_name_seed(self.name) * 1000 + thread * 97 + input_seed
            )
            phase = input_seed * 1031 + thread * 4099
            streams: list[tuple[np.ndarray, int, bool]] = []
            for index, major in enumerate(self.majors):
                count = max(int(per_thread_major * weights[index]), 16)
                addresses = _pattern_addresses(
                    major.pattern,
                    base[major.name],
                    major.alloc_bytes,
                    count,
                    rng,
                    phase + index * 61,
                )
                if self.phase_mix > 0:
                    # Burst a secondary pattern into the stream: the
                    # trace alternates primary/secondary segments.
                    secondary_count = int(count * self.phase_mix)
                    if secondary_count >= 8:
                        secondary_pattern = PATTERNS[
                            (index * 5 + 3) % len(PATTERNS)
                        ]
                        secondary = _pattern_addresses(
                            secondary_pattern,
                            base[major.name],
                            major.alloc_bytes,
                            secondary_count,
                            rng,
                            phase + index * 83,
                        )
                        addresses = _burst_merge(addresses, secondary)
                is_write = rng.random() < self.write_fraction
                streams.append((addresses, index, is_write))
            for minor_index in range(self.minor_variables):
                count = max(per_thread_minor // max(self.minor_variables, 1), 4)
                name = f"minor_{minor_index}"
                addresses = random_addresses(
                    base[name], MIN_ALLOC, count, rng
                )
                variable_id = len(self.majors) + minor_index
                streams.append((addresses, variable_id, False))
            traces.append(tagged_trace(streams))
        return traces
