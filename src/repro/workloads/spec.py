"""SPEC CPU2006 integer application models (Table 1 calibration).

All 12 integer benchmarks the paper profiles, each modelled from its
Table 1 row (variable count, major-variable count and sizes) plus an
access-pattern palette reflecting the application's character —
pointer-chasing for mcf/perlbench, streaming for libquantum, wide
stride mixes for omnetpp, and so on.

Note: Table 1 prints astar's sizes as avg 1.8 / min 9 MB, which is
internally inconsistent (avg < min); we take it as a transposition and
use avg 9 / min 1.8.
"""

from __future__ import annotations

from itertools import cycle, islice

from repro.workloads.models import (
    MajorVariableModel,
    ModeledWorkload,
    major_sizes_mb,
)

__all__ = ["spec2006_suite", "spec2006_workload", "SPEC2006_TABLE1"]

# (num_variables, num_major, avg_major_mb, min_major_mb) straight from Table 1.
SPEC2006_TABLE1: dict[str, tuple[int, int, float, float]] = {
    "perlbench": (7268, 1, 910, 910),
    "bzip2": (10, 10, 32, 4),
    "gcc": (49690, 34, 59, 4),
    "mcf": (3, 3, 1215, 953),
    "gobmk": (43, 5, 8, 7),
    "hmmer": (84, 10, 6, 4),
    "sjeng": (4, 4, 60, 54),
    "libquantum": (10, 7, 212, 4),
    "h264ref": (193, 8, 24, 7),
    "omnetpp": (9400, 65, 3, 1),
    "astar": (178, 38, 9, 1.8),
    "xalancbmk": (4802, 4, 230, 78),
}

# Access-pattern palette per application (cycled over major variables).
SPEC2006_PATTERNS: dict[str, list[str]] = {
    # perl's arena-allocated SV bodies are padded records.
    "perlbench": ["record2"],
    "bzip2": ["stream", "stride4", "stream", "stride2"],
    "gcc": ["random", "record4", "stream", "hotspot", "stride8"],
    # mcf's network-simplex node/arc structs are multi-line records.
    "mcf": ["record4", "record4", "chase"],
    "gobmk": ["hotspot", "record2", "random"],
    "hmmer": ["stride2", "stride8", "stream"],
    "sjeng": ["record2", "hotspot"],  # transposition-table entries
    "libquantum": ["stream", "stream", "stride16"],
    "h264ref": ["stride2", "record4", "stream"],
    "omnetpp": [
        "record4",
        "stride2",
        "random",
        "record8",
        "chase",
        "stride16",
        "hotspot",
        "record2",
        "stride4",
        "stream",
        "stride32",
    ],
    "astar": ["record4", "chase", "record8", "hotspot", "stride8"],
    "xalancbmk": ["record2", "hotspot", "random"],
}


def spec2006_workload(name: str, **overrides) -> ModeledWorkload:
    """Build one SPEC2006 application model by name."""
    num_vars, num_major, avg_mb, min_mb = SPEC2006_TABLE1[name]
    sizes = sorted(major_sizes_mb(num_major, avg_mb, min_mb), reverse=True)
    patterns = list(islice(cycle(SPEC2006_PATTERNS[name]), num_major))
    majors = [
        MajorVariableModel(
            name=f"{name}_v{index}", nominal_mb=size, pattern=pattern
        )
        for index, (size, pattern) in enumerate(zip(sizes, patterns))
    ]
    # Many-variable applications exhibit phase behaviour, which is what
    # makes flat bit-flip-rate vectors a poor clustering representation
    # (Section 6.2's case for DL assistance).
    overrides.setdefault("phase_mix", 0.35 if num_major >= 20 else 0.0)
    return ModeledWorkload(
        name=name,
        majors=majors,
        nominal_variable_count=num_vars,
        **overrides,
    )


def spec2006_suite(**overrides) -> list[ModeledWorkload]:
    """All 12 SPEC2006 integer models, Table 1 order."""
    return [spec2006_workload(name, **overrides) for name in SPEC2006_TABLE1]
