"""In-memory data-analytics workloads: hash join and merge-sort join.

Both joins really execute (match counts are computed and testable) and
emit the address streams of their data structures: the hash join mixes
streaming relation scans with random hash-table probes (Balkesen et
al.'s main-memory join picture); the sort-merge join's sort phase
produces the classic doubling-stride passes, followed by streaming
merges (Wolf et al.).
"""

from __future__ import annotations

import numpy as np

from repro.cpu.trace import AccessTrace
from repro.workloads.base import (
    VariableSpec,
    Workload,
    gather_addresses,
    strided_addresses,
    tagged_trace,
)
from repro.workloads.graph import _split_threads

__all__ = ["HashJoinWorkload", "MergeJoinWorkload"]

TUPLE_BYTES = 16  # (key, payload)
BUCKET_BYTES = 256  # a four-line bucket: header + chained entries
"""Main-memory hash tables pad buckets to several cache lines; probes
touch the header line, leaving the low channel-select bits constant —
the aligned-record pattern SDAM recovers."""


class HashJoinWorkload(Workload):
    """Build a hash table on R, probe with S."""

    compute_intensity = 0.25

    def __init__(
        self,
        build_tuples: int = 16_384,
        probe_tuples: int = 32_768,
        threads: int = 4,
        max_accesses: int = 48_000,
    ):
        self.name = "hashjoin"
        self.build_tuples = build_tuples
        self.probe_tuples = probe_tuples
        self.threads = threads
        self.max_accesses = max_accesses
        self.num_buckets = 1 << (build_tuples - 1).bit_length()

    def variables(self) -> list[VariableSpec]:
        """Allocation sites, in stable order (index = variable id)."""
        return [
            VariableSpec("relation_r", self.build_tuples * TUPLE_BYTES),
            VariableSpec("relation_s", self.probe_tuples * TUPLE_BYTES),
            VariableSpec("hash_table", self.num_buckets * BUCKET_BYTES),
            VariableSpec("join_output", self.probe_tuples * TUPLE_BYTES),
        ]

    def _keys(self, input_seed: int):
        rng = np.random.default_rng(1000 + input_seed)
        r_keys = rng.integers(0, self.build_tuples * 2, self.build_tuples)
        s_keys = rng.integers(0, self.build_tuples * 2, self.probe_tuples)
        return r_keys, s_keys

    def run_reference(self, input_seed: int = 0) -> int:
        """Actual number of matching probe tuples."""
        r_keys, s_keys = self._keys(input_seed)
        return int(np.isin(s_keys, r_keys).sum())

    def trace(self, base: dict[str, int], input_seed: int = 0) -> list[AccessTrace]:
        """Per-thread VA traces for the given base addresses and input."""
        r_keys, s_keys = self._keys(input_seed)
        mask = self.num_buckets - 1
        budget = self.max_accesses
        matches = np.isin(s_keys, r_keys)
        build_scan = strided_addresses(
            base["relation_r"],
            self.build_tuples * TUPLE_BYTES,
            min(self.build_tuples, budget // 6),
            1,
        )
        build_inserts = gather_addresses(
            base["hash_table"], BUCKET_BYTES, (r_keys & mask)
        )[: budget // 6]
        probe_scan = strided_addresses(
            base["relation_s"],
            self.probe_tuples * TUPLE_BYTES,
            min(self.probe_tuples, budget // 3),
            1,
        )
        probe_lookups = gather_addresses(
            base["hash_table"], BUCKET_BYTES, (s_keys & mask)
        )[: budget // 3]
        output_writes = gather_addresses(
            base["join_output"], TUPLE_BYTES, np.nonzero(matches)[0]
        )[: budget // 6]
        build = tagged_trace(
            [(build_scan, 0, False), (build_inserts, 2, True)]
        )
        probe = tagged_trace(
            [
                (probe_scan, 1, False),
                (probe_lookups, 2, False),
                (output_writes, 3, True),
            ]
        )
        # Phases run back to back: build, then probe.
        merged = AccessTrace(
            va=np.concatenate([build.va, probe.va]),
            is_write=np.concatenate([build.is_write, probe.is_write]),
            variable=np.concatenate([build.variable, probe.variable]),
        )
        return _split_threads(merged, self.threads)


class MergeJoinWorkload(Workload):
    """Sort-merge join over row-store relations (Wolf et al.).

    Tuples are 256 B row-format records.  The sort phase extracts the
    key column — a stride-4 scan (one line out of every four-line
    tuple) — and writes a compact key/rowid run; the merge phase
    streams both sorted key runs and materialises matching full tuples
    by rowid (aligned four-line record gathers).
    """

    compute_intensity = 0.25
    ROW_BYTES = 256  # one row-store tuple = 4 cache lines

    def __init__(
        self,
        tuples: int = 16_384,
        threads: int = 4,
        max_accesses: int = 48_000,
    ):
        self.name = "mergejoin"
        self.tuples = tuples
        self.threads = threads
        self.max_accesses = max_accesses

    def variables(self) -> list[VariableSpec]:
        """Allocation sites, in stable order (index = variable id)."""
        relation = self.tuples * self.ROW_BYTES
        run = self.tuples * TUPLE_BYTES  # (key, rowid) pairs
        return [
            VariableSpec("relation_a", relation),
            VariableSpec("relation_b", relation),
            VariableSpec("sorted_runs", 2 * run),
            VariableSpec("join_output", relation),
        ]

    def run_reference(self, input_seed: int = 0) -> int:
        """Run the real computation; returns the checkable result."""
        rng = np.random.default_rng(2000 + input_seed)
        a = np.sort(rng.integers(0, self.tuples, self.tuples))
        b = np.sort(rng.integers(0, self.tuples, self.tuples))
        return int(np.isin(a, b).sum())

    def trace(self, base: dict[str, int], input_seed: int = 0) -> list[AccessTrace]:
        """Per-thread VA traces for the given base addresses and input."""
        rng = np.random.default_rng(2000 + input_seed)
        relation = self.tuples * self.ROW_BYTES
        run = self.tuples * TUPLE_BYTES
        budget = self.max_accesses
        tuple_lines = self.ROW_BYTES // 64
        # Sort phase: key-column scans (stride = tuple width) + run writes.
        key_scan_count = min(self.tuples, budget // 4)
        key_scan_a = strided_addresses(
            base["relation_a"], relation, key_scan_count, tuple_lines
        )
        key_scan_b = strided_addresses(
            base["relation_b"], relation, key_scan_count, tuple_lines
        )
        run_writes = strided_addresses(
            base["sorted_runs"], 2 * run, budget // 8, 1
        )
        # Merge phase: stream the sorted runs, gather matching tuples.
        run_reads = strided_addresses(base["sorted_runs"], 2 * run, budget // 8, 1)
        matches = rng.integers(0, self.tuples, budget // 8, dtype=np.uint64)
        tuple_gathers = gather_addresses(
            base["relation_a"], self.ROW_BYTES, matches
        )
        output_writes = strided_addresses(
            base["join_output"], relation, budget // 8, 1
        )
        merged = tagged_trace(
            [
                (key_scan_a, 0, False),
                (key_scan_b, 1, False),
                (run_writes, 2, True),
                (run_reads, 2, False),
                (tuple_gathers, 0, False),
                (output_writes, 3, True),
            ]
        )
        return _split_threads(merged, self.threads)
