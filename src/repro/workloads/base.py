"""Workload protocol and access-pattern building blocks.

A workload declares its *variables* (allocation sites with sizes) and,
given the base address malloc returned for each, emits per-thread
virtual-address traces tagged with the generating variable — the same
(variable -> address stream) information the prototype recovers with
gcc's PC table and call-stack matching.

The pattern helpers below are the vocabulary every workload model is
built from: streams, strides, gathers, hotspots and pointer chases.
All return cache-line-aligned ``uint64`` VA arrays.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.cpu.trace import AccessTrace
from repro.errors import SimulationError

__all__ = [
    "VariableSpec",
    "Workload",
    "stable_name_seed",
    "strided_addresses",
    "random_addresses",
    "gather_addresses",
    "hotspot_addresses",
    "pointer_chase_addresses",
    "record_addresses",
    "tagged_trace",
]

LINE = 64


def stable_name_seed(name: str) -> int:
    """A 16-bit seed derived from a name, stable across processes.

    ``hash(str)`` is randomised per interpreter (PYTHONHASHSEED), so
    trace generators must not derive RNG seeds from it: a worker
    process would generate a different "same" workload than its
    parent, breaking both parallel/serial equivalence and the on-disk
    stage cache.
    """
    return zlib.crc32(name.encode()) & 0xFFFF


@dataclass(frozen=True)
class VariableSpec:
    """One allocation site: its name and allocated size."""

    name: str
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise SimulationError(f"variable {self.name!r} has no size")


class Workload(ABC):
    """A program model: variables + a trace generator."""

    name: str = "workload"
    threads: int = 1
    compute_intensity: float = 1.0
    """Relative CPU work per program access.  Data-intensive kernels do
    almost nothing per touched byte (compare/add/swap), so their end-to-
    end time is dominated by memory — the property Section 7.4 credits
    for their larger speedups."""

    @abstractmethod
    def variables(self) -> list[VariableSpec]:
        """Allocation sites, in a stable order (index = variable id)."""

    @abstractmethod
    def trace(
        self, base: dict[str, int], input_seed: int = 0
    ) -> list[AccessTrace]:
        """Per-thread VA traces given each variable's base address.

        ``input_seed`` selects the program input (profiling vs
        evaluation runs use different seeds, Section 7.3).
        """

    # -- cache keying --------------------------------------------------------
    def spec_dict(self) -> dict:
        """A stable description of this instance for content hashing.

        The default walks the public instance attributes (the
        constructor parameters every workload stores); private
        attributes — lazily built caches like generated graphs — are
        skipped because they are derived from the public spec.
        Workloads with non-parameter public state should override this.
        """
        from repro.core.keys import canonical

        spec: dict = {"__workload__": type(self).__name__}
        for key in sorted(vars(self)):
            if key.startswith("_"):
                continue
            spec[key] = canonical(getattr(self, key))
        return spec

    def spec_hash(self) -> str:
        """Hex digest of :meth:`spec_dict` — the workload's cache key."""
        from repro.core.keys import stable_hash

        return stable_hash(self.spec_dict())

    # -- conveniences --------------------------------------------------------
    def variable_id(self, name: str) -> int:
        """Index of a variable by name."""
        for index, spec in enumerate(self.variables()):
            if spec.name == name:
                return index
        raise SimulationError(f"{self.name} has no variable {name!r}")

    def total_footprint(self) -> int:
        """Sum of all variables' sizes in bytes."""
        return sum(spec.size_bytes for spec in self.variables())

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, threads={self.threads})"


# ---------------------------------------------------------------------------
# Pattern helpers
# ---------------------------------------------------------------------------

def _wrap(offsets: np.ndarray, size: int) -> np.ndarray:
    return offsets % np.uint64(max(size, LINE))


def strided_addresses(
    base: int,
    size: int,
    count: int,
    stride_lines: int = 1,
    start_line: int = 0,
) -> np.ndarray:
    """Constant-stride accesses, wrapping at the variable's end."""
    if count <= 0:
        return np.zeros(0, dtype=np.uint64)
    index = np.arange(count, dtype=np.uint64) + np.uint64(start_line)
    offsets = _wrap(index * np.uint64(stride_lines * LINE), size)
    return np.uint64(base) + offsets


def random_addresses(
    base: int, size: int, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform random line-aligned accesses."""
    if count <= 0:
        return np.zeros(0, dtype=np.uint64)
    lines = max(size // LINE, 1)
    offsets = rng.integers(0, lines, count, dtype=np.uint64) * np.uint64(LINE)
    return np.uint64(base) + offsets


def gather_addresses(base: int, element_bytes: int, indices: np.ndarray) -> np.ndarray:
    """Indexed accesses: ``base + indices * element_bytes`` (e.g. rank[v])."""
    indices = np.asarray(indices, dtype=np.uint64)
    return np.uint64(base) + indices * np.uint64(element_bytes)


def hotspot_addresses(
    base: int,
    size: int,
    count: int,
    rng: np.random.Generator,
    hot_fraction: float = 0.1,
    hot_probability: float = 0.9,
) -> np.ndarray:
    """Skewed accesses: most hits land in a small hot region."""
    if count <= 0:
        return np.zeros(0, dtype=np.uint64)
    lines = max(size // LINE, 1)
    hot_lines = max(int(lines * hot_fraction), 1)
    in_hot = rng.random(count) < hot_probability
    offsets = np.where(
        in_hot,
        rng.integers(0, hot_lines, count, dtype=np.uint64),
        rng.integers(0, lines, count, dtype=np.uint64),
    )
    return np.uint64(base) + offsets * np.uint64(LINE)


def record_addresses(
    base: int,
    size: int,
    count: int,
    rng: np.random.Generator,
    record_lines: int = 4,
    lines_read: int = 1,
) -> np.ndarray:
    """Random accesses to the headers of aligned power-of-two records.

    The pattern behind many data-intensive structures: padded vertex
    records, hash buckets, quantised vectors.  Because records are
    ``record_lines``-aligned and usually only the header (first
    ``lines_read`` lines) is touched, the low channel-select bits are
    constant — under a boot-time channel-interleaved mapping only
    ``1/record_lines`` of the channels ever see traffic.  This is the
    access class SDAM recovers the most bandwidth from.
    """
    if count <= 0:
        return np.zeros(0, dtype=np.uint64)
    records = max(size // (record_lines * LINE), 1)
    picks = rng.integers(0, records, -(-count // lines_read), dtype=np.uint64)
    starts = picks * np.uint64(record_lines * LINE)
    if lines_read == 1:
        return (np.uint64(base) + starts)[:count]
    offsets = np.arange(lines_read, dtype=np.uint64) * np.uint64(LINE)
    addresses = (starts[:, None] + offsets[None, :]).reshape(-1)
    return (np.uint64(base) + addresses)[:count]


def pointer_chase_addresses(
    base: int, size: int, count: int, rng: np.random.Generator
) -> np.ndarray:
    """A dependent chain through a random permutation of the lines."""
    if count <= 0:
        return np.zeros(0, dtype=np.uint64)
    lines = max(size // LINE, 2)
    successor = rng.permutation(lines).astype(np.uint64)
    path = np.empty(count, dtype=np.uint64)
    node = np.uint64(0)
    for step in range(count):
        path[step] = node
        node = successor[int(node)]
    return np.uint64(base) + path * np.uint64(LINE)


def tagged_trace(
    streams: list[tuple[np.ndarray, int, bool]],
    interleave: bool = True,
) -> AccessTrace:
    """Combine ``(addresses, variable_id, is_write)`` streams into a trace.

    ``interleave=True`` merges the streams in proportional round-robin
    order (the usual picture of a loop touching several structures per
    iteration); otherwise they are concatenated phase-by-phase.
    """
    streams = [(a, v, w) for a, v, w in streams if len(a)]
    if not streams:
        return AccessTrace(va=np.zeros(0, dtype=np.uint64))
    va_parts = [np.asarray(a, dtype=np.uint64) for a, _v, _w in streams]
    var_parts = [np.full(len(a), v, dtype=np.int64) for a, v, _w in streams]
    wr_parts = [np.full(len(a), w, dtype=bool) for a, _v, w in streams]
    if not interleave or len(streams) == 1:
        return AccessTrace(
            va=np.concatenate(va_parts),
            is_write=np.concatenate(wr_parts),
            variable=np.concatenate(var_parts),
        )
    total = sum(len(a) for a in va_parts)
    # Proportional interleave: position each stream's k-th access at
    # fractional rank k/len, then sort by rank (stable).
    ranks = np.concatenate(
        [
            (np.arange(len(a), dtype=np.float64) + 0.5) / len(a)
            for a in va_parts
        ]
    )
    order = np.argsort(ranks, kind="stable")
    va = np.concatenate(va_parts)[order]
    variable = np.concatenate(var_parts)[order]
    is_write = np.concatenate(wr_parts)[order]
    assert va.size == total
    return AccessTrace(va=va, is_write=is_write, variable=variable)
