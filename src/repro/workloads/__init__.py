"""Workload models: synthetic, SPEC/PARSEC (Table 1), data-intensive."""

from repro.workloads.analytics import HashJoinWorkload, MergeJoinWorkload
from repro.workloads.base import (
    VariableSpec,
    Workload,
    gather_addresses,
    hotspot_addresses,
    pointer_chase_addresses,
    random_addresses,
    strided_addresses,
    tagged_trace,
)
from repro.workloads.graph import (
    BFSWorkload,
    CSRGraph,
    PageRankWorkload,
    SSSPWorkload,
    rmat_graph,
)
from repro.workloads.ir import HNSWWorkload, IVFPQWorkload, KMeansWorkload
from repro.workloads.models import (
    MajorVariableModel,
    ModeledWorkload,
    major_sizes_mb,
)
from repro.workloads.parsec import PARSEC_TABLE1, parsec_suite, parsec_workload
from repro.workloads.spec import SPEC2006_TABLE1, spec2006_suite, spec2006_workload
from repro.workloads.synthetic import (
    MixedStrideWorkload,
    PhaseShiftWorkload,
    StridedCopyWorkload,
    TieredPressureWorkload,
)


def data_intensive_suite(**overrides) -> list[Workload]:
    """The paper's eight data-intensive benchmarks (Section 7.2)."""
    return [
        BFSWorkload(**overrides.get("bfs", {})),
        PageRankWorkload(**overrides.get("pagerank", {})),
        SSSPWorkload(**overrides.get("sssp", {})),
        HashJoinWorkload(**overrides.get("hashjoin", {})),
        MergeJoinWorkload(**overrides.get("mergejoin", {})),
        KMeansWorkload(**overrides.get("kmeans", {})),
        HNSWWorkload(**overrides.get("hnsw", {})),
        IVFPQWorkload(**overrides.get("ivfpq", {})),
    ]


__all__ = [
    "BFSWorkload",
    "CSRGraph",
    "HNSWWorkload",
    "HashJoinWorkload",
    "IVFPQWorkload",
    "KMeansWorkload",
    "MajorVariableModel",
    "MergeJoinWorkload",
    "MixedStrideWorkload",
    "ModeledWorkload",
    "PARSEC_TABLE1",
    "PageRankWorkload",
    "PhaseShiftWorkload",
    "SPEC2006_TABLE1",
    "SSSPWorkload",
    "StridedCopyWorkload",
    "TieredPressureWorkload",
    "VariableSpec",
    "Workload",
    "data_intensive_suite",
    "gather_addresses",
    "hotspot_addresses",
    "major_sizes_mb",
    "parsec_suite",
    "parsec_workload",
    "pointer_chase_addresses",
    "random_addresses",
    "rmat_graph",
    "spec2006_suite",
    "spec2006_workload",
    "strided_addresses",
    "tagged_trace",
]
