"""Graph-processing workloads: R-MAT generation, BFS, PageRank, SSSP.

The paper evaluates large-scale graph processing (BFS, PageRank,
single-source shortest path) on Graph500-generated inputs (scale 20,
edge factor 16), using different generator seeds for profiling and
evaluation.  Here the same R-MAT/Kronecker generator is implemented in
numpy, the algorithms actually run (levels, ranks, distances are
computed and testable), and every data-structure touch is emitted as a
tagged address trace: ``xadj`` (offsets), ``adjncy`` (edges),
and the per-vertex state arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.trace import AccessTrace
from repro.errors import ConfigError
from repro.workloads.base import (
    VariableSpec,
    Workload,
    gather_addresses,
    tagged_trace,
)

__all__ = [
    "CSRGraph",
    "rmat_graph",
    "BFSWorkload",
    "PageRankWorkload",
    "SSSPWorkload",
]


@dataclass(frozen=True)
class CSRGraph:
    """Compressed-sparse-row adjacency."""

    xadj: np.ndarray  # (n+1,) int64 offsets
    adjncy: np.ndarray  # (m,) int64 neighbours
    weights: np.ndarray  # (m,) float64 edge weights

    @property
    def num_vertices(self) -> int:
        """Vertex count."""
        return self.xadj.size - 1

    @property
    def num_edges(self) -> int:
        """Edge count."""
        return self.adjncy.size

    def degree(self, vertices: np.ndarray) -> np.ndarray:
        """Out-degrees of the given vertices."""
        return self.xadj[vertices + 1] - self.xadj[vertices]

    def edge_targets(self, vertices: np.ndarray) -> np.ndarray:
        """All neighbours of ``vertices``, concatenated (CSR order)."""
        starts = self.xadj[vertices]
        counts = self.degree(vertices)
        return self.adjncy[ragged_ranges(starts, counts)]


def ragged_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Vectorised ``concat(arange(s, s+c) for s, c in zip(starts, counts))``."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    bases = np.repeat(np.asarray(starts, dtype=np.int64), counts)
    resets = np.repeat(np.cumsum(counts) - counts, counts)
    return bases + (np.arange(total) - resets)


def rmat_graph(
    scale: int = 12,
    edge_factor: int = 16,
    seed: int = 0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> CSRGraph:
    """Graph500-style Kronecker (R-MAT) generator.

    Produces ``2**scale`` vertices and ``edge_factor * 2**scale``
    directed edges with the standard (A,B,C,D) = (.57,.19,.19,.05)
    skew, then builds CSR.  Different seeds give different graphs with
    the same structure — the paper's profiling/evaluation split.
    """
    if scale < 1:
        raise ConfigError("scale must be >= 1")
    n = 1 << scale
    m = edge_factor * n
    rng = np.random.default_rng(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(m)
        # Quadrant probabilities: (a) TL, (b) TR, (c) BL, (d) BR.
        right = (r >= a) & (r < a + b) | (r >= a + b + c)
        down = r >= a + b
        src |= (down.astype(np.int64)) << bit
        dst |= (right.astype(np.int64)) << bit
    # Permute vertex ids so degree is not correlated with index.
    perm = rng.permutation(n)
    src, dst = perm[src], perm[dst]
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    xadj = np.zeros(n + 1, dtype=np.int64)
    np.add.at(xadj, src + 1, 1)
    xadj = np.cumsum(xadj)
    weights = rng.integers(1, 256, m).astype(np.float64)
    return CSRGraph(xadj=xadj, adjncy=dst, weights=weights)


def _subsample(addresses: np.ndarray, limit: int) -> np.ndarray:
    """Uniformly thin an address stream to ``limit`` entries, in order."""
    if addresses.size <= limit:
        return addresses
    keep = np.linspace(0, addresses.size - 1, limit).astype(np.int64)
    return addresses[keep]


class _GraphWorkloadBase(Workload):
    """Shared plumbing: graph storage variables and thread partitioning."""

    compute_intensity = 0.25
    VERTEX_BYTES = 8  # xadj entries, per-vertex state
    EDGE_BYTES = 8

    def __init__(self, scale: int, edge_factor: int, threads: int = 4):
        self.scale = scale
        self.edge_factor = edge_factor
        self.threads = threads
        self._graphs: dict[int, CSRGraph] = {}

    def graph(self, input_seed: int) -> CSRGraph:
        """The (cached) graph for an input seed."""
        if input_seed not in self._graphs:
            self._graphs[input_seed] = rmat_graph(
                self.scale, self.edge_factor, seed=input_seed
            )
        return self._graphs[input_seed]

    def _graph_variables(self) -> list[VariableSpec]:
        n = 1 << self.scale
        m = self.edge_factor * n
        return [
            VariableSpec("xadj", (n + 1) * self.VERTEX_BYTES),
            VariableSpec("adjncy", m * self.EDGE_BYTES),
        ]


class BFSWorkload(_GraphWorkloadBase):
    """Level-synchronous breadth-first search (Graph500 kernel 2)."""

    VERTEX_RECORD_BYTES = 256
    """Per-vertex property record (level, parent, flags, padding) —
    graph frameworks pad vertex state for lock/false-sharing reasons,
    which is exactly the aligned-record pattern SDAM recovers."""

    def __init__(
        self,
        scale: int = 13,
        edge_factor: int = 8,
        threads: int = 4,
        max_accesses: int = 48_000,
        root: int = 0,
    ):
        super().__init__(scale, edge_factor, threads)
        self.name = "bfs"
        self.max_accesses = max_accesses
        self.root = root
        """Preferred root; an isolated root falls back to the highest-
        degree vertex (Graph500 requires roots with outgoing edges)."""

    def _effective_root(self, graph: CSRGraph) -> int:
        if graph.degree(np.array([self.root]))[0] > 0:
            return self.root
        return int(np.argmax(np.diff(graph.xadj)))

    def variables(self) -> list[VariableSpec]:
        """Allocation sites, in stable order (index = variable id)."""
        n = 1 << self.scale
        return self._graph_variables() + [
            VariableSpec("levels", n * self.VERTEX_RECORD_BYTES),
            VariableSpec("frontier", n * self.VERTEX_BYTES),
        ]

    def run_reference(self, input_seed: int = 0) -> np.ndarray:
        """Plain BFS result (levels), for correctness tests."""
        levels, _trace_parts = self._bfs(self.graph(input_seed))
        return levels

    def _bfs(self, graph: CSRGraph):
        n = graph.num_vertices
        root = self._effective_root(graph)
        levels = np.full(n, -1, dtype=np.int64)
        levels[root] = 0
        frontier = np.array([root], dtype=np.int64)
        parts = []  # (xadj_idx, edge_idx, state_idx, next_frontier_len)
        depth = 0
        while frontier.size:
            starts = graph.xadj[frontier]
            counts = graph.degree(frontier)
            edge_positions = ragged_ranges(starts, counts)
            neighbours = graph.adjncy[edge_positions]
            fresh = levels[neighbours] < 0
            new_vertices = np.unique(neighbours[fresh])
            depth += 1
            levels[new_vertices] = depth
            parts.append((frontier, edge_positions, neighbours, new_vertices))
            frontier = new_vertices
        return levels, parts

    def trace(self, base: dict[str, int], input_seed: int = 0) -> list[AccessTrace]:
        """Per-thread VA traces for the given base addresses and input."""
        graph = self.graph(input_seed)
        _levels, parts = self._bfs(graph)
        id_xadj = 0
        id_adjncy = 1
        id_levels = 2
        id_frontier = 3
        xadj_all, edge_all, level_all, frontier_all = [], [], [], []
        for frontier, edge_positions, neighbours, new_vertices in parts:
            xadj_all.append(
                gather_addresses(base["xadj"], self.VERTEX_BYTES, frontier)
            )
            edge_all.append(
                gather_addresses(base["adjncy"], self.EDGE_BYTES, edge_positions)
            )
            level_all.append(
                gather_addresses(
                    base["levels"], self.VERTEX_RECORD_BYTES, neighbours
                )
            )
            frontier_all.append(
                gather_addresses(
                    base["frontier"], self.VERTEX_BYTES,
                    np.arange(new_vertices.size),
                )
            )
        budget = self.max_accesses
        streams = [
            (_subsample(np.concatenate(xadj_all), budget // 8), id_xadj, False),
            (_subsample(np.concatenate(edge_all), budget // 2), id_adjncy, False),
            (_subsample(np.concatenate(level_all), budget // 4), id_levels, True),
            (
                _subsample(np.concatenate(frontier_all), budget // 8),
                id_frontier,
                True,
            ),
        ]
        merged = tagged_trace(streams)
        return _split_threads(merged, self.threads)


class PageRankWorkload(_GraphWorkloadBase):
    """Pull-based PageRank power iteration."""

    RANK_RECORD_BYTES = 256
    """Padded per-vertex record: rank, out-degree, next rank, flags."""

    def __init__(
        self,
        scale: int = 13,
        edge_factor: int = 8,
        threads: int = 4,
        iterations: int = 2,
        max_accesses: int = 48_000,
        damping: float = 0.85,
    ):
        super().__init__(scale, edge_factor, threads)
        self.name = "pagerank"
        self.iterations = iterations
        self.max_accesses = max_accesses
        self.damping = damping

    def variables(self) -> list[VariableSpec]:
        """Allocation sites, in stable order (index = variable id)."""
        n = 1 << self.scale
        return self._graph_variables() + [
            VariableSpec("rank_old", n * self.RANK_RECORD_BYTES),
            VariableSpec("rank_new", n * self.RANK_RECORD_BYTES),
        ]

    def run_reference(self, input_seed: int = 0) -> np.ndarray:
        """Actual ranks after ``iterations`` pull iterations."""
        graph = self.graph(input_seed)
        n = graph.num_vertices
        rank = np.full(n, 1.0 / n)
        degree = graph.xadj[1:] - graph.xadj[:-1]
        src = np.repeat(np.arange(n), degree)
        safe_degree = np.maximum(degree, 1)
        dangling = degree == 0
        for _ in range(self.iterations):
            contribution = rank[src] / safe_degree[src]
            incoming = np.zeros(n)
            np.add.at(incoming, graph.adjncy, contribution)
            # Dangling vertices spread their mass uniformly.
            incoming += rank[dangling].sum() / n
            rank = (1 - self.damping) / n + self.damping * incoming
        return rank

    def trace(self, base: dict[str, int], input_seed: int = 0) -> list[AccessTrace]:
        """Per-thread VA traces for the given base addresses and input."""
        graph = self.graph(input_seed)
        n = graph.num_vertices
        budget = self.max_accesses
        vertex_stream = np.arange(n, dtype=np.int64)
        streams = [
            (
                _subsample(
                    gather_addresses(base["xadj"], self.VERTEX_BYTES, vertex_stream),
                    budget // 8,
                ),
                0,
                False,
            ),
            (
                _subsample(
                    gather_addresses(
                        base["adjncy"],
                        self.EDGE_BYTES,
                        np.arange(graph.num_edges),
                    ),
                    budget * 3 // 8,
                ),
                1,
                False,
            ),
            (
                _subsample(
                    gather_addresses(
                        base["rank_old"], self.RANK_RECORD_BYTES, graph.adjncy
                    ),
                    budget * 3 // 8,
                ),
                2,
                False,
            ),
            (
                _subsample(
                    gather_addresses(
                        base["rank_new"], self.RANK_RECORD_BYTES, vertex_stream
                    ),
                    budget // 8,
                ),
                3,
                True,
            ),
        ]
        merged = tagged_trace(streams)
        return _split_threads(merged, self.threads)


class SSSPWorkload(_GraphWorkloadBase):
    """Bellman-Ford-style single-source shortest path rounds."""

    DIST_RECORD_BYTES = 128
    """Padded per-vertex record: distance, predecessor, bucket links."""

    def __init__(
        self,
        scale: int = 13,
        edge_factor: int = 8,
        threads: int = 4,
        rounds: int = 3,
        max_accesses: int = 48_000,
        source: int = 0,
    ):
        super().__init__(scale, edge_factor, threads)
        self.name = "sssp"
        self.rounds = rounds
        self.max_accesses = max_accesses
        self.source = source

    def variables(self) -> list[VariableSpec]:
        """Allocation sites, in stable order (index = variable id)."""
        n = 1 << self.scale
        m = self.edge_factor * n
        return self._graph_variables() + [
            VariableSpec("edge_weights", m * 8),
            VariableSpec("distance", n * self.DIST_RECORD_BYTES),
        ]

    def run_reference(self, input_seed: int = 0) -> np.ndarray:
        """Run the real computation; returns the checkable result."""
        graph = self.graph(input_seed)
        n = graph.num_vertices
        src = np.repeat(np.arange(n), graph.xadj[1:] - graph.xadj[:-1])
        distance = np.full(n, np.inf)
        distance[self.source] = 0.0
        for _ in range(self.rounds):
            candidate = distance[src] + graph.weights
            np.minimum.at(distance, graph.adjncy, candidate)
        return distance

    def trace(self, base: dict[str, int], input_seed: int = 0) -> list[AccessTrace]:
        """Per-thread VA traces for the given base addresses and input."""
        graph = self.graph(input_seed)
        n = graph.num_vertices
        m = graph.num_edges
        budget = self.max_accesses
        src = np.repeat(np.arange(n), graph.xadj[1:] - graph.xadj[:-1])
        edge_stream = np.arange(m)
        per_round = max(budget // (4 * self.rounds), 64)
        streams = []
        for _round in range(self.rounds):
            streams.extend(
                [
                    (
                        _subsample(
                            gather_addresses(
                                base["adjncy"], self.EDGE_BYTES, edge_stream
                            ),
                            per_round,
                        ),
                        1,
                        False,
                    ),
                    (
                        _subsample(
                            gather_addresses(base["edge_weights"], 8, edge_stream),
                            per_round,
                        ),
                        2,
                        False,
                    ),
                    (
                        _subsample(
                            gather_addresses(
                                base["distance"], self.DIST_RECORD_BYTES, src
                            ),
                            per_round
                        ),
                        3,
                        False,
                    ),
                    (
                        _subsample(
                            gather_addresses(
                                base["distance"],
                                self.DIST_RECORD_BYTES,
                                graph.adjncy,
                            ),
                            per_round,
                        ),
                        3,
                        True,
                    ),
                ]
            )
        merged = tagged_trace(streams)
        return _split_threads(merged, self.threads)


def _split_threads(trace: AccessTrace, threads: int) -> list[AccessTrace]:
    """Deal a merged trace across threads round-robin (work stealing)."""
    if threads <= 1:
        return [trace]
    return [
        trace.select(np.arange(len(trace)) % threads == t)
        for t in range(threads)
    ]
