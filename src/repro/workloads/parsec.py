"""PARSEC application models (Table 1 calibration).

The seven PARSEC applications the paper studies, modelled from their
Table 1 rows.  The paper spells one of them "cenneal"; we keep the
canonical "canneal" as the workload name and note the alias.
"""

from __future__ import annotations

from itertools import cycle, islice

from repro.workloads.models import (
    MajorVariableModel,
    ModeledWorkload,
    major_sizes_mb,
)

__all__ = ["parsec_suite", "parsec_workload", "PARSEC_TABLE1"]

PARSEC_TABLE1: dict[str, tuple[int, int, float, float]] = {
    "bodytrack": (220, 12, 212, 36),
    "canneal": (17, 9, 365, 69),  # printed as "cenneal" in the paper
    "dedup": (29, 15, 215, 12),
    "ferret": (109, 22, 65, 23),
    "freqmine": (60, 9, 215, 37),
    "streamcluster": (35, 9, 234, 68),
    "vips": (892, 25, 125, 36),
}

PARSEC_PATTERNS: dict[str, list[str]] = {
    "bodytrack": ["stream", "record4", "stride2"],
    # canneal's netlist elements are pointer-linked padded records.
    "canneal": ["record4", "chase"],
    "dedup": ["stream", "record8", "hotspot"],  # chunk-hash buckets
    "ferret": ["record8", "stride4", "random", "stream"],  # feature vecs
    "freqmine": ["record2", "hotspot", "chase"],
    "streamcluster": ["stream", "record8"],  # padded point records
    "vips": ["stride8", "stride16", "stride32", "stream", "stride4"],
}


def parsec_workload(name: str, **overrides) -> ModeledWorkload:
    """Build one PARSEC application model by name."""
    num_vars, num_major, avg_mb, min_mb = PARSEC_TABLE1[name]
    sizes = sorted(major_sizes_mb(num_major, avg_mb, min_mb), reverse=True)
    patterns = list(islice(cycle(PARSEC_PATTERNS[name]), num_major))
    majors = [
        MajorVariableModel(
            name=f"{name}_v{index}", nominal_mb=size, pattern=pattern
        )
        for index, (size, pattern) in enumerate(zip(sizes, patterns))
    ]
    # Many-variable applications exhibit phase behaviour, which is what
    # makes flat bit-flip-rate vectors a poor clustering representation
    # (Section 6.2's case for DL assistance).
    overrides.setdefault("phase_mix", 0.35 if num_major >= 20 else 0.0)
    return ModeledWorkload(
        name=name,
        majors=majors,
        nominal_variable_count=num_vars,
        **overrides,
    )


def parsec_suite(**overrides) -> list[ModeledWorkload]:
    """All 7 PARSEC models, Table 1 order."""
    return [parsec_workload(name, **overrides) for name in PARSEC_TABLE1]
