"""Machine-learning / information-retrieval workloads: K-Means, HNSW, IVFPQ.

Three kernels from the paper's third data-intensive domain (Johnson et
al.'s billion-scale similarity search plus Lloyd's K-Means).  Each is a
real (reduced-scale) computation whose data-structure touches are
emitted as tagged traces:

* K-Means — streaming point scans against a hot centroid block;
* HNSW — greedy graph descent: pointer-chase over adjacency plus
  vector reads;
* IVFPQ — coarse quantiser probe, then streaming scans of the selected
  inverted lists with random LUT lookups.
"""

from __future__ import annotations

import numpy as np

from repro.cpu.trace import AccessTrace
from repro.workloads.base import (
    VariableSpec,
    Workload,
    gather_addresses,
    strided_addresses,
    tagged_trace,
)
from repro.workloads.graph import _split_threads, ragged_ranges

__all__ = ["KMeansWorkload", "HNSWWorkload", "IVFPQWorkload"]

FLOAT_BYTES = 4


class KMeansWorkload(Workload):
    """Lloyd iterations over a point matrix (K-Means [31])."""

    compute_intensity = 0.35

    def __init__(
        self,
        points: int = 8192,
        dims: int = 32,
        k: int = 16,
        iterations: int = 2,
        threads: int = 4,
        max_accesses: int = 48_000,
    ):
        self.name = "kmeans"
        self.points = points
        self.dims = dims
        self.k = k
        self.iterations = iterations
        self.threads = threads
        self.max_accesses = max_accesses

    def variables(self) -> list[VariableSpec]:
        """Allocation sites, in stable order (index = variable id)."""
        row = self.dims * FLOAT_BYTES
        return [
            VariableSpec("points", self.points * row),
            VariableSpec("centroids", max(self.k * row, 4096)),
            VariableSpec("assignments", self.points * 4),
        ]

    def run_reference(self, input_seed: int = 0) -> np.ndarray:
        """Actual assignments after the configured Lloyd iterations."""
        rng = np.random.default_rng(3000 + input_seed)
        data = rng.normal(size=(self.points, self.dims))
        centroids = data[rng.choice(self.points, self.k, replace=False)]
        labels = np.zeros(self.points, dtype=np.int64)
        for _ in range(self.iterations):
            distances = ((data[:, None, :] - centroids[None]) ** 2).sum(axis=2)
            labels = distances.argmin(axis=1)
            for cluster in range(self.k):
                members = data[labels == cluster]
                if members.size:
                    centroids[cluster] = members.mean(axis=0)
        return labels

    def trace(self, base: dict[str, int], input_seed: int = 0) -> list[AccessTrace]:
        """Per-thread VA traces for the given base addresses and input."""
        row = self.dims * FLOAT_BYTES
        budget = self.max_accesses
        lines_per_point = max(row // 64, 1)
        sampled_points = min(
            self.points, budget // (self.iterations * (lines_per_point + 2))
        )
        rng = np.random.default_rng(3000 + input_seed)
        streams: list[tuple[np.ndarray, int, bool]] = []
        for _iteration in range(self.iterations):
            # Row-major streaming scan of the point matrix.
            point_reads = strided_addresses(
                base["points"],
                self.points * row,
                sampled_points * lines_per_point,
                1,
            )
            # Centroids are a small hot block, re-read per point.
            centroid_reads = gather_addresses(
                base["centroids"],
                64,
                rng.integers(0, max(self.k * row // 64, 1), sampled_points),
            )
            assignment_writes = gather_addresses(
                base["assignments"], 4, np.arange(sampled_points)
            )
            streams.extend(
                [
                    (point_reads, 0, False),
                    (centroid_reads, 1, False),
                    (assignment_writes, 2, True),
                ]
            )
        merged = tagged_trace(streams)
        return _split_threads(merged, self.threads)


class HNSWWorkload(Workload):
    """Greedy search over a navigable small-world graph (HNSW [25])."""

    compute_intensity = 0.35

    def __init__(
        self,
        nodes: int = 16_384,
        dims: int = 64,
        neighbours: int = 16,
        queries: int = 256,
        threads: int = 4,
        max_accesses: int = 48_000,
    ):
        self.name = "hnsw"
        self.nodes = nodes
        self.dims = dims
        self.neighbours = neighbours
        self.queries = queries
        self.threads = threads
        self.max_accesses = max_accesses

    SEARCH_STATE_BYTES = 2 * 1024 * 1024
    """Per-query visited sets and candidate heaps: HNSW search keeps a
    visited bitset plus a bounded priority queue per in-flight query."""

    def variables(self) -> list[VariableSpec]:
        """Allocation sites, in stable order (index = variable id)."""
        row = self.dims * FLOAT_BYTES
        return [
            VariableSpec("vectors", self.nodes * row),
            VariableSpec("adjacency", self.nodes * self.neighbours * 4),
            VariableSpec("search_state", self.SEARCH_STATE_BYTES),
        ]

    def _build_index(self, input_seed: int):
        rng = np.random.default_rng(4000 + input_seed)
        vectors = rng.normal(size=(self.nodes, self.dims)).astype(np.float32)
        adjacency = rng.integers(
            0, self.nodes, (self.nodes, self.neighbours), dtype=np.int64
        )
        return vectors, adjacency, rng

    def run_reference(self, input_seed: int = 0) -> np.ndarray:
        """Greedy-search results (entry node per query), testable."""
        _vectors, _adjacency, _rng = self._build_index(input_seed)
        results, _visits = self._search(input_seed)
        return results

    def _search(self, input_seed: int):
        vectors, adjacency, rng = self._build_index(input_seed)
        queries = rng.normal(size=(self.queries, self.dims)).astype(np.float32)
        results = np.zeros(self.queries, dtype=np.int64)
        visited_nodes: list[np.ndarray] = []
        self._candidate_log: list[np.ndarray] = []
        for query_index in range(self.queries):
            node = int(rng.integers(self.nodes))
            path = [node]
            best = float(((vectors[node] - queries[query_index]) ** 2).sum())
            for _hop in range(12):
                candidates = adjacency[node]
                self._candidate_log.append(candidates)
                distances = (
                    (vectors[candidates] - queries[query_index]) ** 2
                ).sum(axis=1)
                best_candidate = int(distances.argmin())
                if distances[best_candidate] >= best:
                    break
                best = float(distances[best_candidate])
                node = int(candidates[best_candidate])
                path.append(node)
            results[query_index] = node
            visited_nodes.append(np.array(path, dtype=np.int64))
        return results, visited_nodes

    def trace(self, base: dict[str, int], input_seed: int = 0) -> list[AccessTrace]:
        """Per-thread VA traces for the given base addresses and input."""
        _results, visited = self._search(input_seed)
        row = self.dims * FLOAT_BYTES
        lines_per_vector = max(row // 64, 1)
        path = np.concatenate(visited)
        candidates = (
            np.concatenate(self._candidate_log)
            if self._candidate_log
            else np.zeros(0, dtype=np.int64)
        )
        budget = self.max_accesses
        # Candidate pruning touches only each candidate vector's header
        # line (metadata + short code) — an aligned-record gather.
        header_reads = gather_addresses(
            base["vectors"], 64, candidates * lines_per_vector
        )[: budget // 3]
        # The chosen node's vector is read in full.
        vector_lines = (
            path[:, None] * lines_per_vector + np.arange(lines_per_vector)
        ).reshape(-1)
        vector_reads = gather_addresses(base["vectors"], 64, vector_lines)[
            : budget // 4
        ]
        adjacency_reads = gather_addresses(
            base["adjacency"], self.neighbours * 4, path
        )[: budget // 4]
        rng = np.random.default_rng(4002 + input_seed)
        state_lines = self.SEARCH_STATE_BYTES // 64
        heap_writes = gather_addresses(
            base["search_state"],
            64,
            rng.integers(0, state_lines, budget // 6, dtype=np.uint64),
        )
        merged = tagged_trace(
            [
                (header_reads, 0, False),
                (vector_reads, 0, False),
                (adjacency_reads, 1, False),
                (heap_writes, 2, True),
            ]
        )
        return _split_threads(merged, self.threads)


class IVFPQWorkload(Workload):
    """Inverted-file product-quantisation scan (IVFPQ [25])."""

    compute_intensity = 0.25

    def __init__(
        self,
        lists: int = 256,
        vectors_per_list: int = 512,
        code_bytes: int = 16,
        queries: int = 64,
        probes: int = 8,
        threads: int = 4,
        max_accesses: int = 48_000,
    ):
        self.name = "ivfpq"
        self.lists = lists
        self.vectors_per_list = vectors_per_list
        self.code_bytes = code_bytes
        self.queries = queries
        self.probes = probes
        self.threads = threads
        self.max_accesses = max_accesses

    DIRECTORY_RECORD_BYTES = 256
    """Per-list directory entry: size, codebook ids, residual stats —
    probed once per (query, list), an aligned-record gather."""

    def variables(self) -> list[VariableSpec]:
        """Allocation sites, in stable order (index = variable id)."""
        codes_bytes = self.lists * self.vectors_per_list * self.code_bytes
        return [
            VariableSpec("coarse_centroids", max(self.lists * 128, 4096)),
            VariableSpec("inverted_lists", codes_bytes),
            VariableSpec("lut", max(self.code_bytes * 256 * 4, 4096)),
            VariableSpec("results", max(self.queries * 1024, 4096)),
            VariableSpec(
                "list_directory",
                max(self.lists * self.DIRECTORY_RECORD_BYTES, 2 * 1024 * 1024),
            ),
        ]

    def probed_lists(self, input_seed: int = 0) -> np.ndarray:
        """Inverted lists each query probes."""
        rng = np.random.default_rng(5000 + input_seed)
        return rng.integers(0, self.lists, (self.queries, self.probes))

    def trace(self, base: dict[str, int], input_seed: int = 0) -> list[AccessTrace]:
        """Per-thread VA traces for the given base addresses and input."""
        probed = self.probed_lists(input_seed)
        rng = np.random.default_rng(5001 + input_seed)
        list_bytes = self.vectors_per_list * self.code_bytes
        budget = self.max_accesses
        # Coarse probe: scan all centroids per query (hot block).
        centroid_reads = gather_addresses(
            base["coarse_centroids"],
            64,
            rng.integers(0, max(self.lists * 128 // 64, 1), budget // 8),
        )
        # Selected inverted lists stream line by line.
        lines_per_list = max(list_bytes // 64, 1)
        list_line_offsets = (
            probed.reshape(-1)[:, None] * lines_per_list
            + np.arange(lines_per_list)
        ).reshape(-1)
        list_reads = gather_addresses(base["inverted_lists"], 64, list_line_offsets)[
            : budget // 2
        ]
        lut_reads = gather_addresses(
            base["lut"],
            4,
            rng.integers(0, self.code_bytes * 256, budget // 4),
        )
        result_writes = gather_addresses(
            base["results"], 64, np.arange(budget // 16) % (self.queries * 16)
        )
        # Directory probes: one aligned-record header per (query, list),
        # repeated to model per-segment refetches during the scan.
        directory_records = max(
            self.lists,
            (2 * 1024 * 1024) // self.DIRECTORY_RECORD_BYTES,
        )
        directory_reads = gather_addresses(
            base["list_directory"],
            self.DIRECTORY_RECORD_BYTES,
            rng.integers(0, directory_records, budget // 4, dtype=np.uint64),
        )
        merged = tagged_trace(
            [
                (centroid_reads, 0, False),
                (list_reads, 1, False),
                (lut_reads, 2, False),
                (result_writes, 3, True),
                (directory_reads, 4, False),
            ]
        )
        return _split_threads(merged, self.threads)
