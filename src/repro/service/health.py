"""The service-degradation journal: every shed, drop and restart, on record.

:class:`ServiceHealth` is the serving layer's counterpart to
:class:`~repro.hbm.stats.BackendHealth`: a mutable, journaled record of
*how* the front-end behaved — jobs shed under overload, jobs dropped by
eviction or quarantine, lane crashes and restarts, quota reclaims and
preemptions — deliberately separate from the deterministic result
fingerprints (two services that degrade differently must still produce
bit-identical per-tenant results, and the selftest checks exactly that).

Design rules, shared with the other health types:

* **Never silent** — every load-shedding or recovery action calls
  :meth:`record`, which both appends a structured journal entry and
  bumps the matching counter.  A shed job is *accounted*, not lost.
* **Conservation** — every job the front-end *accepted* ends in exactly
  one terminal state, so once a service is drained,
  ``completed + failed + timeouts + dropped == submitted``.
  :meth:`violations` checks this (and lane liveness flags) so CLI soak
  runs can gate on it.
* **Merge laws** — like :class:`~repro.hbm.stats.BackendHealth`:
  counters add, journals concatenate in order, :meth:`empty` is the
  identity and merging is associative, so per-tenant or per-shard
  health reduces to one service-wide record in any grouping.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["ServiceHealth"]

#: Journal events and the counter each one bumps.  Events outside this
#: table are journaled but counted only through the journal itself.
_EVENT_COUNTERS = {
    "job-shed": "shed",
    "job-dropped": "dropped",
    "job-rejected": "rejected",
    "job-timeout": "timeouts",
    "job-failed": "failed",
    "job-retried": "retried",
    "lane-crash": "lane_crashes",
    "lane-restarted": "lane_restarts",
    "lane-abandoned": "lane_abandonments",
    "tenant-quarantined": "quarantines",
    "tenant-restored": "restores",
    "tenant-preempted": "preemptions",
    "quota-reclaimed": "reclaims",
    "admission-trimmed": "trims",
    "pressure-demoted": "demotions",
}


@dataclass
class ServiceHealth:
    """Structured record of everything the serving layer did under stress.

    ``submitted``/``completed`` are bumped directly (they are
    high-volume and carry no story); every degradation goes through
    :meth:`record` so it lands in the ordered ``events`` journal too.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    retried: int = 0
    timeouts: int = 0
    shed: int = 0
    dropped: int = 0
    rejected: int = 0
    lane_crashes: int = 0
    lane_restarts: int = 0
    lane_abandonments: int = 0
    quarantines: int = 0
    restores: int = 0
    preemptions: int = 0
    reclaims: int = 0
    trims: int = 0
    demotions: int = 0
    events: list = field(default_factory=list)
    # Lanes record concurrently; every mutation is serialised here.
    _lock: threading.RLock = field(
        default_factory=threading.RLock, init=False, repr=False, compare=False
    )

    @classmethod
    def empty(cls) -> "ServiceHealth":
        """The merge identity: a fresh, all-zero journal."""
        return cls()

    # -- recording -----------------------------------------------------------
    def note_submitted(self, count: int = 1) -> None:
        """Count accepted submissions (no journal entry: high volume)."""
        with self._lock:
            self.submitted += count

    def note_completed(self, count: int = 1) -> None:
        """Count successfully finished jobs (no journal entry)."""
        with self._lock:
            self.completed += count

    def record(self, event: str, tenant: str, reason: str, **detail) -> None:
        """Append one structured degradation event and bump its counter."""
        entry = {"event": event, "tenant": tenant, "reason": reason}
        entry.update(detail)
        with self._lock:
            self.events.append(entry)
            counter = _EVENT_COUNTERS.get(event)
            if counter is not None:
                setattr(self, counter, getattr(self, counter) + 1)

    # -- verdicts ------------------------------------------------------------
    @property
    def ok(self) -> bool:
        """True when the service never degraded at all."""
        return not self.events and not self.violations()

    @property
    def accounted(self) -> int:
        """Accepted jobs that reached a terminal state."""
        return self.completed + self.failed + self.timeouts + self.dropped

    @property
    def pending(self) -> int:
        """Accepted jobs not yet terminal (0 once drained)."""
        return self.submitted - self.accounted

    def conserved(self) -> bool:
        """Whether every accepted job is accounted for (post-drain law)."""
        return self.pending == 0

    def violations(self) -> list[str]:
        """Hard health violations a soak/CI run should fail on.

        Degradations (sheds, retries, restarts) are *expected* under
        injected faults and overload; violations are the things the
        failure model promises never happen: lost jobs (conservation
        broken) or negative accounting.
        """
        problems = []
        if self.pending < 0:
            problems.append(
                f"accounting over-counts terminal jobs: {self.accounted} "
                f"terminal vs {self.submitted} submitted"
            )
        elif self.pending > 0:
            problems.append(
                f"{self.pending} accepted job(s) unaccounted for "
                f"({self.submitted} submitted, {self.accounted} terminal)"
            )
        return problems

    # -- merge laws ----------------------------------------------------------
    def merge(self, other: "ServiceHealth") -> "ServiceHealth":
        """Combine journals (counters add, events concatenate in order).

        Associative, with :meth:`empty` as identity.  Not commutative:
        the journal keeps arrival order, like
        :class:`~repro.hbm.stats.BackendHealth`.
        """
        return ServiceHealth(
            submitted=self.submitted + other.submitted,
            completed=self.completed + other.completed,
            failed=self.failed + other.failed,
            retried=self.retried + other.retried,
            timeouts=self.timeouts + other.timeouts,
            shed=self.shed + other.shed,
            dropped=self.dropped + other.dropped,
            rejected=self.rejected + other.rejected,
            lane_crashes=self.lane_crashes + other.lane_crashes,
            lane_restarts=self.lane_restarts + other.lane_restarts,
            lane_abandonments=self.lane_abandonments
            + other.lane_abandonments,
            quarantines=self.quarantines + other.quarantines,
            restores=self.restores + other.restores,
            preemptions=self.preemptions + other.preemptions,
            reclaims=self.reclaims + other.reclaims,
            trims=self.trims + other.trims,
            demotions=self.demotions + other.demotions,
            events=list(self.events) + list(other.events),
        )

    def __add__(self, other: "ServiceHealth") -> "ServiceHealth":
        if not isinstance(other, ServiceHealth):
            return NotImplemented
        return self.merge(other)

    # -- serialisation -------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-serialisable form (the soak-run artifact)."""
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "retried": self.retried,
            "timeouts": self.timeouts,
            "shed": self.shed,
            "dropped": self.dropped,
            "rejected": self.rejected,
            "lane_crashes": self.lane_crashes,
            "lane_restarts": self.lane_restarts,
            "lane_abandonments": self.lane_abandonments,
            "quarantines": self.quarantines,
            "restores": self.restores,
            "preemptions": self.preemptions,
            "reclaims": self.reclaims,
            "trims": self.trims,
            "demotions": self.demotions,
            "events": [dict(e) for e in self.events],
            "ok": self.ok,
            "conserved": self.conserved(),
            "violations": self.violations(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceHealth":
        """Rebuild a journal written by :meth:`to_dict`."""
        fields = {
            name: int(data.get(name, 0))
            for name in (
                "submitted", "completed", "failed", "retried", "timeouts",
                "shed", "dropped", "rejected", "lane_crashes",
                "lane_restarts", "lane_abandonments", "quarantines",
                "restores", "preemptions", "reclaims", "trims", "demotions",
            )
        }
        return cls(
            events=[dict(e) for e in data.get("events", [])], **fields
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        if self.ok:
            return (
                f"service healthy: {self.completed}/{self.submitted} "
                "jobs completed, no degradations"
            )
        return (
            f"service: {self.completed}/{self.submitted} completed, "
            f"{self.shed} shed, {self.dropped} dropped, "
            f"{self.timeouts} timeouts, {self.retried} retries, "
            f"{self.lane_crashes} lane crashes / "
            f"{self.lane_restarts} restarts, "
            f"{self.quarantines} quarantines"
            + ("" if self.conserved() else " [ACCOUNTING BROKEN]")
        )
