"""The mapping service: a batching front-end over tenant contexts.

:class:`MappingService` is the serving layer the ROADMAP's
"SDAM-as-a-service" north star asks for: tenants are admitted through a
:class:`~repro.service.registry.TenantRegistry` (quota-carved mapping
namespaces over shared immutable artifacts), submit workload jobs, and
``drain()`` schedules every tenant's lane concurrently.  Within a lane
jobs run in submission order and each job streams its decoded trace
chunk-by-chunk into that tenant's own backend instance (the sharded
vector tier by default) — per-tenant streams stay ordered, which is
what makes every tenant's result bit-identical to a solo run no matter
how lanes interleave.

Per-tenant :class:`~repro.hbm.stats.RunStats` and
:class:`~repro.hbm.stats.BackendHealth` are folded with the PR-7 merge
laws into service-level aggregates, and the report carries deterministic
per-tenant fingerprints plus the shared plan-cache counters — the
evidence that tenants shared compiled plans without sharing anything
mutable.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import reduce

from repro.core.cmt import MappingNamespace
from repro.errors import ConfigError
from repro.hbm.stats import BackendHealth, RunStats
from repro.service.health import ServiceHealth
from repro.service.registry import TenantRegistry, TenantSpec
from repro.service.tenant import SharedArtifacts, TenantContext
from repro.workloads.base import Workload

__all__ = ["MappingService", "ServiceReport", "TenantResult"]


@dataclass(frozen=True)
class _Job:
    """One submitted unit of work: a workload run for one tenant."""

    tenant: str
    workload: Workload
    profile_seed: int = 0
    eval_seed: int = 1


@dataclass
class TenantResult:
    """Everything one tenant's drained lane produced."""

    tenant: str
    namespace: MappingNamespace | None
    results: list = field(default_factory=list)

    @property
    def stats(self) -> RunStats | None:
        """This tenant's run statistics, merged across its jobs."""
        parts = [r.stats for r in self.results]
        if not parts:
            return None
        return reduce(lambda a, b: a.merge(b), parts)

    @property
    def health(self) -> BackendHealth | None:
        """This tenant's backend health, merged across its jobs."""
        parts = [
            r.backend_health for r in self.results
            if r.backend_health is not None
        ]
        if not parts:
            return None
        return reduce(lambda a, b: a.merge(b), parts)

    def fingerprint(self) -> dict:
        """Deterministic content of this tenant's lane.

        Per-run :meth:`~repro.system.machine.MachineResult.fingerprint`
        plus the namespace the tenant was admitted with — so two
        service runs agree only if the budget partition agreed too.
        """
        return {
            "tenant": self.tenant,
            "namespace": None
            if self.namespace is None
            else self.namespace.to_dict(),
            "runs": [r.fingerprint() for r in self.results],
        }

    def to_dict(self) -> dict:
        """A JSON-serialisable form (results via their own to_dict)."""
        health = self.health
        return {
            "tenant": self.tenant,
            "namespace": None
            if self.namespace is None
            else self.namespace.to_dict(),
            "runs": [r.to_dict() for r in self.results],
            "health": None if health is None else health.to_dict(),
        }


@dataclass
class ServiceReport:
    """Outcome of one :meth:`MappingService.drain`."""

    tenants: dict[str, TenantResult]
    plan_cache: dict
    budget: dict
    health: ServiceHealth | None = None

    @property
    def aggregate_stats(self) -> RunStats | None:
        """Service-wide statistics: per-tenant stats under the merge laws."""
        parts = [
            t.stats for t in self.tenants.values() if t.stats is not None
        ]
        if not parts:
            return None
        return reduce(lambda a, b: a.merge(b), parts)

    @property
    def aggregate_health(self) -> BackendHealth | None:
        """Service-wide backend health under the merge laws."""
        parts = [
            t.health for t in self.tenants.values() if t.health is not None
        ]
        if not parts:
            return None
        return reduce(lambda a, b: a.merge(b), parts)

    def fingerprints(self) -> dict[str, dict]:
        """Per-tenant deterministic fingerprints."""
        return {
            name: result.fingerprint()
            for name, result in self.tenants.items()
        }

    def to_dict(self) -> dict:
        """A JSON-serialisable form of the whole report."""
        aggregate = self.aggregate_stats
        health = self.aggregate_health
        return {
            "tenants": {
                name: result.to_dict()
                for name, result in self.tenants.items()
            },
            "aggregate_stats": None
            if aggregate is None
            else aggregate.to_dict(),
            "aggregate_health": None if health is None else health.to_dict(),
            "plan_cache": self.plan_cache,
            "budget": self.budget,
            "service_health": None
            if self.health is None
            else self.health.to_dict(),
        }


class MappingService:
    """Admit tenants, accept jobs, drain them concurrently.

    ``max_workers`` bounds how many tenant lanes run at once (default:
    one thread per tenant with queued work).  Tenants default to the
    sharded vector backend the deployment's shared artifacts name.
    """

    def __init__(
        self,
        shared: SharedArtifacts | None = None,
        max_mappings: int = 256,
        max_workers: int | None = None,
    ):
        if shared is None:
            shared = SharedArtifacts.create(backend="vector")
        self.health = ServiceHealth()
        self.registry = TenantRegistry(
            shared, max_mappings=max_mappings, health=self.health
        )
        self.shared = self.registry.shared
        if max_workers is not None and max_workers < 1:
            raise ConfigError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._queue: list[_Job] = []

    # -- admission (delegated) ----------------------------------------------
    def admit(self, spec: TenantSpec) -> TenantContext:
        """Admit a tenant (see :meth:`TenantRegistry.admit`)."""
        return self.registry.admit(spec)

    def evict(self, name: str) -> int:
        """Evict a tenant, dropping its queued jobs — *accounted*, not
        silent: each dropped job is journaled in :attr:`health` and the
        count is returned."""
        self.registry.evict(name)
        kept, dropped = [], []
        for job in self._queue:
            (dropped if job.tenant == name else kept).append(job)
        self._queue = kept
        for job in dropped:
            self.health.record(
                "job-dropped",
                name,
                "tenant evicted with jobs queued",
                workload=job.workload.name,
            )
        return len(dropped)

    # -- the batching front-end ----------------------------------------------
    def submit(
        self,
        tenant: str,
        workload: Workload,
        profile_seed: int = 0,
        eval_seed: int = 1,
    ) -> None:
        """Queue one workload run for an admitted tenant."""
        if tenant not in self.registry:
            raise ConfigError(f"tenant {tenant!r} is not admitted")
        self.health.note_submitted()
        self._queue.append(
            _Job(
                tenant=tenant,
                workload=workload,
                profile_seed=profile_seed,
                eval_seed=eval_seed,
            )
        )

    @property
    def pending(self) -> int:
        """Queued jobs not yet drained."""
        return len(self._queue)

    def _run_lane(
        self, context: TenantContext, jobs: list[_Job]
    ) -> TenantResult:
        """Run one tenant's jobs in submission order.

        The lane is the isolation unit: everything mutable it touches
        (kernel, CMT, allocator, backend) belongs to this tenant, so
        lanes can interleave freely on the executor without perturbing
        each other's results.
        """
        result = TenantResult(
            tenant=context.name, namespace=context.namespace
        )
        for job in jobs:
            result.results.append(
                context.run(
                    job.workload,
                    profile_seed=job.profile_seed,
                    eval_seed=job.eval_seed,
                )
            )
            self.health.note_completed()
        return result

    def drain(self) -> ServiceReport:
        """Run every queued job, tenant lanes concurrently.

        Returns a :class:`ServiceReport`; the queue is emptied.  Admitted
        tenants with no queued jobs appear in the report with an empty
        lane, so the budget view is complete.
        """
        jobs, self._queue = self._queue, []
        lanes: dict[str, list[_Job]] = {
            name: [] for name in self.registry.names
        }
        for job in jobs:
            lanes[job.tenant].append(job)
        results: dict[str, TenantResult] = {}
        active = [name for name, lane in lanes.items() if lane]
        if active:
            workers = self.max_workers or len(active)
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = {
                    name: pool.submit(
                        self._run_lane, self.registry.get(name), lanes[name]
                    )
                    for name in active
                }
                for name, future in futures.items():
                    results[name] = future.result()
        for name in self.registry.names:
            if name not in results:
                results[name] = TenantResult(
                    tenant=name,
                    namespace=self.registry.get(name).namespace,
                )
        return ServiceReport(
            tenants=results,
            plan_cache=self.shared.plan_cache.stats(),
            budget=self.registry.report(),
            health=self.health,
        )
