"""Multi-tenant service core: shared immutable artifacts, tenant
contexts, the tenant registry (admission control with priorities,
borrowing and preemption), the batching front-end, the continuous
supervised front-end, and the isolation selftest campaign."""

from repro.service.campaign import ServiceCampaignResult, run_service_campaign
from repro.service.frontend import (
    DEFAULT_DEADLINE_S,
    DEFAULT_QUEUE_DEPTH,
    JobHandle,
    ServiceFrontend,
)
from repro.service.health import ServiceHealth
from repro.service.registry import PRIORITIES, TenantRegistry, TenantSpec
from repro.service.service import MappingService, ServiceReport, TenantResult
from repro.service.supervisor import LaneSupervisor
from repro.service.tenant import SharedArtifacts, TenantContext

__all__ = [
    "DEFAULT_DEADLINE_S",
    "DEFAULT_QUEUE_DEPTH",
    "JobHandle",
    "LaneSupervisor",
    "MappingService",
    "PRIORITIES",
    "ServiceCampaignResult",
    "ServiceFrontend",
    "ServiceHealth",
    "ServiceReport",
    "SharedArtifacts",
    "TenantContext",
    "TenantRegistry",
    "TenantResult",
    "TenantSpec",
    "run_service_campaign",
]
