"""Multi-tenant service core: shared immutable artifacts, tenant
contexts, the tenant registry, the batching front-end and the
isolation selftest campaign."""

from repro.service.campaign import ServiceCampaignResult, run_service_campaign
from repro.service.registry import TenantRegistry, TenantSpec
from repro.service.service import MappingService, ServiceReport, TenantResult
from repro.service.tenant import SharedArtifacts, TenantContext

__all__ = [
    "MappingService",
    "ServiceCampaignResult",
    "ServiceReport",
    "SharedArtifacts",
    "TenantContext",
    "TenantRegistry",
    "TenantResult",
    "TenantSpec",
    "run_service_campaign",
]
