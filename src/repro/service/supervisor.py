"""Lane supervision: detect, strike, restart, quarantine, restore.

:class:`LaneSupervisor` is the service front-end's watchdog thread.  A
periodic sweep inspects every tenant lane and reacts to the two ways a
lane degrades:

* **Dead lane thread** (a crash — e.g. an injected
  ``service.lane.crash`` fault): the crashed thread requeued its job
  before dying, so nothing is lost; the sweep journals a
  ``lane-crash``, adds a strike, and restarts the lane from the last
  good :class:`~repro.service.tenant.TenantContext`
  (:meth:`~repro.service.registry.TenantRegistry.rebuild`: same spec,
  same namespace, fresh mutable state).
* **Wedged in-flight job** (past its deadline — e.g. an injected
  ``service.lane.stall``): Python cannot kill a thread, so the sweep
  *abandons* it — settles the job as ``timeout``, bumps the lane
  generation (the stale thread discards its result and exits on its
  own time), strikes, and starts a replacement thread.

``max_strikes`` accumulated failures quarantine the tenant: queued
jobs are dropped (each journaled — the conservation law holds),
submissions raise :class:`~repro.errors.TenantQuarantinedError` until
probation ends, and the sweep then *restores* the tenant — context
rebuilt, strikes cleared, lane thread relaunched — journaling
``tenant-restored``.  The selftest proves a quarantined-and-restored
tenant's fingerprint is bit-identical to its solo run.

Every action is a :meth:`~repro.service.health.ServiceHealth.record`
call; the journal, not the log, is the source of truth.
"""

from __future__ import annotations

import threading

__all__ = ["LaneSupervisor"]


class LaneSupervisor:
    """Watchdog over a :class:`~repro.service.frontend.ServiceFrontend`.

    ``sweep()`` is a single synchronous pass (tests drive it directly
    for determinism); ``ensure_running()`` starts the periodic monitor
    thread that calls it every ``interval_s``.
    """

    def __init__(
        self,
        frontend,
        interval_s: float = 0.005,
        max_strikes: int = 3,
        quarantine_s: float = 0.05,
    ):
        self.frontend = frontend
        self.interval_s = interval_s
        self.max_strikes = max_strikes
        self.quarantine_s = quarantine_s
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------------
    def ensure_running(self) -> None:
        """Start the monitor thread if it is not already alive."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._monitor, name="repro-lane-supervisor", daemon=True
            )
            self._thread.start()

    def stop(self) -> None:
        """Stop the monitor thread (idempotent)."""
        with self._lock:
            thread = self._thread
            self._thread = None
        self._stop.set()
        if thread is not None and thread.is_alive():
            thread.join(timeout=1.0)

    def _monitor(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.sweep()
            except Exception:  # noqa: BLE001 — the watchdog must not die
                continue

    # -- the sweep ------------------------------------------------------------
    def sweep(self) -> None:
        """One supervision pass over every lane."""
        frontend = self.frontend
        with frontend._lanes_lock:
            lanes = list(frontend._lanes.values())
        now = frontend._clock()
        for lane in lanes:
            self._sweep_lane(lane, now)

    def _sweep_lane(self, lane, now: float) -> None:
        frontend = self.frontend
        health = frontend.health
        with lane.lock:
            if lane.closing:
                return
            if lane.quarantined_until is not None:
                if now < lane.quarantined_until:
                    return
                # Probation over: restore below, outside the lane lock
                # (rebuild takes the registry lock).
                lane.quarantined_until = None
                lane.strikes = 0
                restore = True
                abandoned = None
            else:
                restore = False
                abandoned = None
                thread = lane.thread
                if thread is not None and not thread.is_alive():
                    # The worker died without closing: a lane crash.
                    lane.thread = None
                    lane.strikes += 1
                    strikes = lane.strikes
                    health.record(
                        "lane-crash",
                        lane.name,
                        f"lane thread died (strike {strikes} "
                        f"of {self.max_strikes})",
                        strikes=strikes,
                    )
                elif (
                    lane.current is not None
                    and now > lane.current.deadline
                ):
                    # Wedged job: abandon the thread, settle the job.
                    job = lane.current
                    if job.handle.settle(
                        "timeout", error="deadline exceeded in flight"
                    ):
                        abandoned = job
                    lane.generation += 1  # stale thread discards and exits
                    lane.current = None
                    lane.busy_since = None
                    lane.thread = None
                    lane.strikes += 1
                    strikes = lane.strikes
                    lane.ready.notify_all()
                else:
                    return  # healthy
            if not restore:
                if abandoned is not None:
                    health.record(
                        "job-timeout",
                        lane.name,
                        "deadline exceeded in flight",
                        workload=abandoned.handle.workload,
                    )
                    health.record(
                        "lane-abandoned",
                        lane.name,
                        f"wedged worker abandoned (strike {strikes} "
                        f"of {self.max_strikes})",
                        strikes=strikes,
                    )
                if strikes >= self.max_strikes:
                    self._quarantine_locked(lane, now)
                    return
        # Outside the lane lock: context rebuild + thread start.
        self._restart(lane, restored=restore)

    def _quarantine_locked(self, lane, now: float) -> None:
        """Quarantine a striking-out tenant; caller holds ``lane.lock``."""
        health = self.frontend.health
        victims = list(lane.queue)
        lane.queue.clear()
        if lane.current is not None:
            victims.insert(0, lane.current)
            lane.current = None
            lane.busy_since = None
        lane.generation += 1
        lane.thread = None
        lane.quarantined_until = now + self.quarantine_s
        lane.ready.notify_all()
        for job in victims:
            if job.handle.settle("dropped", error="tenant quarantined"):
                health.record(
                    "job-dropped",
                    lane.name,
                    "tenant quarantined",
                    workload=job.handle.workload,
                )
        health.record(
            "tenant-quarantined",
            lane.name,
            f"{lane.strikes} strike(s); probation {self.quarantine_s}s",
            strikes=lane.strikes,
            dropped=len(victims),
        )

    def _restart(self, lane, restored: bool) -> None:
        """Rebuild the tenant context and relaunch the lane thread."""
        frontend = self.frontend
        with frontend._registry_lock:
            if lane.name not in frontend.registry:
                return  # evicted while we decided; nothing to restart
            frontend.registry.rebuild(lane.name)
            with lane.lock:
                if lane.closing:
                    return
                if restored:
                    frontend.health.record(
                        "tenant-restored",
                        lane.name,
                        "probation complete; lane restarted from the "
                        "last good context",
                    )
                frontend.health.record(
                    "lane-restarted",
                    lane.name,
                    "fresh worker over the rebuilt tenant context",
                    generation=lane.generation + 1,
                )
                frontend._start_lane_thread(lane)
