"""Tenant admission: quotas carved from the global mapping budget.

The CMT supports 256 concurrent mappings globally (Section 5.3), and
the multi-tenant service must hand every admitted tenant a slice it can
rely on.  :class:`TenantRegistry` is the control plane for that budget.
``admit`` carves a :class:`~repro.core.cmt.MappingNamespace` out of the
remaining slots (first-fit over released ranges — kept sorted and
coalesced so churn cannot fragment the table — then a bump allocator),
builds the tenant's :class:`~repro.service.tenant.TenantContext` over
the deployment's shared artifacts, and ``evict`` returns the slice for
reuse.

Beyond first-fit, admission is an *admission controller*:

* **Priority classes** — every :class:`TenantSpec` carries a priority
  (``"guaranteed"`` > ``"standard"`` > ``"best-effort"``) that decides
  who gives way under pressure.
* **Quota borrowing with reclaim** — a spec with ``min_quota < quota``
  holds its slots above ``min_quota`` on loan: they are granted while
  the table has room and *reclaimed* (the namespace shrinks back to the
  floor, the tail returns to the free pool, the context is rebuilt)
  when a later admission cannot fit.  Reclaim visits lower-priority
  borrowers first.
* **Preemption** — when reclaim is not enough, an above-best-effort
  admission may evict ``best-effort`` tenants (newest first); the
  optional ``preempt_hook`` lets the serving front-end tear down the
  victim's lane and account its queued jobs before the slice is freed.

Every action is recorded in the attached
:class:`~repro.service.health.ServiceHealth` journal, so degraded
admissions are visible, never silent.  When nothing helps, admission
fails with :class:`~repro.errors.CMTError` — the same error quota
exhaustion raises at intern time — so overcommit stays impossible by
construction.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable

from repro.core.cmt import MappingNamespace
from repro.errors import CMTError, ConfigError
from repro.service.health import ServiceHealth
from repro.service.tenant import SharedArtifacts, TenantContext
from repro.system.config import SystemConfig, system_by_key

__all__ = ["PRIORITIES", "TenantRegistry", "TenantSpec"]

#: Default mapping-slot quota for a tenant that doesn't ask for one:
#: enough for the paper's 4-cluster configurations.
DEFAULT_QUOTA = 4

#: Admission priority classes, weakest first.  ``best-effort`` tenants
#: may be preempted; ``guaranteed`` tenants never lend borrowed slots.
PRIORITIES = ("best-effort", "standard", "guaranteed")


@dataclass(frozen=True)
class TenantSpec:
    """What a tenant asks for at admission time.

    ``quota`` is the desired mapping-slot count; ``min_quota`` (when
    given) is the guaranteed floor — the slots in between are borrowed
    and may be reclaimed under pressure.  ``priority`` picks the
    admission class (see :data:`PRIORITIES`).
    """

    name: str
    system: SystemConfig | str = "sdm_bsm_ml4"
    quota: int = DEFAULT_QUOTA
    seed: int = 0
    engine: str = "cpu"
    cores: int = 4
    backend: str | None = None
    backend_options: dict | None = None
    chunk_accesses: int | None = None
    chunk_colours: int = 8
    guard: bool = False
    guard_sample: float | None = None
    guard_mode: str = "demote"
    backend_faults: object | None = None
    priority: str = "standard"
    min_quota: int | None = None

    def resolved_system(self) -> SystemConfig:
        """The system configuration, looked up when given as a key."""
        if isinstance(self.system, SystemConfig):
            return self.system
        return system_by_key(self.system)

    @property
    def floor(self) -> int:
        """The guaranteed slot count (``quota`` when not borrowing)."""
        return self.quota if self.min_quota is None else self.min_quota

    @property
    def rank(self) -> int:
        """Numeric priority (higher outranks lower)."""
        return PRIORITIES.index(self.priority)


@dataclass
class _FreeRange:
    """A released slice of the budget, reusable by later admissions."""

    base: int
    capacity: int = field(default=0)

    @property
    def end(self) -> int:
        return self.base + self.capacity


class TenantRegistry:
    """Admission control over one deployment's shared artifacts."""

    def __init__(
        self,
        shared: SharedArtifacts | None = None,
        max_mappings: int = 256,
        health: ServiceHealth | None = None,
    ):
        if max_mappings < 2:
            raise ConfigError(
                "service needs at least two mapping slots "
                "(identity + one tenant slot)"
            )
        self.shared = shared or SharedArtifacts.create()
        self.max_mappings = max_mappings
        #: Degradation journal admissions record into; the serving
        #: front-end shares its own instance with the registry.
        self.health = health if health is not None else ServiceHealth()
        #: Called with the victim's name just before a preemption evicts
        #: it, so a front-end can stop the lane and account its jobs.
        self.preempt_hook: Callable[[str], None] | None = None
        self._tenants: dict[str, TenantContext] = {}
        self._specs: dict[str, TenantSpec] = {}
        self._free: list[_FreeRange] = []  # sorted by base, coalesced
        self._next_base = 1  # slot 0: the shared boot identity

    # -- budget bookkeeping --------------------------------------------------
    @property
    def remaining_slots(self) -> int:
        """Mapping slots still carvable (free ranges + untouched tail)."""
        freed = sum(r.capacity for r in self._free)
        return self.max_mappings - self._next_base + freed

    def _release(self, base: int, capacity: int) -> None:
        """Return a slice to the free pool, coalescing neighbours.

        Coalescing matters under churn: hundreds of admit/evict cycles
        must not fragment the table into unusable single-slot shards.
        A free range that reaches the bump frontier folds back into it.
        """
        if capacity < 1:
            return
        self._free.append(_FreeRange(base=base, capacity=capacity))
        self._free.sort(key=lambda r: r.base)
        merged: list[_FreeRange] = []
        for rng in self._free:
            if merged and merged[-1].end == rng.base:
                merged[-1].capacity += rng.capacity
            else:
                merged.append(rng)
        while merged and merged[-1].end == self._next_base:
            self._next_base = merged.pop().base
        self._free = merged

    def _carve(self, tenant: str, quota: int) -> MappingNamespace:
        for position, free in enumerate(self._free):
            if free.capacity >= quota:
                namespace = MappingNamespace(tenant, free.base, quota)
                if free.capacity == quota:
                    del self._free[position]
                else:
                    free.base += quota
                    free.capacity -= quota
                return namespace
        if self._next_base + quota > self.max_mappings:
            raise CMTError(
                f"mapping budget exhausted: tenant {tenant!r} needs {quota} "
                f"slots but only {self.remaining_slots} remain "
                f"(of {self.max_mappings}, slot 0 reserved)"
            )
        namespace = MappingNamespace(tenant, self._next_base, quota)
        self._next_base += quota
        return namespace

    def _try_carve(self, tenant: str, quota: int) -> MappingNamespace | None:
        try:
            return self._carve(tenant, quota)
        except CMTError:
            return None

    # -- admission pressure valves -------------------------------------------
    def _borrowers(self, below_rank: int) -> list[str]:
        """Tenants lending reclaimable slots, weakest and newest first."""
        candidates = [
            name
            for name, spec in self._specs.items()
            if spec.rank < below_rank
            and self._tenants[name].namespace is not None
            and self._tenants[name].namespace.capacity > spec.floor
        ]
        return sorted(
            candidates,
            key=lambda name: (
                self._specs[name].rank,
                -list(self._specs).index(name),
            ),
        )

    def _reclaim_from(self, name: str, for_tenant: str) -> int:
        """Shrink one borrower to its floor; returns slots reclaimed.

        The borrower's namespace is replaced by a same-base, floor-sized
        one and its context rebuilt around it; the tail returns to the
        free pool.  In-flight work holding the old context finishes
        under the old namespace — the new one takes effect at the
        tenant's next job.
        """
        spec = self._specs[name]
        namespace = self._tenants[name].namespace
        reclaimed = namespace.capacity - spec.floor
        if reclaimed <= 0:
            return 0
        shrunk = MappingNamespace(name, namespace.base, spec.floor)
        self._tenants[name] = self._build_context(spec, shrunk)
        self._release(namespace.base + spec.floor, reclaimed)
        self.health.record(
            "quota-reclaimed",
            name,
            f"lent {reclaimed} slot(s) to {for_tenant!r}",
            slots=reclaimed,
            remaining=spec.floor,
        )
        return reclaimed

    def _preemptable(self) -> list[str]:
        """Best-effort tenants, newest first."""
        return [
            name
            for name in reversed(list(self._specs))
            if self._specs[name].priority == "best-effort"
        ]

    def _preempt(self, name: str, for_tenant: str) -> None:
        """Evict a best-effort tenant to make room for a higher class."""
        if self.preempt_hook is not None:
            self.preempt_hook(name)
        self.evict(name)
        self.health.record(
            "tenant-preempted", name, f"preempted for {for_tenant!r}"
        )

    # -- admission -----------------------------------------------------------
    def _build_context(
        self, spec: TenantSpec, namespace: MappingNamespace | None
    ) -> TenantContext:
        return TenantContext(
            name=spec.name,
            system=spec.resolved_system(),
            shared=self.shared,
            engine=spec.engine,
            cores=spec.cores,
            backend=spec.backend,
            backend_options=spec.backend_options,
            chunk_accesses=spec.chunk_accesses,
            seed=spec.seed,
            chunk_colours=spec.chunk_colours,
            guard=spec.guard,
            guard_sample=spec.guard_sample,
            guard_mode=spec.guard_mode,
            backend_faults=spec.backend_faults,
            namespace=namespace,
        )

    def _admit_namespace(self, spec: TenantSpec) -> MappingNamespace:
        """Find a slice for ``spec``, escalating through the valves."""
        namespace = self._try_carve(spec.name, spec.quota)
        if namespace is not None:
            return namespace
        # Valve 1: reclaim borrowed slots from weaker borrowers.
        for victim in self._borrowers(below_rank=spec.rank + 1):
            if victim == spec.name:
                continue
            self._reclaim_from(victim, spec.name)
            namespace = self._try_carve(spec.name, spec.quota)
            if namespace is not None:
                return namespace
        # Valve 2: trim the request toward its own floor.
        for quota in range(spec.quota - 1, spec.floor - 1, -1):
            namespace = self._try_carve(spec.name, quota)
            if namespace is not None:
                self.health.record(
                    "admission-trimmed",
                    spec.name,
                    f"granted {quota} of {spec.quota} requested slot(s)",
                    granted=quota,
                    requested=spec.quota,
                )
                return namespace
        # Valve 3: preempt best-effort tenants for a higher class.
        if spec.rank > 0:
            for victim in self._preemptable():
                self._preempt(victim, spec.name)
                namespace = self._try_carve(spec.name, spec.quota)
                if namespace is None:
                    for quota in range(spec.quota - 1, spec.floor - 1, -1):
                        namespace = self._try_carve(spec.name, quota)
                        if namespace is not None:
                            break
                if namespace is not None:
                    if namespace.capacity < spec.quota:
                        self.health.record(
                            "admission-trimmed",
                            spec.name,
                            f"granted {namespace.capacity} of "
                            f"{spec.quota} requested slot(s)",
                            granted=namespace.capacity,
                            requested=spec.quota,
                        )
                    return namespace
        raise CMTError(
            f"mapping budget exhausted: tenant {spec.name!r} needs "
            f"{spec.floor}..{spec.quota} slots but only "
            f"{self.remaining_slots} remain "
            f"(of {self.max_mappings}, slot 0 reserved) and no borrowed "
            "or preemptable slots cover the request"
        )

    def admit(self, spec: TenantSpec) -> TenantContext:
        """Admit a tenant: carve its namespace, build its context."""
        if spec.name in self._tenants:
            raise ConfigError(f"tenant {spec.name!r} is already admitted")
        if spec.quota < 1:
            raise ConfigError(f"tenant {spec.name!r} quota must be >= 1")
        if spec.min_quota is not None and not (
            1 <= spec.min_quota <= spec.quota
        ):
            raise ConfigError(
                f"tenant {spec.name!r} min_quota must be in [1, quota]"
            )
        if spec.priority not in PRIORITIES:
            raise ConfigError(
                f"unknown priority {spec.priority!r}; "
                f"expected one of {PRIORITIES}"
            )
        namespace = self._admit_namespace(spec)
        context = self._build_context(spec, namespace)
        self._tenants[spec.name] = context
        self._specs[spec.name] = spec
        return context

    def evict(self, name: str) -> None:
        """Remove a tenant, returning its slice to the free pool."""
        context = self._tenants.pop(name, None)
        if context is None:
            raise ConfigError(f"tenant {name!r} is not admitted")
        self._specs.pop(name, None)
        namespace = context.namespace
        if namespace is not None:
            self._release(namespace.base, namespace.capacity)

    def rebuild(self, name: str) -> TenantContext:
        """Rebuild a tenant's context in place (supervised lane restart).

        The namespace is kept — the budget partition does not move — so
        the rebuilt context is the "last good" one: same spec, same
        slice, fresh mutable state.
        """
        spec = self._specs.get(name)
        if spec is None:
            raise ConfigError(f"tenant {name!r} is not admitted")
        context = self._build_context(spec, self._tenants[name].namespace)
        self._tenants[name] = context
        return context

    def amend(self, tenant: str, **changes) -> TenantContext:
        """Replace parts of a tenant's spec and rebuild its context.

        The namespace is kept; only the spec fields named in
        ``changes`` move (the graceful-degradation path amends
        ``backend_options`` to demote a sharded backend to serial —
        execution knobs never change results, so the amended tenant
        stays bit-identical to its solo run).
        """
        spec = self._specs.get(tenant)
        if spec is None:
            raise ConfigError(f"tenant {tenant!r} is not admitted")
        amended = dataclasses.replace(spec, **changes)
        if amended.name != tenant:
            raise ConfigError("amend cannot rename a tenant")
        context = self._build_context(amended, self._tenants[tenant].namespace)
        self._specs[tenant] = amended
        self._tenants[tenant] = context
        return context

    # -- lookups -------------------------------------------------------------
    def get(self, name: str) -> TenantContext:
        """The admitted tenant's context."""
        context = self._tenants.get(name)
        if context is None:
            raise ConfigError(f"tenant {name!r} is not admitted")
        return context

    def spec(self, name: str) -> TenantSpec:
        """The spec the tenant was admitted with."""
        spec = self._specs.get(name)
        if spec is None:
            raise ConfigError(f"tenant {name!r} is not admitted")
        return spec

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    def __len__(self) -> int:
        return len(self._tenants)

    @property
    def names(self) -> list[str]:
        """Admitted tenant names, in admission order."""
        return list(self._tenants)

    def contexts(self) -> list[TenantContext]:
        """Admitted tenant contexts, in admission order."""
        return list(self._tenants.values())

    # -- invariants ----------------------------------------------------------
    def check_invariants(self) -> list[str]:
        """The budget laws, checkable after any churn sequence.

        Returns human-readable violations (empty when healthy): every
        namespace inside ``[1, max_mappings)``, pairwise disjoint, and
        the carved + free slots exactly accounting for the region below
        the bump frontier.
        """
        problems: list[str] = []
        spaces = [
            context.namespace
            for context in self._tenants.values()
            if context.namespace is not None
        ]
        for ns in spaces:
            if ns.base < 1 or ns.end > self.max_mappings:
                problems.append(
                    f"namespace {ns.tenant!r} [{ns.base}, {ns.end}) outside "
                    f"[1, {self.max_mappings})"
                )
        ordered = sorted(spaces, key=lambda ns: ns.base)
        for left, right in zip(ordered, ordered[1:]):
            if left.overlaps(right):
                problems.append(
                    f"namespaces {left.tenant!r} and {right.tenant!r} overlap"
                )
        carved = sum(ns.capacity for ns in spaces)
        freed = sum(r.capacity for r in self._free)
        if carved + freed != self._next_base - 1:
            problems.append(
                f"budget accounting broken: {carved} carved + {freed} free "
                f"!= {self._next_base - 1} below the bump frontier"
            )
        for left, right in zip(self._free, self._free[1:]):
            if left.end > right.base:
                problems.append("free ranges overlap")
            elif left.end == right.base:
                problems.append("free ranges not coalesced")
        return problems

    def report(self) -> dict:
        """A JSON-serialisable view of the budget partition."""
        return {
            "max_mappings": self.max_mappings,
            "remaining_slots": self.remaining_slots,
            "tenants": {
                name: context.namespace.to_dict()
                for name, context in self._tenants.items()
                if context.namespace is not None
            },
            "priorities": {
                name: spec.priority for name, spec in self._specs.items()
            },
        }
