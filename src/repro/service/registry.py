"""Tenant admission: quotas carved from the global mapping budget.

The CMT supports 256 concurrent mappings globally (Section 5.3), and
the multi-tenant service must hand every admitted tenant a slice it can
rely on.  :class:`TenantRegistry` is the control plane for that budget:
``admit`` carves a :class:`~repro.core.cmt.MappingNamespace` out of the
remaining slots (first-fit over previously released ranges, then a bump
allocator), builds the tenant's :class:`~repro.service.tenant.
TenantContext` over the deployment's shared artifacts, and ``evict``
returns the slice for reuse.  Admission fails — with
:class:`~repro.errors.CMTError`, the same error quota exhaustion
raises at intern time — when the budget cannot fit the request, so
overcommit is impossible by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cmt import MappingNamespace
from repro.errors import CMTError, ConfigError
from repro.service.tenant import SharedArtifacts, TenantContext
from repro.system.config import SystemConfig, system_by_key

__all__ = ["TenantRegistry", "TenantSpec"]

#: Default mapping-slot quota for a tenant that doesn't ask for one:
#: enough for the paper's 4-cluster configurations.
DEFAULT_QUOTA = 4


@dataclass(frozen=True)
class TenantSpec:
    """What a tenant asks for at admission time."""

    name: str
    system: SystemConfig | str = "sdm_bsm_ml4"
    quota: int = DEFAULT_QUOTA
    seed: int = 0
    engine: str = "cpu"
    cores: int = 4
    backend: str | None = None
    backend_options: dict | None = None
    chunk_accesses: int | None = None
    chunk_colours: int = 8
    guard: bool = False
    guard_sample: float | None = None
    guard_mode: str = "demote"
    backend_faults: object | None = None

    def resolved_system(self) -> SystemConfig:
        """The system configuration, looked up when given as a key."""
        if isinstance(self.system, SystemConfig):
            return self.system
        return system_by_key(self.system)


@dataclass
class _FreeRange:
    """A released slice of the budget, reusable by later admissions."""

    base: int
    capacity: int = field(default=0)


class TenantRegistry:
    """Admission control over one deployment's shared artifacts."""

    def __init__(
        self,
        shared: SharedArtifacts | None = None,
        max_mappings: int = 256,
    ):
        if max_mappings < 2:
            raise ConfigError(
                "service needs at least two mapping slots "
                "(identity + one tenant slot)"
            )
        self.shared = shared or SharedArtifacts.create()
        self.max_mappings = max_mappings
        self._tenants: dict[str, TenantContext] = {}
        self._free: list[_FreeRange] = []
        self._next_base = 1  # slot 0: the shared boot identity

    # -- budget bookkeeping --------------------------------------------------
    @property
    def remaining_slots(self) -> int:
        """Mapping slots still carvable (free ranges + untouched tail)."""
        freed = sum(r.capacity for r in self._free)
        return self.max_mappings - self._next_base + freed

    def _carve(self, tenant: str, quota: int) -> MappingNamespace:
        for position, free in enumerate(self._free):
            if free.capacity >= quota:
                namespace = MappingNamespace(tenant, free.base, quota)
                if free.capacity == quota:
                    del self._free[position]
                else:
                    free.base += quota
                    free.capacity -= quota
                return namespace
        if self._next_base + quota > self.max_mappings:
            raise CMTError(
                f"mapping budget exhausted: tenant {tenant!r} needs {quota} "
                f"slots but only {self.remaining_slots} remain "
                f"(of {self.max_mappings}, slot 0 reserved)"
            )
        namespace = MappingNamespace(tenant, self._next_base, quota)
        self._next_base += quota
        return namespace

    # -- admission -----------------------------------------------------------
    def admit(self, spec: TenantSpec) -> TenantContext:
        """Admit a tenant: carve its namespace, build its context."""
        if spec.name in self._tenants:
            raise ConfigError(f"tenant {spec.name!r} is already admitted")
        if spec.quota < 1:
            raise ConfigError(f"tenant {spec.name!r} quota must be >= 1")
        namespace = self._carve(spec.name, spec.quota)
        context = TenantContext(
            name=spec.name,
            system=spec.resolved_system(),
            shared=self.shared,
            engine=spec.engine,
            cores=spec.cores,
            backend=spec.backend,
            backend_options=spec.backend_options,
            chunk_accesses=spec.chunk_accesses,
            seed=spec.seed,
            chunk_colours=spec.chunk_colours,
            guard=spec.guard,
            guard_sample=spec.guard_sample,
            guard_mode=spec.guard_mode,
            backend_faults=spec.backend_faults,
            namespace=namespace,
        )
        self._tenants[spec.name] = context
        return context

    def evict(self, name: str) -> None:
        """Remove a tenant, returning its slice to the free pool."""
        context = self._tenants.pop(name, None)
        if context is None:
            raise ConfigError(f"tenant {name!r} is not admitted")
        namespace = context.namespace
        if namespace is not None:
            self._free.append(
                _FreeRange(base=namespace.base, capacity=namespace.capacity)
            )

    # -- lookups -------------------------------------------------------------
    def get(self, name: str) -> TenantContext:
        """The admitted tenant's context."""
        context = self._tenants.get(name)
        if context is None:
            raise ConfigError(f"tenant {name!r} is not admitted")
        return context

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    def __len__(self) -> int:
        return len(self._tenants)

    @property
    def names(self) -> list[str]:
        """Admitted tenant names, in admission order."""
        return list(self._tenants)

    def contexts(self) -> list[TenantContext]:
        """Admitted tenant contexts, in admission order."""
        return list(self._tenants.values())

    def report(self) -> dict:
        """A JSON-serialisable view of the budget partition."""
        return {
            "max_mappings": self.max_mappings,
            "remaining_slots": self.remaining_slots,
            "tenants": {
                name: context.namespace.to_dict()
                for name, context in self._tenants.items()
                if context.namespace is not None
            },
        }
