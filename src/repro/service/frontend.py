"""The continuous service front-end: always-on, supervised tenant lanes.

:class:`~repro.service.service.MappingService` batches: submit, then
``drain()`` runs everything.  :class:`ServiceFrontend` replaces that
with the serving loop the ROADMAP's SDAM-as-a-service north star needs:

* **Always-running lanes** — each admitted tenant gets a dedicated lane
  thread pulling jobs from a bounded queue the moment they are
  submitted.  Per-tenant order is submission order, which is what keeps
  every tenant's results bit-identical to a solo run no matter how
  lanes interleave.
* **Backpressure, never silent loss** — a full lane queue *sheds* the
  submission with a structured
  :class:`~repro.errors.ServiceOverloadError` carrying a retry-after
  hint; every shed is journaled in the shared
  :class:`~repro.service.health.ServiceHealth`.  Accepted jobs obey the
  conservation law: each ends completed, failed, timed out, or dropped
  (eviction/quarantine/preemption) — with a journal entry for every
  non-completed terminal state.
* **Deadlines and retries** — jobs carry absolute deadlines (expired
  queue entries time out without running; a wedged in-flight job is
  abandoned by the supervisor) and transient failures retry with the
  sweep engine's :class:`~repro.system.runner.RetryPolicy` backoff.
* **Supervision** — a :class:`~repro.service.supervisor.LaneSupervisor`
  monitor thread detects dead lane threads (including injected
  ``service.*`` faults), strikes, restarts lanes from the last good
  :class:`~repro.service.tenant.TenantContext`, quarantines tenants
  after ``max_strikes``, and restores them after probation.
* **Graceful degradation** — sustained shedding demotes a tenant's
  sharded vector backend to serial execution (``workers=0``), which
  changes scheduling, never results.

Lane threads discard work across restarts with *generation tokens*:
every restart bumps ``lane.generation``; a stale thread notices and
exits without touching lane state (Python cannot kill threads, so
abandonment is cooperative discard plus a fresh thread).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.errors import (
    ConfigError,
    ServiceOverloadError,
    TenantQuarantinedError,
)
from repro.faults.sites import (
    SERVICE_JOB_CRASH,
    SERVICE_LANE_CRASH,
    SERVICE_LANE_STALL,
)
from repro.service.health import ServiceHealth
from repro.service.registry import TenantRegistry, TenantSpec
from repro.service.service import ServiceReport, TenantResult
from repro.service.supervisor import LaneSupervisor
from repro.service.tenant import SharedArtifacts, TenantContext
from repro.system.runner import RetryPolicy
from repro.workloads.base import Workload

__all__ = ["DEFAULT_DEADLINE_S", "DEFAULT_QUEUE_DEPTH", "JobHandle", "ServiceFrontend"]

#: Bounded per-tenant queue depth beyond which submissions shed.
DEFAULT_QUEUE_DEPTH = 64
#: Default per-job deadline (submission to completion), seconds.
DEFAULT_DEADLINE_S = 60.0

#: Terminal job states (the conservation law's right-hand side).
_TERMINAL = ("completed", "failed", "timeout", "dropped")


@dataclass
class JobHandle:
    """A submitted job's observable state; settles exactly once.

    ``wait()`` blocks until the job reaches a terminal state; ``status``
    is one of ``queued``/``running``/``completed``/``failed``/
    ``timeout``/``dropped``.  ``settle`` is once-only and thread-safe —
    the lane thread and the supervisor may race to settle (completion
    vs. abandonment) and exactly one wins, which is what keeps the
    health journal's conservation law exact.
    """

    tenant: str
    workload: str
    status: str = "queued"
    result: object = None
    error: str | None = None
    attempts: int = 0
    _settled: bool = field(default=False, init=False, repr=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )
    _event: threading.Event = field(
        default_factory=threading.Event, init=False, repr=False, compare=False
    )

    def settle(
        self, status: str, result: object = None, error: str | None = None
    ) -> bool:
        """Move to a terminal state; False if already settled."""
        if status not in _TERMINAL:
            raise ConfigError(f"{status!r} is not a terminal job state")
        with self._lock:
            if self._settled:
                return False
            self._settled = True
            self.status = status
            self.result = result
            self.error = error
        self._event.set()
        return True

    @property
    def done(self) -> bool:
        """Whether the job reached a terminal state."""
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until terminal (or timeout); returns :attr:`done`."""
        return self._event.wait(timeout)


@dataclass
class _QueuedJob:
    """One accepted job riding a lane queue."""

    workload: Workload
    profile_seed: int
    eval_seed: int
    handle: JobHandle
    deadline: float  # absolute monotonic deadline


class _TenantLane:
    """One tenant's always-on serving lane (queue + worker thread).

    All mutable fields are guarded by ``lock``; ``ready`` wakes the
    worker on submission, close, or restart.  ``generation`` is the
    restart token: threads capture it at spawn and discard everything
    once it moves on without them.
    """

    def __init__(self, name: str):
        self.name = name
        self.lock = threading.Lock()
        self.ready = threading.Condition(self.lock)
        self.queue: deque[_QueuedJob] = deque()
        self.generation = 0
        self.thread: threading.Thread | None = None
        self.current: _QueuedJob | None = None
        self.busy_since: float | None = None
        self.strikes = 0
        self.quarantined_until: float | None = None
        self.results: list = []
        self.closing = False
        self.sheds = 0
        self.demoted = False

    def idle(self) -> bool:
        with self.lock:
            return not self.queue and self.current is None


class ServiceFrontend:
    """Admit tenants, serve jobs continuously, survive lane failures.

    The registry, the health journal and the supervisor share one
    instance each: admissions journal reclaims/preemptions into the
    same :class:`ServiceHealth` the lanes and the supervisor write, so
    one record tells the whole degradation story.
    """

    def __init__(
        self,
        shared: SharedArtifacts | None = None,
        max_mappings: int = 256,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        deadline_s: float = DEFAULT_DEADLINE_S,
        retry: RetryPolicy | None = None,
        faults=None,
        max_strikes: int = 3,
        quarantine_s: float = 0.05,
        demote_after_sheds: int | None = None,
        supervise_interval_s: float = 0.005,
        retry_after_s: float = 0.05,
    ):
        if queue_depth < 1:
            raise ConfigError("queue_depth must be >= 1")
        if deadline_s <= 0:
            raise ConfigError("deadline_s must be > 0")
        self.health = ServiceHealth()
        self.registry = TenantRegistry(
            shared, max_mappings=max_mappings, health=self.health
        )
        self.registry.preempt_hook = self._on_preempt
        self.shared = self.registry.shared
        self.queue_depth = queue_depth
        self.deadline_s = deadline_s
        self.retry = retry if retry is not None else RetryPolicy()
        self.faults = faults
        self.demote_after_sheds = demote_after_sheds
        self.retry_after_s = retry_after_s
        self._clock = time.monotonic
        self._lanes: dict[str, _TenantLane] = {}
        self._lanes_lock = threading.RLock()
        #: Serialises registry mutation (admit/evict/rebuild/amend) —
        #: the supervisor restores quarantined tenants from its monitor
        #: thread while the caller may be admitting on another.
        self._registry_lock = threading.RLock()
        self._closed = False
        self.supervisor = LaneSupervisor(
            self,
            interval_s=supervise_interval_s,
            max_strikes=max_strikes,
            quarantine_s=quarantine_s,
        )

    # -- lifecycle ------------------------------------------------------------
    def __enter__(self) -> "ServiceFrontend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> int:
        """Stop every lane and the supervisor; drop (and journal) any
        jobs still queued.  Returns the number of jobs dropped."""
        if self._closed:
            return 0
        self._closed = True
        self.supervisor.stop()
        with self._lanes_lock:
            names = list(self._lanes)
        dropped = 0
        for name in names:
            dropped += self._teardown_lane(name, reason="service closed")
        return dropped

    # -- admission ------------------------------------------------------------
    def admit(self, spec: TenantSpec) -> TenantContext:
        """Admit a tenant and start its serving lane."""
        if self._closed:
            raise ConfigError("service front-end is closed")
        with self._registry_lock:
            context = self.registry.admit(spec)
            lane = _TenantLane(spec.name)
            with self._lanes_lock:
                self._lanes[spec.name] = lane
            self._start_lane_thread(lane)
        self.supervisor.ensure_running()
        return context

    def evict(self, name: str) -> int:
        """Evict a tenant; every queued/in-flight job is settled as
        ``dropped`` with a journal entry.  Returns the dropped count."""
        with self._registry_lock:
            dropped = self._teardown_lane(name, reason="tenant evicted")
            self.registry.evict(name)
        return dropped

    def _on_preempt(self, name: str) -> None:
        """Registry preemption hook: tear the victim's lane down first.

        Runs under :attr:`_registry_lock` (preemption only happens
        inside :meth:`admit`); the registry evicts the tenant right
        after this returns.
        """
        self._teardown_lane(name, reason="preempted")

    def _teardown_lane(self, name: str, reason: str) -> int:
        """Stop a lane and account all its jobs as dropped."""
        with self._lanes_lock:
            lane = self._lanes.pop(name, None)
        if lane is None:
            return 0
        dropped = 0
        with lane.lock:
            lane.closing = True
            lane.generation += 1
            victims = list(lane.queue)
            lane.queue.clear()
            if lane.current is not None:
                victims.insert(0, lane.current)
                lane.current = None
                lane.busy_since = None
            thread = lane.thread
            lane.thread = None
            lane.ready.notify_all()
        for job in victims:
            if job.handle.settle("dropped", error=reason):
                dropped += 1
                self.health.record(
                    "job-dropped", name, reason, workload=job.handle.workload
                )
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=1.0)
        return dropped

    # -- submission -----------------------------------------------------------
    def submit(
        self,
        tenant: str,
        workload: Workload,
        profile_seed: int = 0,
        eval_seed: int = 1,
        deadline_s: float | None = None,
    ) -> JobHandle:
        """Queue one job; returns a :class:`JobHandle` to wait on.

        Raises :class:`~repro.errors.TenantQuarantinedError` while the
        tenant is in probation and
        :class:`~repro.errors.ServiceOverloadError` (with a
        ``retry_after_s`` hint) when the lane queue is full — both
        journaled, so no rejection is silent.
        """
        if self._closed:
            raise ConfigError("service front-end is closed")
        with self._lanes_lock:
            lane = self._lanes.get(tenant)
        if lane is None:
            raise ConfigError(f"tenant {tenant!r} is not admitted")
        handle = JobHandle(tenant=tenant, workload=workload.name)
        now = self._clock()
        job = _QueuedJob(
            workload=workload,
            profile_seed=profile_seed,
            eval_seed=eval_seed,
            handle=handle,
            deadline=now + (deadline_s if deadline_s is not None else self.deadline_s),
        )
        with lane.lock:
            until = lane.quarantined_until
            if until is not None:
                self.health.record(
                    "job-rejected",
                    tenant,
                    "tenant quarantined",
                    workload=workload.name,
                )
                raise TenantQuarantinedError(
                    f"tenant {tenant!r} is quarantined after repeated lane "
                    "failures; retry after probation",
                    tenant=tenant,
                    until_s=until,
                )
            if len(lane.queue) >= self.queue_depth:
                lane.sheds += 1
                sheds = lane.sheds
                self.health.record(
                    "job-shed",
                    tenant,
                    f"lane queue full ({self.queue_depth} deep)",
                    workload=workload.name,
                )
            else:
                self.health.note_submitted()
                lane.queue.append(job)
                lane.ready.notify_all()
                return handle
        # Shed path continues outside the lane lock: demotion rebuilds
        # the tenant context, which must not nest inside lane.lock.
        if (
            self.demote_after_sheds is not None
            and sheds >= self.demote_after_sheds
            and not lane.demoted
        ):
            self._demote(tenant, lane)
        raise ServiceOverloadError(
            f"tenant {tenant!r} lane queue is full "
            f"({self.queue_depth} jobs deep); retry later",
            tenant=tenant,
            retry_after_s=self.retry_after_s,
        )

    def _demote(self, tenant: str, lane: _TenantLane) -> None:
        """Graceful degradation: sharded vector -> serial execution.

        Execution knobs (``workers``) change scheduling, never results
        (PR-7 shard determinism), so demotion is invisible in the
        fingerprints and visible only in the health journal.
        """
        lane.demoted = True
        with self._registry_lock:
            if tenant not in self.registry:
                return
            spec = self.registry.spec(tenant)
            options = dict(spec.backend_options or {})
            if options.get("workers", 0) == 0:
                return  # already serial: nothing to shed
            options["workers"] = 0
            self.registry.amend(tenant, backend_options=options)
        self.health.record(
            "pressure-demoted",
            tenant,
            "sustained overload: sharded backend demoted to serial",
            sheds=lane.sheds,
        )

    # -- the lane worker ------------------------------------------------------
    def _start_lane_thread(self, lane: _TenantLane) -> None:
        """Spawn a fresh worker for the lane's current generation."""
        lane.generation += 1
        generation = lane.generation
        thread = threading.Thread(
            target=self._lane_loop,
            args=(lane, generation),
            name=f"repro-lane-{lane.name}-g{generation}",
            daemon=True,
        )
        lane.thread = thread
        thread.start()

    def _lane_loop(self, lane: _TenantLane, generation: int) -> None:
        while True:
            with lane.lock:
                while (
                    not lane.queue
                    and not lane.closing
                    and lane.generation == generation
                ):
                    lane.ready.wait(timeout=0.1)
                if lane.closing or lane.generation != generation:
                    return
                job = lane.queue.popleft()
                if self._clock() > job.deadline:
                    # Expired while queued: terminal without running.
                    expired = job
                    job = None
                else:
                    lane.current = job
                    lane.busy_since = self._clock()
            if job is None:
                if expired.handle.settle("timeout", error="deadline expired in queue"):
                    self.health.record(
                        "job-timeout",
                        lane.name,
                        "deadline expired before the job started",
                        workload=expired.handle.workload,
                    )
                continue
            # Injected lane crash: requeue the job (never silently
            # lost), then die.  The supervisor detects the dead thread,
            # strikes, and restarts the lane.
            if self.faults is not None and self.faults.should_fire(
                SERVICE_LANE_CRASH, lane.name
            ):
                with lane.lock:
                    if lane.generation == generation:
                        lane.queue.appendleft(job)
                        lane.current = None
                        lane.busy_since = None
                return
            self._run_job(lane, generation, job)

    def _run_job(
        self, lane: _TenantLane, generation: int, job: _QueuedJob
    ) -> None:
        handle = job.handle
        handle.status = "running"
        attempt = 0
        while True:
            attempt += 1
            handle.attempts = attempt
            try:
                if self.faults is not None:
                    # stall specs sleep here (driving the job past its
                    # deadline so the supervisor abandons the lane);
                    # raise specs throw into the retry path below.
                    self.faults.inject(
                        SERVICE_LANE_STALL, lane.name, attempt=attempt
                    )
                    self.faults.inject(
                        SERVICE_JOB_CRASH, lane.name, attempt=attempt
                    )
                with lane.lock:
                    if lane.generation != generation:
                        return  # abandoned mid-stall: handle already settled
                context = self.registry.get(lane.name)
                result = context.run(
                    job.workload,
                    profile_seed=job.profile_seed,
                    eval_seed=job.eval_seed,
                )
            except Exception as error:  # noqa: BLE001 — classified below
                label = f"{type(error).__name__}: {error}"
                if self.retry.should_retry_exception(error, attempt):
                    self.health.record(
                        "job-retried",
                        lane.name,
                        label,
                        attempt=attempt,
                        workload=handle.workload,
                    )
                    time.sleep(self.retry.delay(attempt))
                    continue
                settled = handle.settle("failed", error=label)
                with lane.lock:
                    if lane.generation == generation:
                        lane.current = None
                        lane.busy_since = None
                if settled:
                    self.health.record(
                        "job-failed",
                        lane.name,
                        label,
                        attempts=attempt,
                        workload=handle.workload,
                    )
                return
            settled = handle.settle("completed", result=result)
            with lane.lock:
                if lane.generation == generation and settled:
                    lane.results.append(result)
                    lane.current = None
                    lane.busy_since = None
            if settled:
                self.health.note_completed()
            return

    # -- draining and reporting ----------------------------------------------
    @property
    def pending(self) -> int:
        """Accepted jobs not yet terminal."""
        return self.health.pending

    def drain(self, timeout: float = 60.0) -> ServiceReport:
        """Wait until every accepted job is terminal, then report.

        Unlike the batch service, lanes keep running after the drain —
        this is a checkpoint, not a shutdown.  Raises
        :class:`~repro.errors.ConfigError` if jobs remain unaccounted
        past ``timeout`` (which would mean supervision is wedged).
        """
        deadline = self._clock() + timeout
        while self.health.pending > 0:
            if self._clock() > deadline:
                raise ConfigError(
                    f"drain timed out with {self.health.pending} job(s) "
                    "unaccounted"
                )
            time.sleep(0.002)
        return self.report()

    def report(self) -> ServiceReport:
        """The current service snapshot (health journal included)."""
        results: dict[str, TenantResult] = {}
        with self._lanes_lock:
            lanes = dict(self._lanes)
        with self._registry_lock:
            for name in self.registry.names:
                lane = lanes.get(name)
                namespace = self.registry.get(name).namespace
                runs = []
                if lane is not None:
                    with lane.lock:
                        runs = list(lane.results)
                results[name] = TenantResult(
                    tenant=name, namespace=namespace, results=runs
                )
            budget = self.registry.report()
        return ServiceReport(
            tenants=results,
            plan_cache=self.shared.plan_cache.stats(),
            budget=budget,
            health=self.health,
        )
