"""Tenant-scoped machine core: shared immutable artifacts + per-tenant state.

The single-tenant :class:`~repro.system.machine.Machine` owns everything
— device config, geometry, engine, kernel, backend, selection policy.
Multi-tenant serving (ROADMAP: "millions of users, heavy traffic")
splits that state along its natural seam:

* :class:`SharedArtifacts` — the immutable, compile-once side every
  tenant reads: the :class:`~repro.hbm.config.HBMConfig`, the chunk
  geometry, the address layout, the shared
  :class:`~repro.hbm.plancache.PlanCache` of compiled GF(2) decode
  plans, and the backend factory defaults.  Nothing here changes after
  construction, so it is safe to hand one instance to any number of
  concurrently-running tenants.
* :class:`TenantContext` — everything one tenant mutates: its kernel
  (address spaces, allocator, CMT driver state), its mapping-budget
  namespace, its profiler outputs, its seeds, its backend instances and
  their health.  Two contexts share no mutable state, which is the
  isolation property the service selftest proves.

The pipeline methods here are the former ``Machine`` internals, moved
verbatim so the façade stays bit-identical: ``Machine`` now constructs
one :class:`TenantContext` and delegates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.chunks import ChunkGeometry
from repro.core.cmt import MappingNamespace
from repro.core.hashing import default_hash_mapping
from repro.core.mapping import identity_mapping
from repro.core.sdam import GlobalMappingTranslator, SDAMController
from repro.core.selection import (
    MappingSelection,
    select_application_mapping,
    select_mappings_dl,
    select_mappings_kmeans,
)
from repro.core.bitshuffle import select_global_mapping
from repro.cpu.accelerator import AcceleratorModel
from repro.cpu.cpu import CPUModel
from repro.cpu.trace import AccessTrace
from repro.errors import ConfigError
from repro.hbm.backend import MemoryBackend, available_backends, create_backend
from repro.hbm.config import HBMConfig, hbm2_config
from repro.hbm.decode import (
    decode_trace,
    decode_translated,
    iter_decoded_chunks,
)
from repro.hbm.guard import DEFAULT_GUARD_SAMPLE, GuardedBackend, TierFactory
from repro.hbm.plancache import PlanCache, default_plan_cache
from repro.mem.kernel import Kernel
from repro.mem.malloc import MappingAwareAllocator
from repro.ml.dlkmeans import AutoencoderConfig
from repro.profiling.bfrv import bit_flip_rate_vector
from repro.profiling.profiler import WorkloadProfile, profile_trace
from repro.profiling.variables import VariableRegistry
from repro.workloads.base import Workload

if TYPE_CHECKING:  # import cycle: repro.system.machine imports this module
    from repro.system.config import SystemConfig

__all__ = [
    "ACCEL_COMPUTE_NS_PER_ACCESS",
    "CPU_COMPUTE_NS_PER_ACCESS",
    "SharedArtifacts",
    "TenantContext",
]

# End-to-end time model: compute overlaps poorly with a saturated memory
# system, so total time = memory makespan + accesses * per-access work.
CPU_COMPUTE_NS_PER_ACCESS = 1.0  # per-access pipeline work, BOOM-scaled
ACCEL_COMPUTE_NS_PER_ACCESS = 0.15  # deep custom pipelines


@dataclass(frozen=True)
class SharedArtifacts:
    """The immutable artifacts every tenant of a deployment shares.

    One instance per service deployment (or per :class:`Machine`): the
    device model, the chunk geometry derived from it, the plan cache
    that amortises GF(2) compilation across tenants, and the default
    backend tier + options new tenants inherit.  All fields are
    read-only after construction; the plan cache is internally locked.
    """

    hbm: HBMConfig
    geometry: ChunkGeometry
    plan_cache: PlanCache
    backend: str = "fast"
    backend_options: dict = field(default_factory=dict)

    @classmethod
    def create(
        cls,
        hbm: HBMConfig | None = None,
        geometry: ChunkGeometry | None = None,
        plan_cache: PlanCache | None = None,
        backend: str = "fast",
        backend_options: dict | None = None,
    ) -> "SharedArtifacts":
        """Build shared artifacts, deriving geometry from the device."""
        hbm = hbm or hbm2_config()
        if backend not in available_backends():
            raise ConfigError(
                f"unknown memory model {backend!r}; "
                f"available: {', '.join(available_backends())}"
            )
        return cls(
            hbm=hbm,
            geometry=geometry or ChunkGeometry(total_bytes=hbm.total_bytes),
            # Not ``or``: an empty PlanCache has len() 0 and is falsy.
            plan_cache=(
                plan_cache if plan_cache is not None else default_plan_cache()
            ),
            backend=backend,
            backend_options=dict(backend_options or {}),
        )

    def layout(self):
        """The device's hardware-address layout."""
        return self.hbm.layout()


class TenantContext:
    """One tenant's mutable half of the machine.

    Owns the tenant's system configuration, engine model, seeds,
    optional mapping-budget namespace and backend execution knobs, and
    runs the paper's profile -> select -> evaluate pipeline against the
    :class:`SharedArtifacts` it was admitted with.  Every kernel,
    SDAM controller and backend it builds is private to the tenant;
    the only cross-tenant objects it touches are the immutable shared
    artifacts.
    """

    #: VectorModel execution knobs that must not leak into the guard's
    #: single-process replay instances (they change *how* a result is
    #: computed, never *what* it is).
    _EXECUTION_OPTIONS = ("workers", "shard_timeout", "retry", "faults")

    # Major-variable coverage for clustered selection.  The paper's 80%
    # rule identifies majors in real applications with thousands of
    # variables; our Table-1 models *are* the majors by construction,
    # so selection covers (nearly) all of them and leaves only the
    # modelled minor tail on the default mapping.
    SELECTION_COVERAGE = 0.95

    def __init__(
        self,
        name: str,
        system: SystemConfig,
        shared: SharedArtifacts,
        engine: str = "cpu",
        cores: int = 4,
        backend: str | None = None,
        backend_options: dict | None = None,
        chunk_accesses: int | None = None,
        dl_config: AutoencoderConfig | None = None,
        seed: int = 0,
        chunk_colours: int = 8,
        debug_ha: bool = False,
        guard: bool = False,
        guard_sample: float | None = None,
        guard_mode: str = "demote",
        backend_faults=None,
        namespace: MappingNamespace | None = None,
    ):
        self.name = name
        self.system = system
        self.shared = shared
        self.hbm = shared.hbm
        self.geometry = shared.geometry
        self.layout = shared.layout()
        if engine == "cpu":
            self.engine = CPUModel(cores=cores)
            self.compute_ns_per_access = CPU_COMPUTE_NS_PER_ACCESS
        elif engine == "accelerator":
            self.engine = AcceleratorModel()
            self.compute_ns_per_access = ACCEL_COMPUTE_NS_PER_ACCESS
        else:
            raise ConfigError(f"unknown engine {engine!r}")
        if backend is None:
            backend = shared.backend
        if backend not in available_backends():
            raise ConfigError(
                f"unknown memory model {backend!r}; "
                f"available: {', '.join(available_backends())}"
            )
        self.backend = backend
        if backend_options is None:
            backend_options = shared.backend_options
        self.backend_options = dict(backend_options)
        if guard_mode not in ("demote", "raise"):
            raise ConfigError(
                f"unknown guard mode {guard_mode!r}; "
                "expected 'demote' or 'raise'"
            )
        if guard_sample is not None and not (0.0 < guard_sample <= 1.0):
            raise ConfigError("guard_sample must be in (0, 1]")
        self.guard = bool(guard)
        self.guard_sample = guard_sample
        self.guard_mode = guard_mode
        self.backend_faults = backend_faults
        self.chunk_accesses = chunk_accesses
        self.dl_config = dl_config
        self.seed = seed
        self.chunk_colours = chunk_colours
        self.debug_ha = debug_ha
        self.namespace = namespace

    # -- building blocks -----------------------------------------------------
    def _memory(self) -> MemoryBackend:
        options = dict(self.backend_options)
        if (
            self.backend == "vector"
            and self.backend_faults is not None
            and "faults" not in options
        ):
            options["faults"] = self.backend_faults
        backend = create_backend(
            self.backend,
            self.hbm,
            max_inflight=self.engine.max_inflight,
            **options,
        )
        if not self.guard or self.backend == "event":
            return backend
        replay_options = {
            key: value
            for key, value in self.backend_options.items()
            if key not in self._EXECUTION_OPTIONS
        }
        max_inflight = self.engine.max_inflight
        if self.backend == "tiered":
            # Guard a tiered primary against a tiered reference that
            # shares the tier semantics (placement, policy, slow tier)
            # but times the fast tier with the event model — the two
            # sides then differ only in the timing engine, which is the
            # comparison the guard is built for.
            reference_name = "tiered:event"
            reference_factory = TierFactory(
                "tiered",
                self.hbm,
                max_inflight=max_inflight,
                **{**replay_options, "delegate": "event"},
            )
        else:
            reference_name = "event"
            reference_factory = TierFactory(
                "event", self.hbm, max_inflight=max_inflight
            )
        return GuardedBackend(
            backend,
            primary_factory=TierFactory(
                self.backend,
                self.hbm,
                max_inflight=max_inflight,
                **replay_options,
            ),
            reference_factory=reference_factory,
            primary_name=self.backend,
            reference_name=reference_name,
            sample=(
                self.guard_sample
                if self.guard_sample is not None
                else DEFAULT_GUARD_SAMPLE
            ),
            mode=self.guard_mode,
            faults=self.backend_faults,
            seed=self.seed,
        )

    def _sdam(self) -> SDAMController:
        """A fresh SDAM controller with this tenant's namespace live."""
        sdam = SDAMController(self.geometry)
        if self.namespace is not None:
            sdam.register_namespace(self.namespace)
        return sdam

    def _allocate(
        self,
        kernel: Kernel,
        workload: Workload,
        mapping_of_variable: dict[int, int],
    ):
        space = kernel.spawn()
        allocator = MappingAwareAllocator(kernel, space)
        registry = VariableRegistry()
        base: dict[str, int] = {}
        for variable_id, spec in enumerate(workload.variables()):
            mapping_id = mapping_of_variable.get(variable_id, 0)
            va = allocator.malloc(
                spec.size_bytes, mapping_id=mapping_id, tag=spec.name
            )
            registry.record_allocation(spec.name, va, spec.size_bytes)
            base[spec.name] = va
        return space, allocator, base, registry

    def _external(self, workload: Workload, base: dict[str, int], seed: int):
        thread_traces = workload.trace(base, input_seed=seed)
        return self.engine.external_trace(thread_traces)

    # -- profiling pass --------------------------------------------------------
    def profile(self, workload: Workload, input_seed: int = 0) -> WorkloadProfile:
        """Offline profiling on the baseline system (Section 6.2)."""
        kernel = Kernel(self.geometry, sdam=None)
        space, _allocator, base, registry = self._allocate(kernel, workload, {})
        external = self._external(workload, base, input_seed)
        pa = space.translate_trace(external.trace.va)
        pa_trace = AccessTrace(
            va=pa,
            is_write=external.trace.is_write,
            variable=external.trace.variable,
        )
        return profile_trace(pa_trace, registry, name=workload.name)

    # -- mapping selection -------------------------------------------------------
    def select(self, profile: WorkloadProfile) -> MappingSelection:
        system = self.system
        if system.clustering == "kmeans":
            return select_mappings_kmeans(
                profile,
                system.clusters,
                self.layout,
                self.geometry,
                seed=self.seed,
                coverage=self.SELECTION_COVERAGE,
            )
        if system.clustering == "dl":
            return select_mappings_dl(
                profile,
                system.clusters,
                self.layout,
                self.geometry,
                config=self.dl_config,
                coverage=self.SELECTION_COVERAGE,
            )
        return select_application_mapping(profile, self.layout, self.geometry)

    def _global_translator(
        self, mix_profile: WorkloadProfile | None
    ) -> GlobalMappingTranslator:
        if self.system.policy == "default":
            return GlobalMappingTranslator(identity_mapping(self.layout.width))
        if self.system.policy == "hash":
            return GlobalMappingTranslator(default_hash_mapping(self.layout))
        # Global bit-shuffle from the workload-mix profile.
        if mix_profile is None or not mix_profile.profiles:
            return GlobalMappingTranslator(identity_mapping(self.layout.width))
        addresses = np.concatenate(
            [p.addresses for p in mix_profile.profiles]
        )
        rates = bit_flip_rate_vector(addresses, self.layout.width)
        return GlobalMappingTranslator(
            select_global_mapping(rates, self.layout)
        )

    # -- the full pipeline ----------------------------------------------------
    def run(
        self,
        workload: Workload,
        profile_seed: int = 0,
        eval_seed: int = 1,
        mix_profile: WorkloadProfile | None = None,
        profile: WorkloadProfile | None = None,
        selection: MappingSelection | None = None,
    ):
        """Profile (if needed), select mappings, evaluate, simulate.

        ``mix_profile`` overrides the profile used by the global
        ``BS+BSM`` policy — the experiment driver passes the suite-wide
        mix, matching the paper's methodology.  ``profile`` and
        ``selection`` inject precomputed stage outputs (the experiment
        runner's cache); when given, the corresponding pipeline stage
        is skipped.  Returns a
        :class:`~repro.system.machine.MachineResult`.
        """
        # Machine imports this module at class-definition time; resolve
        # the result type lazily to keep the dependency one-way at import.
        from repro.system.machine import MachineResult

        system = self.system
        profiling_seconds = 0.0
        namespace = None if self.namespace is None else self.namespace.tenant

        if system.sdam:
            if selection is None:
                if profile is None:
                    profile = self.profile(workload, input_seed=profile_seed)
                selection = self.select(profile)
            profiling_seconds = selection.elapsed_seconds
            sdam = self._sdam()
            kernel = Kernel(
                self.geometry, sdam=sdam, chunk_colours=self.chunk_colours
            )
            cluster_to_mapping = {
                index: kernel.add_addr_map(perm, namespace=namespace)
                for index, perm in enumerate(selection.window_perms)
            }
            mapping_of_variable = {
                variable_id: cluster_to_mapping[cluster]
                for variable_id, cluster in selection.variable_cluster.items()
            }
        else:
            kernel = Kernel(
                self.geometry, sdam=None, chunk_colours=self.chunk_colours
            )
            mapping_of_variable = {}
            if system.policy == "bsm" and mix_profile is None:
                mix_profile = profile or self.profile(
                    workload, input_seed=profile_seed
                )

        space, _allocator, base, _registry = self._allocate(
            kernel, workload, mapping_of_variable
        )
        external = self._external(workload, base, eval_seed)
        # The fused datapath: VA -> PA through the page table, then one
        # precomposed mapping∘decode pass per translation group straight
        # into the memory backend — no intermediate HA array.  With
        # ``debug_ha`` the legacy two-step (translate, then decode) runs
        # instead; the two are bit-identical (tested).
        pa = space.translate_trace(external.trace.va)
        if system.sdam:
            translator = kernel.address_translator
        else:
            translator = self._global_translator(mix_profile)
        backend = self._memory()
        cache = self.shared.plan_cache
        if self.debug_ha:
            ha = translator.translate(pa)
            stats = backend.simulate_decoded(decode_trace(ha, self.hbm))
        elif self.chunk_accesses is not None or self.backend == "vector":
            # Streaming evaluate: decoded chunks flow straight into the
            # backend, so the decoded trace never fully materialises.
            # Chunking is bit-identical to whole-trace simulation for
            # every built-in tier (tested), so this only changes peak
            # memory.  Opt-in via ``chunk_accesses`` for fast/event;
            # the vector tier streams by default.
            stats = backend.simulate_decoded(
                iter_decoded_chunks(
                    pa,
                    translator,
                    self.hbm,
                    cache=cache,
                    **(
                        {"chunk_accesses": self.chunk_accesses}
                        if self.chunk_accesses is not None
                        else {}
                    ),
                )
            )
        else:
            stats = backend.simulate_decoded(
                decode_translated(pa, translator, self.hbm, cache=cache)
            )
        intensity = getattr(workload, "compute_intensity", 1.0)
        compute_ns = (
            external.program_accesses * self.compute_ns_per_access * intensity
        )
        return MachineResult(
            workload=workload.name,
            system=system.label,
            stats=stats,
            external=external,
            selection=selection,
            compute_ns=compute_ns,
            profiling_seconds=profiling_seconds,
            backend_health=getattr(backend, "last_health", None),
            tier_traffic=getattr(backend, "last_traffic", None),
        )

    # -- RAS -------------------------------------------------------------------
    def ras_campaign(self, seed: int | None = None, kinds=None, quick=True):
        """Run a seeded device-fault RAS campaign for this tenant.

        The campaign builds its software stack from this tenant's
        device config, geometry, backend tier and guard settings — no
        global machine state — so per-tenant campaigns can run
        concurrently without sharing anything mutable.
        """
        from repro.ras.campaign import ALL_KINDS, run_campaign

        return run_campaign(
            seed=self.seed if seed is None else seed,
            kinds=kinds or ALL_KINDS,
            quick=quick,
            config=self.hbm,
            geometry=self.geometry,
            backend=self.backend,
            guard=self.guard,
            guard_sample=self.guard_sample,
            guard_faults=self.backend_faults,
        )

    # -- online adaptation ------------------------------------------------------
    def adaptive_campaign(self, seed: int | None = None, quick: bool = True):
        """Run the seeded online-adaptation campaign for this tenant.

        Like :meth:`ras_campaign`, fully parameterized by tenant state:
        the adaptive controller watches this tenant's trace on this
        tenant's device model.
        """
        from repro.online.campaign import run_adaptive_campaign

        return run_adaptive_campaign(
            seed=self.seed if seed is None else seed,
            quick=quick,
            config=self.hbm,
            geometry=self.geometry,
            backend=self.backend,
            guard=self.guard,
            guard_sample=self.guard_sample,
            guard_faults=self.backend_faults,
        )

    def __repr__(self) -> str:
        ns = "" if self.namespace is None else f", namespace={self.namespace!r}"
        return (
            f"TenantContext({self.name!r}, system={self.system.key!r}, "
            f"backend={self.backend!r}{ns})"
        )
