"""The service selftest: prove tenant isolation, don't assume it.

``repro serve --selftest`` runs this campaign.  It admits N tenants
(mixed SDAM and baseline systems, distinct workloads and seeds) and
checks the acceptance property from six directions:

1. **Concurrency isolation** — every tenant's fingerprint from the
   concurrent N-tenant run is bit-identical to the same tenant's solo
   run (same admissions, only that tenant's traffic submitted).
2. **Fault isolation** — re-run the concurrent leg with one tenant's
   backend deliberately faulted (``backend.shard.crash`` against its
   sharded vector pool): every *other* tenant's fingerprint AND health
   journal must be bit-identical to the clean concurrent leg.
3. **Controller isolation** — per-tenant adaptive and RAS campaigns run
   solo and then concurrently on threads; their campaign fingerprints
   must match.
4. **Lane-crash recovery** — the continuous front-end with an injected
   ``service.lane.crash`` storm against one tenant: the supervisor
   strikes it out, quarantines it (dropping its queued jobs — all
   journaled), restores it after probation, and the re-submitted
   tenant's fingerprint plus every *other* tenant's fingerprint must
   be bit-identical to the solo runs.
5. **Overload accounting** — a one-deep lane hammered with a burst:
   every :class:`~repro.errors.ServiceOverloadError` the caller caught
   must match a ``job-shed`` journal entry one-for-one, and the
   conservation law must hold after the drain.
6. **Scale churn** — 200+ tenants with mixed priorities and borrowed
   quotas admitted, evicted and re-admitted in waves while jobs run,
   a lane crash fires and a queue overflows: the CMT budget invariants
   (bounds, disjointness, accounting) must hold after every wave and a
   probe tenant's fingerprint must match its solo run.

The result carries per-leg fingerprints, every mismatch found, the
shared plan-cache counters (evidence the tenants shared compiled plans)
and the budget partition.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.errors import (
    CMTError,
    ServiceOverloadError,
    TenantQuarantinedError,
)
from repro.faults import FaultPlan
from repro.faults.sites import BACKEND_SHARD_CRASH, SERVICE_LANE_CRASH
from repro.service.frontend import ServiceFrontend
from repro.service.registry import TenantSpec
from repro.service.service import MappingService, ServiceReport
from repro.service.tenant import SharedArtifacts
from repro.workloads.synthetic import MixedStrideWorkload, StridedCopyWorkload

__all__ = ["ServiceCampaignResult", "run_service_campaign"]

#: Vector-tier worker count for the deliberately-faulted tenant: the
#: crash site lives in the shard supervisor, so the pool must be real.
_FAULTY_WORKERS = 2


@dataclass
class ServiceCampaignResult:
    """Everything the isolation selftest measured."""

    seed: int
    quick: bool
    tenants: list[str]
    faulty_tenant: str
    solo_fingerprints: dict = field(default_factory=dict)
    concurrent_fingerprints: dict = field(default_factory=dict)
    fault_fingerprints: dict = field(default_factory=dict)
    concurrent_health: dict = field(default_factory=dict)
    fault_health: dict = field(default_factory=dict)
    controller_fingerprints: dict = field(default_factory=dict)
    recovery_fingerprints: dict = field(default_factory=dict)
    recovery_health: dict = field(default_factory=dict)
    overload: dict = field(default_factory=dict)
    scale: dict = field(default_factory=dict)
    mismatches: list = field(default_factory=list)
    plan_cache: dict = field(default_factory=dict)
    budget: dict = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def isolated(self) -> bool:
        """True when every isolation check held."""
        return not self.mismatches

    def to_dict(self) -> dict:
        """A JSON-serialisable report (the CI artifact)."""
        return {
            "seed": self.seed,
            "quick": self.quick,
            "tenants": self.tenants,
            "faulty_tenant": self.faulty_tenant,
            "isolated": self.isolated,
            "mismatches": list(self.mismatches),
            "solo_fingerprints": self.solo_fingerprints,
            "concurrent_fingerprints": self.concurrent_fingerprints,
            "fault_fingerprints": self.fault_fingerprints,
            "controller_fingerprints": self.controller_fingerprints,
            "recovery_fingerprints": self.recovery_fingerprints,
            "recovery_health": self.recovery_health,
            "overload": self.overload,
            "scale": self.scale,
            "plan_cache": self.plan_cache,
            "budget": self.budget,
            "elapsed_seconds": self.elapsed_seconds,
        }

    def fingerprint(self) -> dict:
        """Deterministic content: the per-tenant fingerprints + verdict."""
        return {
            "seed": self.seed,
            "tenants": self.tenants,
            "isolated": self.isolated,
            "concurrent_fingerprints": self.concurrent_fingerprints,
        }

    def summary(self) -> str:
        """One-line human-readable verdict."""
        verdict = "ISOLATED" if self.isolated else (
            f"{len(self.mismatches)} ISOLATION VIOLATION(S)"
        )
        return (
            f"service selftest: {len(self.tenants)} tenants, "
            f"{verdict}, plan cache "
            f"{self.plan_cache.get('hits', 0)} hits / "
            f"{self.plan_cache.get('misses', 0)} misses, "
            f"{self.elapsed_seconds:.1f}s"
        )


def _tenant_specs(
    seed: int,
    count: int,
    faulty: str | None = None,
    backend: str = "vector",
) -> list[TenantSpec]:
    """Deterministic tenant population: mixed systems, distinct seeds.

    ``faulty`` names the tenant whose vector backend gets a live shard
    pool plus an injected ``backend.shard.crash`` — the fault-isolation
    leg's aggressor.  It stays on the vector tier regardless of
    ``backend``: the shard-crash fault site only exists there.
    """
    systems = ["sdm_bsm_ml4", "sdm_bsm", "bs_dm", "sdm_bsm_ml4"]
    specs = []
    for index in range(count):
        name = f"tenant{index}"
        options: dict = {}
        faults = None
        tenant_backend = backend
        if name == faulty:
            tenant_backend = "vector"
            options = {"workers": _FAULTY_WORKERS}
            faults = FaultPlan.single(BACKEND_SHARD_CRASH, times=1)
        specs.append(
            TenantSpec(
                name=name,
                system=systems[index % len(systems)],
                quota=5,
                seed=seed + index,
                backend=tenant_backend,
                backend_options=options,
                backend_faults=faults,
            )
        )
    return specs


def _tenant_workload(seed: int, index: int, quick: bool):
    """Each tenant's (distinct) workload, sized for the mode."""
    accesses = 1500 if quick else 6000
    shapes = [
        lambda: StridedCopyWorkload(
            stride_lines=16, accesses_per_thread=accesses
        ),
        lambda: MixedStrideWorkload(
            strides=(1, 8), accesses_per_stride=accesses // 2
        ),
        lambda: StridedCopyWorkload(
            stride_lines=4, accesses_per_thread=accesses
        ),
        lambda: MixedStrideWorkload(
            strides=(2, 16), accesses_per_stride=accesses // 2
        ),
    ]
    return shapes[index % len(shapes)]()


def _run_leg(
    seed: int,
    specs: list[TenantSpec],
    submit_for: list[str],
    quick: bool,
    backend: str = "vector",
) -> ServiceReport:
    """One service run: admit every spec, submit jobs for a subset.

    Every leg admits the *same* population so the budget partition —
    part of each fingerprint — is identical across legs; only the
    submitted traffic differs.
    """
    service = MappingService(
        shared=SharedArtifacts.create(backend=backend)
    )
    for spec in specs:
        service.admit(spec)
    for index, spec in enumerate(specs):
        if spec.name in submit_for:
            service.submit(
                spec.name,
                _tenant_workload(seed, index, quick),
                profile_seed=0,
                eval_seed=1,
            )
    return service.drain()


def _controller_leg(
    seed: int, specs: list[TenantSpec], mismatches: list
) -> dict:
    """Per-tenant adaptive + RAS campaigns, solo vs concurrent.

    Controllers are parameterized by tenant context alone, so running
    two tenants' campaigns on threads must reproduce the solo
    fingerprints bit for bit.  The fast backend keeps the leg cheap;
    the property being checked is context isolation, not tier choice.
    """
    service = MappingService(shared=SharedArtifacts.create(backend="fast"))
    contexts = [service.admit(spec) for spec in specs[:2]]

    def adaptive(context):
        return context.adaptive_campaign(quick=True).fingerprint()

    def ras(context):
        return context.ras_campaign(quick=True, kinds=("row",)).fingerprint()

    solo = {}
    for context in contexts:
        solo[context.name] = {
            "adaptive": adaptive(context),
            "ras": ras(context),
        }
    tasks = [
        (context.name, kind, fn)
        for context in contexts
        for kind, fn in (("adaptive", adaptive), ("ras", ras))
    ]
    concurrent: dict = {context.name: {} for context in contexts}
    with ThreadPoolExecutor(max_workers=len(tasks)) as pool:
        futures = [
            (name, kind, pool.submit(fn, service.registry.get(name)))
            for name, kind, fn in tasks
        ]
        for name, kind, future in futures:
            concurrent[name][kind] = future.result()
    for name, kinds in concurrent.items():
        for kind, fingerprint in kinds.items():
            if fingerprint != solo[name][kind]:
                mismatches.append(
                    {
                        "check": "controller",
                        "tenant": name,
                        "controller": kind,
                    }
                )
    return {"solo": solo, "concurrent": concurrent}


def _submit_with_patience(
    frontend: ServiceFrontend,
    tenant: str,
    workload,
    eval_seed: int = 1,
    deadline_s: float = 30.0,
):
    """Submit, backing off through overload and probation windows."""
    deadline = time.monotonic() + deadline_s
    while True:
        try:
            return frontend.submit(tenant, workload, eval_seed=eval_seed)
        except (ServiceOverloadError, TenantQuarantinedError) as error:
            if time.monotonic() > deadline:
                raise
            time.sleep(
                max(0.005, getattr(error, "retry_after_s", 0.0) or 0.005)
            )


#: Strikes (= injected lane crashes) that quarantine the recovery leg's
#: victim tenant.
_RECOVERY_STRIKES = 3


def _recovery_leg(
    seed: int,
    specs: list[TenantSpec],
    names: list[str],
    quick: bool,
    solo: dict,
    mismatches: list,
) -> tuple[dict, dict]:
    """Leg 5: lane-crash storm, quarantine, restore, bit-identical rerun.

    The victim's lane crashes ``_RECOVERY_STRIKES`` times (the injected
    fault requeues the dequeued job before dying, so nothing is lost
    silently), which strikes it into quarantine: its queued job is
    dropped and journaled.  After probation the supervisor restores the
    tenant from a rebuilt context; the campaign resubmits its traffic
    and every tenant — victim included — must reproduce its solo
    fingerprint bit for bit.
    """
    victim = names[0]
    plan = FaultPlan.single(
        SERVICE_LANE_CRASH, times=_RECOVERY_STRIKES, match=victim
    )
    frontend = ServiceFrontend(
        shared=SharedArtifacts.create(backend="vector"),
        faults=plan,
        max_strikes=_RECOVERY_STRIKES,
        quarantine_s=0.05,
        supervise_interval_s=0.002,
    )
    try:
        for spec in specs:
            frontend.admit(spec)
        for index, spec in enumerate(specs):
            _submit_with_patience(
                frontend, spec.name, _tenant_workload(seed, index, quick)
            )
        deadline = time.monotonic() + 30.0
        while frontend.health.restores < 1:
            if time.monotonic() > deadline:
                mismatches.append(
                    {"check": "recovery-restore-timeout", "tenant": victim}
                )
                break
            time.sleep(0.005)
        if frontend.health.restores >= 1:
            # The victim's job was dropped at quarantine; resubmit it.
            _submit_with_patience(
                frontend,
                victim,
                _tenant_workload(seed, names.index(victim), quick),
            )
        report = frontend.drain(timeout=120.0)
        fingerprints = report.fingerprints()
        for name in names:
            if fingerprints.get(name) != solo.get(name):
                mismatches.append(
                    {"check": "recovery-vs-solo", "tenant": name}
                )
        if frontend.health.quarantines < 1:
            mismatches.append(
                {"check": "recovery-quarantine-missing", "tenant": victim}
            )
        for violation in frontend.health.violations():
            mismatches.append(
                {"check": "recovery-accounting", "detail": violation}
            )
        return fingerprints, frontend.health.to_dict()
    finally:
        frontend.close()


def _overload_leg(seed: int, quick: bool, mismatches: list) -> dict:
    """Leg 6: a one-deep lane under a burst; every shed accounted.

    The caller counts the :class:`~repro.errors.ServiceOverloadError`s
    it caught; the journal must contain exactly that many ``job-shed``
    events (with retry-after hints), and once drained the conservation
    law must hold for the accepted remainder.
    """
    frontend = ServiceFrontend(
        shared=SharedArtifacts.create(backend="fast"),
        queue_depth=1,
        supervise_interval_s=0.002,
    )
    burst = 12
    caught = 0
    handles = []
    try:
        frontend.admit(TenantSpec(name="burst", system="bs_dm", quota=2))
        workload = StridedCopyWorkload(
            stride_lines=8, accesses_per_thread=512 if quick else 2048
        )
        for index in range(burst):
            try:
                handles.append(
                    frontend.submit("burst", workload, eval_seed=index)
                )
            except ServiceOverloadError as error:
                caught += 1
                if error.retry_after_s <= 0:
                    mismatches.append(
                        {"check": "overload-retry-after", "tenant": "burst"}
                    )
        frontend.drain(timeout=60.0)
        health = frontend.health
        shed_events = [
            e for e in health.events if e["event"] == "job-shed"
        ]
        if health.shed != caught or len(shed_events) != caught:
            mismatches.append(
                {
                    "check": "overload-shed-accounting",
                    "caught": caught,
                    "counter": health.shed,
                    "events": len(shed_events),
                }
            )
        unfinished = [h.status for h in handles if h.status != "completed"]
        if unfinished:
            mismatches.append(
                {"check": "overload-accepted-lost", "statuses": unfinished}
            )
        for violation in health.violations():
            mismatches.append(
                {"check": "overload-conservation", "detail": violation}
            )
        return {
            "burst": burst,
            "accepted": len(handles),
            "shed": caught,
            "health": health.to_dict(),
        }
    finally:
        frontend.close()


def _scale_leg(
    seed: int, quick: bool, mismatches: list, tenants: int = 208
) -> dict:
    """Leg 7: 200+ tenant churn under overload and an injected crash.

    Tenants with quotas 1–2 (floor 1) and mixed priorities are admitted
    until the valves (reclaim, trim, preempt) are all exercised, then
    evicted and re-admitted in waves.  After every wave the registry's
    budget invariants — namespaces inside ``[1, max_mappings)``,
    pairwise disjoint, carved + free accounting exact — must hold.  A
    probe tenant admitted first (deterministic namespace) runs real
    jobs throughout, its lane crashes once mid-churn (restart, no
    quarantine), and its fingerprint must match a solo run.
    """
    probe = "probe"
    plan = FaultPlan.single(SERVICE_LANE_CRASH, times=1, match=probe)
    probe_spec = TenantSpec(
        name=probe, system="sdm_bsm_ml4", quota=5, seed=seed, backend="fast"
    )
    accesses = 384 if quick else 1536
    workload = StridedCopyWorkload(
        stride_lines=4, accesses_per_thread=accesses
    )
    frontend = ServiceFrontend(
        shared=SharedArtifacts.create(backend="fast"),
        faults=plan,
        max_strikes=2,
        quarantine_s=0.02,
        queue_depth=2,
        supervise_interval_s=0.002,
    )
    summary: dict = {"requested": tenants}
    try:
        frontend.admit(probe_spec)
        handles = [_submit_with_patience(frontend, probe, workload)]

        def check(wave: str) -> None:
            problems = frontend.registry.check_invariants()
            for problem in problems:
                mismatches.append(
                    {"check": "scale-invariants", "wave": wave,
                     "detail": problem}
                )

        def spec_for(index: int) -> TenantSpec:
            return TenantSpec(
                name=f"scale{index:04d}",
                system="bs_dm",
                quota=1 + (index % 2),
                min_quota=1,
                priority=("standard", "best-effort", "guaranteed")[index % 3],
                seed=seed + index,
                backend="fast",
            )

        admitted: list[str] = []
        exhausted = 0
        for index in range(tenants):
            try:
                frontend.admit(spec_for(index))
                admitted.append(f"scale{index:04d}")
            except CMTError:
                exhausted += 1
        check("admit")
        summary["admitted"] = len(admitted)
        summary["exhausted"] = exhausted

        # Churn: evict every third tenant, re-admit fresh ones into the
        # coalesced holes, twice over.
        next_index = tenants
        for wave in range(2):
            victims = admitted[wave::3]
            for name in victims:
                frontend.evict(name)
            admitted = [n for n in admitted if n not in set(victims)]
            check(f"evict-{wave}")
            handles.append(
                _submit_with_patience(
                    frontend, probe, workload, eval_seed=2 + wave
                )
            )
            for _ in range(len(victims)):
                try:
                    frontend.admit(spec_for(next_index))
                    admitted.append(f"scale{next_index:04d}")
                except CMTError:
                    exhausted += 1
                next_index += 1
            check(f"readmit-{wave}")

        # Overload a one-job corner of the fleet: a best-effort tenant's
        # two-deep queue hammered past capacity.
        busy = admitted[-1]
        shed = 0
        for index in range(6):
            try:
                handles.append(
                    frontend.submit(busy, workload, eval_seed=10 + index)
                )
            except ServiceOverloadError:
                shed += 1
        summary["shed"] = shed

        report = frontend.drain(timeout=120.0)
        check("drained")
        if frontend.health.lane_crashes < 1:
            mismatches.append(
                {"check": "scale-crash-missing", "tenant": probe}
            )
        for violation in frontend.health.violations():
            mismatches.append(
                {"check": "scale-conservation", "detail": violation}
            )
        probe_fingerprint = report.fingerprints()[probe]
        summary["tenant_count"] = len(frontend.registry)
        summary["health"] = frontend.health.to_dict()
    finally:
        frontend.close()

    # The probe's solo control: same spec admitted first in a fresh
    # deployment (same namespace base), same traffic, no churn around it.
    solo_frontend = ServiceFrontend(
        shared=SharedArtifacts.create(backend="fast"),
        supervise_interval_s=0.002,
    )
    try:
        solo_frontend.admit(probe_spec)
        solo_frontend.submit(probe, workload)
        for wave in range(2):
            solo_frontend.submit(probe, workload, eval_seed=2 + wave)
        solo_report = solo_frontend.drain(timeout=120.0)
        solo_fingerprint = solo_report.fingerprints()[probe]
    finally:
        solo_frontend.close()
    if probe_fingerprint != solo_fingerprint:
        mismatches.append({"check": "scale-probe-vs-solo", "tenant": probe})
    summary["probe_isolated"] = probe_fingerprint == solo_fingerprint
    return summary


def run_service_campaign(
    seed: int = 0,
    tenants: int = 3,
    quick: bool = True,
    controllers: bool = True,
    frontend_legs: bool = True,
    scale_tenants: int = 208,
    backend: str = "vector",
) -> ServiceCampaignResult:
    """Run the full isolation selftest; see the module docstring."""
    started = time.perf_counter()
    count = max(2, tenants)
    clean_specs = _tenant_specs(seed, count, backend=backend)
    names = [spec.name for spec in clean_specs]
    faulty = names[0]
    result = ServiceCampaignResult(
        seed=seed,
        quick=quick,
        tenants=names,
        faulty_tenant=faulty,
    )

    # Leg 1: solo runs — same admissions, one tenant's traffic each.
    for name in names:
        report = _run_leg(seed, clean_specs, [name], quick, backend=backend)
        result.solo_fingerprints[name] = report.fingerprints()[name]

    # Leg 2: all tenants concurrently.
    report = _run_leg(seed, clean_specs, names, quick, backend=backend)
    result.concurrent_fingerprints = report.fingerprints()
    result.concurrent_health = {
        name: None
        if tenant.health is None
        else tenant.health.to_dict()
        for name, tenant in report.tenants.items()
    }
    result.plan_cache = report.plan_cache
    result.budget = report.budget
    for name in names:
        if result.concurrent_fingerprints[name] != result.solo_fingerprints[name]:
            result.mismatches.append(
                {"check": "concurrent-vs-solo", "tenant": name}
            )

    # Leg 3: concurrent again, with one tenant's backend faulted.  The
    # victim tenants must see neither their fingerprints nor their
    # health journals move.
    fault_specs = _tenant_specs(seed, count, faulty=faulty, backend=backend)
    report = _run_leg(seed, fault_specs, names, quick, backend=backend)
    result.fault_fingerprints = report.fingerprints()
    result.fault_health = {
        name: None
        if tenant.health is None
        else tenant.health.to_dict()
        for name, tenant in report.tenants.items()
    }
    for name in names:
        if name == faulty:
            continue
        if result.fault_fingerprints[name] != result.solo_fingerprints[name]:
            result.mismatches.append(
                {"check": "fault-vs-solo", "tenant": name}
            )
        if result.fault_health.get(name) != result.concurrent_health.get(name):
            result.mismatches.append(
                {"check": "fault-health", "tenant": name}
            )

    # Leg 4: per-tenant controllers, solo vs concurrent.
    if controllers:
        result.controller_fingerprints = _controller_leg(
            seed, clean_specs, result.mismatches
        )

    if frontend_legs:
        # Leg 5: continuous front-end lane-crash recovery.
        result.recovery_fingerprints, result.recovery_health = _recovery_leg(
            seed,
            clean_specs,
            names,
            quick,
            result.solo_fingerprints,
            result.mismatches,
        )
        # Leg 6: overload shedding is exact, never silent.
        result.overload = _overload_leg(seed, quick, result.mismatches)
        # Leg 7: 200+ tenant churn against the budget invariants.
        result.scale = _scale_leg(
            seed, quick, result.mismatches, tenants=scale_tenants
        )

    result.elapsed_seconds = time.perf_counter() - started
    return result
