"""The service selftest: prove tenant isolation, don't assume it.

``repro serve --selftest`` runs this campaign.  It admits N tenants
(mixed SDAM and baseline systems, distinct workloads and seeds) and
checks the acceptance property from three directions:

1. **Concurrency isolation** — every tenant's fingerprint from the
   concurrent N-tenant run is bit-identical to the same tenant's solo
   run (same admissions, only that tenant's traffic submitted).
2. **Fault isolation** — re-run the concurrent leg with one tenant's
   backend deliberately faulted (``backend.shard.crash`` against its
   sharded vector pool): every *other* tenant's fingerprint AND health
   journal must be bit-identical to the clean concurrent leg.
3. **Controller isolation** — per-tenant adaptive and RAS campaigns run
   solo and then concurrently on threads; their campaign fingerprints
   must match.

The result carries per-leg fingerprints, every mismatch found, the
shared plan-cache counters (evidence the tenants shared compiled plans)
and the budget partition.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.faults import FaultPlan
from repro.faults.sites import BACKEND_SHARD_CRASH
from repro.service.registry import TenantSpec
from repro.service.service import MappingService, ServiceReport
from repro.service.tenant import SharedArtifacts
from repro.workloads.synthetic import MixedStrideWorkload, StridedCopyWorkload

__all__ = ["ServiceCampaignResult", "run_service_campaign"]

#: Vector-tier worker count for the deliberately-faulted tenant: the
#: crash site lives in the shard supervisor, so the pool must be real.
_FAULTY_WORKERS = 2


@dataclass
class ServiceCampaignResult:
    """Everything the isolation selftest measured."""

    seed: int
    quick: bool
    tenants: list[str]
    faulty_tenant: str
    solo_fingerprints: dict = field(default_factory=dict)
    concurrent_fingerprints: dict = field(default_factory=dict)
    fault_fingerprints: dict = field(default_factory=dict)
    concurrent_health: dict = field(default_factory=dict)
    fault_health: dict = field(default_factory=dict)
    controller_fingerprints: dict = field(default_factory=dict)
    mismatches: list = field(default_factory=list)
    plan_cache: dict = field(default_factory=dict)
    budget: dict = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def isolated(self) -> bool:
        """True when every isolation check held."""
        return not self.mismatches

    def to_dict(self) -> dict:
        """A JSON-serialisable report (the CI artifact)."""
        return {
            "seed": self.seed,
            "quick": self.quick,
            "tenants": self.tenants,
            "faulty_tenant": self.faulty_tenant,
            "isolated": self.isolated,
            "mismatches": list(self.mismatches),
            "solo_fingerprints": self.solo_fingerprints,
            "concurrent_fingerprints": self.concurrent_fingerprints,
            "fault_fingerprints": self.fault_fingerprints,
            "controller_fingerprints": self.controller_fingerprints,
            "plan_cache": self.plan_cache,
            "budget": self.budget,
            "elapsed_seconds": self.elapsed_seconds,
        }

    def fingerprint(self) -> dict:
        """Deterministic content: the per-tenant fingerprints + verdict."""
        return {
            "seed": self.seed,
            "tenants": self.tenants,
            "isolated": self.isolated,
            "concurrent_fingerprints": self.concurrent_fingerprints,
        }

    def summary(self) -> str:
        """One-line human-readable verdict."""
        verdict = "ISOLATED" if self.isolated else (
            f"{len(self.mismatches)} ISOLATION VIOLATION(S)"
        )
        return (
            f"service selftest: {len(self.tenants)} tenants, "
            f"{verdict}, plan cache "
            f"{self.plan_cache.get('hits', 0)} hits / "
            f"{self.plan_cache.get('misses', 0)} misses, "
            f"{self.elapsed_seconds:.1f}s"
        )


def _tenant_specs(
    seed: int, count: int, faulty: str | None = None
) -> list[TenantSpec]:
    """Deterministic tenant population: mixed systems, distinct seeds.

    ``faulty`` names the tenant whose vector backend gets a live shard
    pool plus an injected ``backend.shard.crash`` — the fault-isolation
    leg's aggressor.
    """
    systems = ["sdm_bsm_ml4", "sdm_bsm", "bs_dm", "sdm_bsm_ml4"]
    specs = []
    for index in range(count):
        name = f"tenant{index}"
        options: dict = {}
        faults = None
        if name == faulty:
            options = {"workers": _FAULTY_WORKERS}
            faults = FaultPlan.single(BACKEND_SHARD_CRASH, times=1)
        specs.append(
            TenantSpec(
                name=name,
                system=systems[index % len(systems)],
                quota=5,
                seed=seed + index,
                backend="vector",
                backend_options=options,
                backend_faults=faults,
            )
        )
    return specs


def _tenant_workload(seed: int, index: int, quick: bool):
    """Each tenant's (distinct) workload, sized for the mode."""
    accesses = 1500 if quick else 6000
    shapes = [
        lambda: StridedCopyWorkload(
            stride_lines=16, accesses_per_thread=accesses
        ),
        lambda: MixedStrideWorkload(
            strides=(1, 8), accesses_per_stride=accesses // 2
        ),
        lambda: StridedCopyWorkload(
            stride_lines=4, accesses_per_thread=accesses
        ),
        lambda: MixedStrideWorkload(
            strides=(2, 16), accesses_per_stride=accesses // 2
        ),
    ]
    return shapes[index % len(shapes)]()


def _run_leg(
    seed: int,
    specs: list[TenantSpec],
    submit_for: list[str],
    quick: bool,
) -> ServiceReport:
    """One service run: admit every spec, submit jobs for a subset.

    Every leg admits the *same* population so the budget partition —
    part of each fingerprint — is identical across legs; only the
    submitted traffic differs.
    """
    service = MappingService(
        shared=SharedArtifacts.create(backend="vector")
    )
    for spec in specs:
        service.admit(spec)
    for index, spec in enumerate(specs):
        if spec.name in submit_for:
            service.submit(
                spec.name,
                _tenant_workload(seed, index, quick),
                profile_seed=0,
                eval_seed=1,
            )
    return service.drain()


def _controller_leg(
    seed: int, specs: list[TenantSpec], mismatches: list
) -> dict:
    """Per-tenant adaptive + RAS campaigns, solo vs concurrent.

    Controllers are parameterized by tenant context alone, so running
    two tenants' campaigns on threads must reproduce the solo
    fingerprints bit for bit.  The fast backend keeps the leg cheap;
    the property being checked is context isolation, not tier choice.
    """
    service = MappingService(shared=SharedArtifacts.create(backend="fast"))
    contexts = [service.admit(spec) for spec in specs[:2]]

    def adaptive(context):
        return context.adaptive_campaign(quick=True).fingerprint()

    def ras(context):
        return context.ras_campaign(quick=True, kinds=("row",)).fingerprint()

    solo = {}
    for context in contexts:
        solo[context.name] = {
            "adaptive": adaptive(context),
            "ras": ras(context),
        }
    tasks = [
        (context.name, kind, fn)
        for context in contexts
        for kind, fn in (("adaptive", adaptive), ("ras", ras))
    ]
    concurrent: dict = {context.name: {} for context in contexts}
    with ThreadPoolExecutor(max_workers=len(tasks)) as pool:
        futures = [
            (name, kind, pool.submit(fn, service.registry.get(name)))
            for name, kind, fn in tasks
        ]
        for name, kind, future in futures:
            concurrent[name][kind] = future.result()
    for name, kinds in concurrent.items():
        for kind, fingerprint in kinds.items():
            if fingerprint != solo[name][kind]:
                mismatches.append(
                    {
                        "check": "controller",
                        "tenant": name,
                        "controller": kind,
                    }
                )
    return {"solo": solo, "concurrent": concurrent}


def run_service_campaign(
    seed: int = 0,
    tenants: int = 3,
    quick: bool = True,
    controllers: bool = True,
) -> ServiceCampaignResult:
    """Run the full isolation selftest; see the module docstring."""
    started = time.perf_counter()
    count = max(2, tenants)
    clean_specs = _tenant_specs(seed, count)
    names = [spec.name for spec in clean_specs]
    faulty = names[0]
    result = ServiceCampaignResult(
        seed=seed,
        quick=quick,
        tenants=names,
        faulty_tenant=faulty,
    )

    # Leg 1: solo runs — same admissions, one tenant's traffic each.
    for name in names:
        report = _run_leg(seed, clean_specs, [name], quick)
        result.solo_fingerprints[name] = report.fingerprints()[name]

    # Leg 2: all tenants concurrently.
    report = _run_leg(seed, clean_specs, names, quick)
    result.concurrent_fingerprints = report.fingerprints()
    result.concurrent_health = {
        name: None
        if tenant.health is None
        else tenant.health.to_dict()
        for name, tenant in report.tenants.items()
    }
    result.plan_cache = report.plan_cache
    result.budget = report.budget
    for name in names:
        if result.concurrent_fingerprints[name] != result.solo_fingerprints[name]:
            result.mismatches.append(
                {"check": "concurrent-vs-solo", "tenant": name}
            )

    # Leg 3: concurrent again, with one tenant's backend faulted.  The
    # victim tenants must see neither their fingerprints nor their
    # health journals move.
    fault_specs = _tenant_specs(seed, count, faulty=faulty)
    report = _run_leg(seed, fault_specs, names, quick)
    result.fault_fingerprints = report.fingerprints()
    result.fault_health = {
        name: None
        if tenant.health is None
        else tenant.health.to_dict()
        for name, tenant in report.tenants.items()
    }
    for name in names:
        if name == faulty:
            continue
        if result.fault_fingerprints[name] != result.solo_fingerprints[name]:
            result.mismatches.append(
                {"check": "fault-vs-solo", "tenant": name}
            )
        if result.fault_health.get(name) != result.concurrent_health.get(name):
            result.mismatches.append(
                {"check": "fault-health", "tenant": name}
            )

    # Leg 4: per-tenant controllers, solo vs concurrent.
    if controllers:
        result.controller_fingerprints = _controller_leg(
            seed, clean_specs, result.mismatches
        )

    result.elapsed_seconds = time.perf_counter() - started
    return result
