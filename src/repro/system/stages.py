"""Pure, picklable experiment stages and their cache keys.

The experiment pipeline for one (workload, system) cell decomposes
into a small DAG of stages:

.. code-block:: text

    workload spec ──> profile ──┬──> selection ──> evaluate ──> result
                                └──> suite mix ───────┘

* **profile** — run the workload on the baseline mapping and collect
  per-variable PA sub-traces (Section 6.2's offline pass).  Depends
  only on the workload spec, the device geometry, the engine front end
  and the profiling seed — *not* on the system under test — so one
  profile serves every system, the suite-wide mix, and any later sweep.
* **selection** — turn a profile into window permutations (direct,
  K-Means, or DL-assisted).  Depends on the profile plus the system's
  clustering configuration and seeds.
* **evaluate** — allocate with the chosen mappings, generate the
  evaluation-input trace, filter through the caches, translate, and
  simulate the memory device.

Every stage is a module-level function over picklable inputs, so the
runner can execute it in a worker process, and each has a
``*_cache_key`` companion hashing exactly the inputs that determine
its output (see :mod:`repro.core.keys`).  :class:`MachineParams`
captures a :class:`~repro.system.machine.Machine`'s constructor
arguments in hashable, picklable form.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.chunks import ChunkGeometry
from repro.core.keys import stable_hash
from repro.core.selection import MappingSelection
from repro.cpu.trace import AccessTrace
from repro.hbm.config import HBMConfig, hbm2_config
from repro.ml.dlkmeans import AutoencoderConfig
from repro.profiling.profiler import WorkloadProfile, profile_trace
from repro.profiling.variables import VariableRegistry
from repro.system.config import SystemConfig
from repro.system.machine import Machine, MachineResult
from repro.workloads.base import Workload

__all__ = [
    "MachineParams",
    "build_mix_profile",
    "evaluate_cache_key",
    "evaluate_stage",
    "profile_cache_key",
    "profile_stage",
    "selection_cache_key",
    "selection_stage",
    "sweep_cache_key",
]

STAGE_VERSION = 3
"""Bump to invalidate every cached stage after a semantic change.

v2: the backend-selection redesign renamed ``MachineParams.
memory_model`` to ``backend`` — dataclass field names feed the stable
hash, so every stage key moved.

v3: guarded backend execution added ``guard``/``guard_sample``/
``guard_mode`` to :class:`MachineParams`; field names feed the stable
hash, so every stage key moved again.
"""


@dataclass(frozen=True)
class MachineParams:
    """A machine's constructor arguments, in picklable/hashable form."""

    system: SystemConfig
    hbm: HBMConfig | None = None
    geometry: ChunkGeometry | None = None
    engine: str = "cpu"
    cores: int = 4
    backend: str = "fast"
    dl_config: AutoencoderConfig | None = None
    seed: int = 0
    chunk_colours: int = 8
    guard: bool = False
    guard_sample: float | None = None
    guard_mode: str = "demote"

    @classmethod
    def from_kwargs(cls, system: SystemConfig, **machine_kwargs) -> "MachineParams":
        """Build params from ``Machine(...)`` keyword arguments.

        Accepts the deprecated ``memory_model`` spelling (the
        :class:`~repro.system.machine.Machine` shim warns on it).
        """
        if "memory_model" in machine_kwargs:
            from repro.errors import ConfigError, warn_deprecated_once

            warn_deprecated_once(
                "machine.memory_model",
                "memory_model= is deprecated; use backend=",
            )
            legacy = machine_kwargs.pop("memory_model")
            chosen = machine_kwargs.get("backend")
            if chosen is not None and chosen != legacy:
                raise ConfigError(
                    "pass either backend= or the deprecated memory_model=, "
                    "not conflicting values of both"
                )
            machine_kwargs["backend"] = legacy
        return cls(system=system, **machine_kwargs)

    def with_system(self, system: SystemConfig) -> "MachineParams":
        """The same platform bound to a different system configuration."""
        return replace(self, system=system)

    def build(self) -> Machine:
        """Instantiate the machine."""
        return Machine(
            self.system,
            hbm=self.hbm,
            geometry=self.geometry,
            engine=self.engine,
            cores=self.cores,
            backend=self.backend,
            dl_config=self.dl_config,
            seed=self.seed,
            chunk_colours=self.chunk_colours,
            guard=self.guard,
            guard_sample=self.guard_sample,
            guard_mode=self.guard_mode,
        )

    # -- key fragments -------------------------------------------------------
    def platform_key_parts(self) -> dict:
        """The system-independent parts: what profiling depends on."""
        hbm = self.hbm or hbm2_config()
        geometry = self.geometry or ChunkGeometry(total_bytes=hbm.total_bytes)
        return {
            "geometry": geometry,
            "engine": self.engine,
            "cores": self.cores,
            # The HBM bit layout shapes PA width during translation.
            "hbm": hbm,
        }

    def selection_key_parts(self) -> dict:
        """What mapping selection depends on beyond the profile."""
        system = self.system
        return {
            "clustering": system.clustering,
            "clusters": system.clusters,
            "sdam": system.sdam,
            "seed": self.seed,
            "dl_config": self.dl_config,
            "coverage": Machine.SELECTION_COVERAGE,
        }


# ---------------------------------------------------------------------------
# Stage: profile
# ---------------------------------------------------------------------------

def profile_cache_key(
    params: MachineParams, workload: Workload, input_seed: int
) -> str:
    """Content hash of everything the profiling stage depends on."""
    return stable_hash(
        "profile",
        STAGE_VERSION,
        params.platform_key_parts(),
        workload.spec_dict(),
        input_seed,
    )


def profile_stage(
    params: MachineParams, workload: Workload, input_seed: int
) -> WorkloadProfile:
    """Offline profiling pass on the baseline mapping."""
    return params.build().profile(workload, input_seed=input_seed)


# ---------------------------------------------------------------------------
# Stage: mapping selection
# ---------------------------------------------------------------------------

def selection_cache_key(
    params: MachineParams, profile_key: str
) -> str:
    """Content hash of everything mapping selection depends on."""
    return stable_hash(
        "selection",
        STAGE_VERSION,
        profile_key,
        params.selection_key_parts(),
    )


def selection_stage(
    params: MachineParams, profile: WorkloadProfile
) -> MappingSelection:
    """Choose window permutations for a profiled workload."""
    return params.build().select(profile)


# ---------------------------------------------------------------------------
# Stage: suite mix (derived, cheap — runs in the parent)
# ---------------------------------------------------------------------------

def build_mix_profile(profiles: list[WorkloadProfile]) -> WorkloadProfile:
    """Combine per-workload profiles into the suite-wide mix profile.

    The global ``BS+BSM`` policy selects one mapping from the combined
    profile of every workload in the suite (Section 7.3); this reuses
    the per-workload profile stages instead of re-profiling.
    """
    addresses = [p.addresses for profile in profiles for p in profile.profiles]
    if not addresses:
        from repro.errors import ConfigError

        raise ConfigError("suite produced no profiled addresses")
    combined = np.concatenate(addresses)
    registry = VariableRegistry()
    registry.record_allocation("mix", 0, 1 << 40)
    trace = AccessTrace(va=combined)
    return profile_trace(trace, registry, name="suite-mix", use_tags=False)


# ---------------------------------------------------------------------------
# Stage: evaluate
# ---------------------------------------------------------------------------

def evaluate_cache_key(
    params: MachineParams,
    workload: Workload,
    profile_seed: int,
    eval_seed: int,
    mix_key: str | None,
) -> str:
    """Content hash of everything the evaluation stage depends on.

    ``mix_key`` identifies the suite-mix profile a ``BS+BSM`` cell was
    given (None when the policy does not consume one); two sweeps with
    different workload mixes must not share a ``BS+BSM`` result.
    """
    return stable_hash(
        "evaluate",
        STAGE_VERSION,
        params,
        workload.spec_dict(),
        profile_seed,
        eval_seed,
        mix_key,
    )


def sweep_cache_key(
    params: MachineParams,
    workloads: list[Workload],
    systems: list[SystemConfig],
    profile_seed: int,
    eval_seed: int,
) -> str:
    """Content hash identifying a whole (workloads x systems) sweep.

    Keys the sweep *manifest* — the per-cell outcome record resume
    reads — so two sweeps share a manifest exactly when they would
    share every cell.
    """
    return stable_hash(
        "sweep",
        STAGE_VERSION,
        params,
        [workload.spec_dict() for workload in workloads],
        list(systems),
        profile_seed,
        eval_seed,
    )


def evaluate_stage(
    params: MachineParams,
    workload: Workload,
    profile_seed: int,
    eval_seed: int,
    mix_profile: WorkloadProfile | None = None,
    profile: WorkloadProfile | None = None,
    selection: MappingSelection | None = None,
) -> MachineResult:
    """Run the full evaluation pipeline for one cell."""
    return params.build().run(
        workload,
        profile_seed=profile_seed,
        eval_seed=eval_seed,
        mix_profile=mix_profile,
        profile=profile,
        selection=selection,
    )
