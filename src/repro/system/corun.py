"""Co-running applications sharing one SDAM machine.

Section 7.4 motivates the 4-cluster configurations with co-running
applications: the CMT supports 256 concurrent mappings *globally*, so
when many applications co-run, each gets only a slice of the mapping
budget and several variables must share a mapping.  This module runs
several workloads concurrently — separate address spaces, one physical
memory, one CMT — splitting the cluster budget across them and
interleaving their external traces, the multiprogrammed scenario the
prototype's globally-shared CMT is designed for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.chunks import ChunkGeometry
from repro.core.sdam import SDAMController
from repro.core.selection import select_mappings_kmeans
from repro.cpu.cpu import CPUModel
from repro.cpu.trace import AccessTrace, interleave_traces
from repro.errors import ConfigError
from repro.hbm.config import HBMConfig, hbm2_config
from repro.hbm.fastmodel import WindowModel
from repro.hbm.stats import RunStats
from repro.mem.kernel import Kernel
from repro.mem.malloc import MappingAwareAllocator
from repro.profiling.profiler import profile_trace
from repro.profiling.variables import VariableRegistry
from repro.system.machine import CPU_COMPUTE_NS_PER_ACCESS
from repro.workloads.base import Workload

__all__ = ["CorunResult", "CorunMachine"]


@dataclass(frozen=True)
class CorunResult:
    """Outcome of one multiprogrammed run."""

    stats: RunStats
    compute_ns: float
    live_mappings: int
    workload_names: list[str]

    @property
    def time_ns(self) -> float:
        """End-to-end time: memory makespan plus compute."""
        return self.stats.makespan_ns + self.compute_ns


class CorunMachine:
    """Several workloads, one memory system, one shared CMT."""

    def __init__(
        self,
        use_sdam: bool = True,
        clusters_per_app: int = 4,
        hbm: HBMConfig | None = None,
        geometry: ChunkGeometry | None = None,
        cores: int = 4,
        max_mappings: int = 256,
        seed: int = 0,
    ):
        if clusters_per_app < 1:
            raise ConfigError("need at least one cluster per application")
        self.use_sdam = use_sdam
        self.clusters_per_app = clusters_per_app
        self.hbm = hbm or hbm2_config()
        self.geometry = geometry or ChunkGeometry(
            total_bytes=self.hbm.total_bytes
        )
        self.cores = cores
        self.max_mappings = max_mappings
        self.seed = seed
        self.layout = self.hbm.layout()

    def _profile_one(self, workload: Workload, seed: int):
        """Standalone profiling pass for one application."""
        kernel = Kernel(self.geometry, sdam=None)
        space = kernel.spawn()
        malloc = MappingAwareAllocator(kernel, space)
        registry = VariableRegistry()
        base = {}
        for spec in workload.variables():
            va = malloc.malloc(spec.size_bytes, tag=spec.name)
            registry.record_allocation(spec.name, va, spec.size_bytes)
            base[spec.name] = va
        engine = CPUModel(cores=self.cores)
        external = engine.external_trace(workload.trace(base, seed))
        pa = space.translate_trace(external.trace.va)
        trace = AccessTrace(
            va=pa,
            is_write=external.trace.is_write,
            variable=external.trace.variable,
        )
        return profile_trace(trace, registry, name=workload.name)

    def run(
        self,
        workloads: list[Workload],
        profile_seed: int = 0,
        eval_seed: int = 1,
    ) -> CorunResult:
        """Profile each app, share the CMT, run everything together."""
        if not workloads:
            raise ConfigError("no workloads to co-run")
        sdam = (
            SDAMController(self.geometry, max_mappings=self.max_mappings)
            if self.use_sdam
            else None
        )
        kernel = Kernel(self.geometry, sdam=sdam)
        engine = CPUModel(cores=self.cores)
        all_external: list[AccessTrace] = []
        program_accesses = 0
        compute_ns = 0.0
        for app_index, workload in enumerate(workloads):
            mapping_of_variable: dict[int, int] = {}
            if self.use_sdam:
                profile = self._profile_one(workload, profile_seed)
                selection = select_mappings_kmeans(
                    profile,
                    self.clusters_per_app,
                    self.layout,
                    self.geometry,
                    seed=self.seed + app_index,
                    coverage=0.95,
                )
                cluster_to_mapping = {
                    index: kernel.add_addr_map(perm)
                    for index, perm in enumerate(selection.window_perms)
                }
                mapping_of_variable = {
                    vid: cluster_to_mapping[cluster]
                    for vid, cluster in selection.variable_cluster.items()
                }
            space = kernel.spawn()
            malloc = MappingAwareAllocator(kernel, space)
            base = {}
            for vid, spec in enumerate(workload.variables()):
                base[spec.name] = malloc.malloc(
                    spec.size_bytes,
                    mapping_id=mapping_of_variable.get(vid, 0),
                    tag=spec.name,
                )
            external = engine.external_trace(
                workload.trace(base, eval_seed)
            )
            program_accesses += external.program_accesses
            intensity = getattr(workload, "compute_intensity", 1.0)
            compute_ns += (
                external.program_accesses
                * CPU_COMPUTE_NS_PER_ACCESS
                * intensity
            )
            ha = kernel.translate_to_hardware(space, external.trace.va)
            all_external.append(
                AccessTrace(
                    va=ha,
                    is_write=external.trace.is_write,
                    variable=external.trace.variable,
                )
            )
        combined = interleave_traces(all_external, chunk=8)
        model = WindowModel(
            self.hbm, max_inflight=engine.max_inflight * len(workloads)
        )
        stats = model.simulate(combined.va)
        live = sdam.cmt.live_mappings if sdam is not None else 1
        return CorunResult(
            stats=stats,
            compute_ns=compute_ns,
            live_mappings=live,
            workload_names=[w.name for w in workloads],
        )
