"""Co-running applications sharing one SDAM machine.

Section 7.4 motivates the 4-cluster configurations with co-running
applications: the CMT supports 256 concurrent mappings *globally*, so
when many applications co-run, each gets only a slice of the mapping
budget and several variables must share a mapping.  This module runs
several workloads concurrently — separate address spaces, one physical
memory, one CMT — splitting the cluster budget across them and
interleaving their external traces, the multiprogrammed scenario the
prototype's globally-shared CMT is designed for.

Re-expressed on the tenant-scoped core: each application is a
:class:`~repro.service.tenant.TenantContext` built over one set of
:class:`~repro.service.tenant.SharedArtifacts`, its slice of the
mapping budget is a :class:`~repro.core.cmt.MappingNamespace` carved by
:func:`~repro.core.cmt.partition_budget`, and every ``add_addr_map`` is
charged against that namespace — the budget split is now *enforced*,
not just hoped for.  Unlike the fully-isolated service
(:mod:`repro.service.service`), the apps here deliberately share one
kernel and one CMT, reproducing the prototype's globally-shared table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.chunks import ChunkGeometry
from repro.core.cmt import partition_budget
from repro.core.sdam import SDAMController
from repro.cpu.cpu import CPUModel
from repro.cpu.trace import AccessTrace, interleave_traces
from repro.errors import ConfigError
from repro.hbm.config import HBMConfig
from repro.hbm.fastmodel import WindowModel
from repro.hbm.stats import RunStats
from repro.mem.kernel import Kernel
from repro.mem.malloc import MappingAwareAllocator
from repro.service.tenant import (
    CPU_COMPUTE_NS_PER_ACCESS,
    SharedArtifacts,
    TenantContext,
)
from repro.system.config import SystemConfig
from repro.workloads.base import Workload

__all__ = ["CorunResult", "CorunMachine"]


@dataclass(frozen=True)
class CorunResult:
    """Outcome of one multiprogrammed run."""

    stats: RunStats
    compute_ns: float
    live_mappings: int
    workload_names: list[str]

    @property
    def time_ns(self) -> float:
        """End-to-end time: memory makespan plus compute."""
        return self.stats.makespan_ns + self.compute_ns


class CorunMachine:
    """Several workloads, one memory system, one shared CMT."""

    def __init__(
        self,
        use_sdam: bool = True,
        clusters_per_app: int = 4,
        hbm: HBMConfig | None = None,
        geometry: ChunkGeometry | None = None,
        cores: int = 4,
        max_mappings: int = 256,
        seed: int = 0,
    ):
        if clusters_per_app < 1:
            raise ConfigError("need at least one cluster per application")
        self.use_sdam = use_sdam
        self.clusters_per_app = clusters_per_app
        self.shared = SharedArtifacts.create(hbm=hbm, geometry=geometry)
        self.hbm = self.shared.hbm
        self.geometry = self.shared.geometry
        self.cores = cores
        self.max_mappings = max_mappings
        self.seed = seed
        self.layout = self.shared.layout()

    def _app_context(self, app_index: int, workload: Workload) -> TenantContext:
        """A tenant context for one co-running application.

        Shares the machine's artifacts; profiling and K-Means selection
        run through the tenant pipeline with the app-specific seed the
        pre-refactor code used.
        """
        system = SystemConfig(
            key=f"corun_app{app_index}",
            label=f"corun:{workload.name}",
            sdam=True,
            policy="default",
            clustering="kmeans",
            clusters=self.clusters_per_app,
        )
        return TenantContext(
            name=f"app{app_index}",
            system=system,
            shared=self.shared,
            cores=self.cores,
            seed=self.seed + app_index,
        )

    def run(
        self,
        workloads: list[Workload],
        profile_seed: int = 0,
        eval_seed: int = 1,
    ) -> CorunResult:
        """Profile each app, share the CMT, run everything together."""
        if not workloads:
            raise ConfigError("no workloads to co-run")
        sdam = (
            SDAMController(self.geometry, max_mappings=self.max_mappings)
            if self.use_sdam
            else None
        )
        if sdam is not None:
            namespaces = partition_budget(
                {f"app{i}": self.clusters_per_app for i in range(len(workloads))},
                max_mappings=self.max_mappings,
            )
            for namespace in namespaces.values():
                sdam.register_namespace(namespace)
        kernel = Kernel(self.geometry, sdam=sdam)
        engine = CPUModel(cores=self.cores)
        all_external: list[AccessTrace] = []
        program_accesses = 0
        compute_ns = 0.0
        for app_index, workload in enumerate(workloads):
            mapping_of_variable: dict[int, int] = {}
            if self.use_sdam:
                context = self._app_context(app_index, workload)
                selection = context.select(
                    context.profile(workload, input_seed=profile_seed)
                )
                cluster_to_mapping = {
                    index: kernel.add_addr_map(
                        perm, namespace=f"app{app_index}"
                    )
                    for index, perm in enumerate(selection.window_perms)
                }
                mapping_of_variable = {
                    vid: cluster_to_mapping[cluster]
                    for vid, cluster in selection.variable_cluster.items()
                }
            space = kernel.spawn()
            malloc = MappingAwareAllocator(kernel, space)
            base = {}
            for vid, spec in enumerate(workload.variables()):
                base[spec.name] = malloc.malloc(
                    spec.size_bytes,
                    mapping_id=mapping_of_variable.get(vid, 0),
                    tag=spec.name,
                )
            external = engine.external_trace(
                workload.trace(base, eval_seed)
            )
            program_accesses += external.program_accesses
            intensity = getattr(workload, "compute_intensity", 1.0)
            compute_ns += (
                external.program_accesses
                * CPU_COMPUTE_NS_PER_ACCESS
                * intensity
            )
            ha = kernel.translate_to_hardware(space, external.trace.va)
            all_external.append(
                AccessTrace(
                    va=ha,
                    is_write=external.trace.is_write,
                    variable=external.trace.variable,
                )
            )
        combined = interleave_traces(all_external, chunk=8)
        model = WindowModel(
            self.hbm, max_inflight=engine.max_inflight * len(workloads)
        )
        stats = model.simulate(combined.va)
        live = sdam.cmt.live_mappings if sdam is not None else 1
        return CorunResult(
            stats=stats,
            compute_ns=compute_ns,
            live_mappings=live,
            workload_names=[w.name for w in workloads],
        )
