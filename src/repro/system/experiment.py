"""Experiment drivers: speedup sweeps over workloads x systems.

Implements the paper's evaluation methodology: profile with one input,
evaluate with another (cross-validation), use the suite-wide mix profile
for the global ``BS+BSM`` baseline, and report per-workload speedups
over ``BS+DM`` plus geometric means (Figs. 12, 14, 15).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cpu.trace import AccessTrace
from repro.errors import ConfigError
from repro.profiling.profiler import WorkloadProfile, profile_trace
from repro.system.config import SystemConfig, standard_systems
from repro.system.machine import Machine, MachineResult
from repro.workloads.base import Workload

__all__ = ["SpeedupTable", "run_suite", "frequency_sweep", "core_sweep"]


@dataclass
class SpeedupTable:
    """Results of a workload x system sweep, keyed by labels."""

    baseline_label: str
    results: dict[str, dict[str, MachineResult]] = field(default_factory=dict)

    def add(self, result: MachineResult) -> None:
        """Attach a chunk to this group."""
        self.results.setdefault(result.workload, {})[result.system] = result

    def workloads(self) -> list[str]:
        """Workload names present in the table."""
        return list(self.results)

    def systems(self) -> list[str]:
        """System labels present in the table."""
        first = next(iter(self.results.values()), {})
        return list(first)

    def speedup(self, workload: str, system: str) -> float:
        """Speedup of one system on one workload vs the baseline."""
        row = self.results[workload]
        baseline = row[self.baseline_label].time_ns
        return baseline / row[system].time_ns

    def speedups(self, system: str) -> dict[str, float]:
        """Per-workload speedups for one system."""
        return {
            workload: self.speedup(workload, system)
            for workload in self.results
            if system in self.results[workload]
        }

    def geomean(self, system: str) -> float:
        """Geometric-mean speedup of a system across workloads."""
        values = list(self.speedups(system).values())
        if not values:
            raise ConfigError(f"no results for system {system!r}")
        return float(np.exp(np.mean(np.log(values))))

    def to_rows(self) -> list[dict[str, float | str]]:
        """Table rows (one dict per workload) for reporting."""
        rows = []
        for workload in self.results:
            row: dict[str, float | str] = {"workload": workload}
            for system in self.results[workload]:
                row[system] = self.speedup(workload, system)
            rows.append(row)
        return rows


def _suite_mix_profile(
    machine: Machine, workloads: list[Workload], profile_seed: int
) -> WorkloadProfile:
    """The combined profile of every workload (the BS+BSM policy input)."""
    addresses = []
    for workload in workloads:
        profile = machine.profile(workload, input_seed=profile_seed)
        addresses.extend(p.addresses for p in profile.profiles)
    if not addresses:
        raise ConfigError("suite produced no profiled addresses")
    combined = np.concatenate(addresses)
    from repro.profiling.variables import VariableRegistry

    registry = VariableRegistry()
    registry.record_allocation("mix", 0, 1 << 40)
    trace = AccessTrace(va=combined)
    return profile_trace(trace, registry, name="suite-mix", use_tags=False)


def run_suite(
    workloads: list[Workload],
    systems: list[SystemConfig] | None = None,
    profile_seed: int = 0,
    eval_seed: int = 1,
    **machine_kwargs,
) -> SpeedupTable:
    """Run every workload under every system; speedups vs ``BS+DM``."""
    systems = systems or standard_systems()
    if not workloads:
        raise ConfigError("no workloads given")
    baseline_label = systems[0].label
    table = SpeedupTable(baseline_label=baseline_label)
    mix_profile: WorkloadProfile | None = None
    if any(s.policy == "bsm" and not s.sdam for s in systems):
        probe_machine = Machine(systems[0], **machine_kwargs)
        mix_profile = _suite_mix_profile(probe_machine, workloads, profile_seed)
    for system in systems:
        machine = Machine(system, **machine_kwargs)
        for workload in workloads:
            result = machine.run(
                workload,
                profile_seed=profile_seed,
                eval_seed=eval_seed,
                mix_profile=mix_profile,
            )
            table.add(result)
    return table


def frequency_sweep(
    workloads: list[Workload],
    system: SystemConfig,
    baseline: SystemConfig,
    scales: tuple[float, ...] = (1.0, 0.5, 0.25),
    **machine_kwargs,
) -> dict[float, float]:
    """Fig. 14: geomean speedup as the HBM slows down."""
    from repro.hbm.config import hbm2_config

    out: dict[float, float] = {}
    for scale in scales:
        hbm = hbm2_config().scaled(scale)
        table = run_suite(
            workloads, systems=[baseline, system], hbm=hbm, **machine_kwargs
        )
        out[scale] = table.geomean(system.label)
    return out


def core_sweep(
    workloads: list[Workload],
    system: SystemConfig,
    baseline: SystemConfig,
    core_counts: tuple[int, ...] = (1, 2, 4),
    **machine_kwargs,
) -> dict[int, float]:
    """Fig. 14 companion: geomean speedup vs core count."""
    out: dict[int, float] = {}
    for cores in core_counts:
        table = run_suite(
            workloads, systems=[baseline, system], cores=cores, **machine_kwargs
        )
        out[cores] = table.geomean(system.label)
    return out
