"""Experiment drivers: speedup sweeps over workloads x systems.

Implements the paper's evaluation methodology: profile with one input,
evaluate with another (cross-validation), use the suite-wide mix profile
for the global ``BS+BSM`` baseline, and report per-workload speedups
over ``BS+DM`` plus geometric means (Figs. 12, 14, 15).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.system.config import SystemConfig
from repro.system.machine import MachineResult
from repro.workloads.base import Workload

__all__ = ["SpeedupTable", "run_suite", "frequency_sweep", "core_sweep"]


@dataclass
class SpeedupTable:
    """Results of a workload x system sweep, keyed by labels."""

    baseline_label: str
    results: dict[str, dict[str, MachineResult]] = field(default_factory=dict)

    def add(self, result: MachineResult) -> None:
        """Attach a chunk to this group."""
        self.results.setdefault(result.workload, {})[result.system] = result

    def workloads(self) -> list[str]:
        """Workload names present in the table."""
        return list(self.results)

    def systems(self) -> list[str]:
        """System labels present in the table."""
        first = next(iter(self.results.values()), {})
        return list(first)

    def speedup(self, workload: str, system: str) -> float:
        """Speedup of one system on one workload vs the baseline."""
        row = self.results[workload]
        baseline = row[self.baseline_label].time_ns
        return baseline / row[system].time_ns

    def speedups(self, system: str) -> dict[str, float]:
        """Per-workload speedups for one system."""
        return {
            workload: self.speedup(workload, system)
            for workload in self.results
            if system in self.results[workload]
        }

    def geomean(self, system: str) -> float:
        """Geometric-mean speedup of a system across workloads."""
        values = list(self.speedups(system).values())
        if not values:
            raise ConfigError(f"no results for system {system!r}")
        return float(np.exp(np.mean(np.log(values))))

    def to_rows(self) -> list[dict[str, float | str]]:
        """Table rows (one dict per workload) for reporting."""
        rows = []
        for workload in self.results:
            row: dict[str, float | str] = {"workload": workload}
            for system in self.results[workload]:
                row[system] = self.speedup(workload, system)
            rows.append(row)
        return rows

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-serialisable form; :meth:`from_dict` round-trips it."""
        return {
            "baseline_label": self.baseline_label,
            "results": {
                workload: {
                    system: result.to_dict()
                    for system, result in row.items()
                }
                for workload, row in self.results.items()
            },
        }

    def to_json(self, **json_kwargs) -> str:
        """JSON text of :meth:`to_dict`."""
        import json

        return json.dumps(self.to_dict(), **json_kwargs)

    def fingerprint(self) -> dict:
        """The deterministic content: per-result fingerprints only.

        Wall-clock timing fields are zeroed, so two sweeps of the same
        cells compare equal however they were executed (serially, over
        a process pool, or from the stage cache).
        """
        return {
            "baseline_label": self.baseline_label,
            "results": {
                workload: {
                    system: result.fingerprint()
                    for system, result in row.items()
                }
                for workload, row in self.results.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpeedupTable":
        """Rebuild a table written by :meth:`to_dict`."""
        table = cls(baseline_label=data["baseline_label"])
        table.results = {
            workload: {
                system: MachineResult.from_dict(result)
                for system, result in row.items()
            }
            for workload, row in data["results"].items()
        }
        return table


def run_suite(
    workloads: list[Workload],
    systems: list[SystemConfig] | None = None,
    profile_seed: int = 0,
    eval_seed: int = 1,
    cache_dir: str | None = None,
    max_workers: int = 0,
    cell_timeout: float | None = None,
    **machine_kwargs,
) -> SpeedupTable:
    """Run every workload under every system; speedups vs ``BS+DM``.

    A thin wrapper over :class:`repro.system.runner.ExperimentRunner`:
    pass ``cache_dir`` to memoise stage outputs on disk and
    ``max_workers`` to fan the cells out over worker processes.  Any
    failing cell raises (use the runner directly for per-cell error
    capture and the structured stage metrics).
    """
    from repro.system.runner import ExperimentRunner

    runner = ExperimentRunner(
        cache_dir=cache_dir,
        max_workers=max_workers,
        cell_timeout=cell_timeout,
    )
    suite = runner.run_suite(
        workloads,
        systems=systems,
        profile_seed=profile_seed,
        eval_seed=eval_seed,
        **machine_kwargs,
    )
    return suite.raise_errors().table


def frequency_sweep(
    workloads: list[Workload],
    system: SystemConfig,
    baseline: SystemConfig,
    scales: tuple[float, ...] = (1.0, 0.5, 0.25),
    **machine_kwargs,
) -> dict[float, float]:
    """Fig. 14: geomean speedup as the HBM slows down.

    ``cache_dir``/``max_workers`` pass through to :func:`run_suite`, so
    the per-scale sweeps share one stage cache.
    """
    from repro.hbm.config import hbm2_config

    out: dict[float, float] = {}
    for scale in scales:
        hbm = hbm2_config().scaled(scale)
        table = run_suite(
            workloads, systems=[baseline, system], hbm=hbm, **machine_kwargs
        )
        out[scale] = table.geomean(system.label)
    return out


def core_sweep(
    workloads: list[Workload],
    system: SystemConfig,
    baseline: SystemConfig,
    core_counts: tuple[int, ...] = (1, 2, 4),
    **machine_kwargs,
) -> dict[int, float]:
    """Fig. 14 companion: geomean speedup vs core count.

    ``cache_dir``/``max_workers`` pass through to :func:`run_suite`, so
    the per-count sweeps share one stage cache.
    """
    out: dict[int, float] = {}
    for cores in core_counts:
        table = run_suite(
            workloads, systems=[baseline, system], cores=cores, **machine_kwargs
        )
        out[cores] = table.geomean(system.label)
    return out
