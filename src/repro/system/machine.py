"""The full machine: allocators + kernel + CPU/accelerator + HBM.

``Machine.run(workload)`` executes the paper's whole pipeline for one
system configuration:

1. *Profile* (if the system needs it): run the workload on the baseline
   mapping with the profiling input, collect the external PA trace per
   variable (Section 6.2's offline pass).
2. *Select mappings*: per-application bit-shuffle, K-Means clusters or
   DL-assisted clusters; or a global BSM/HM mapping for the
   hardware-only baselines.
3. *Evaluate*: fresh kernel, ``add_addr_map`` + mapping-aware malloc
   for every variable, generate the evaluation-input trace, filter it
   through the cache hierarchy, translate VA->PA->HA, and simulate the
   HBM device.

The returned :class:`MachineResult` carries the memory statistics plus
an end-to-end time model (memory makespan + a compute term proportional
to program accesses) from which experiment-level speedups are computed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.chunks import ChunkGeometry
from repro.core.hashing import default_hash_mapping
from repro.core.mapping import identity_mapping
from repro.core.sdam import GlobalMappingTranslator, SDAMController
from repro.core.selection import (
    MappingSelection,
    select_application_mapping,
    select_mappings_dl,
    select_mappings_kmeans,
)
from repro.core.bitshuffle import select_global_mapping
from repro.cpu.accelerator import AcceleratorModel
from repro.cpu.cpu import CPUModel, ExternalTraceResult
from repro.cpu.trace import AccessTrace
from repro.errors import ConfigError, warn_deprecated_once
from repro.hbm.backend import MemoryBackend, available_backends, create_backend
from repro.hbm.config import HBMConfig, hbm2_config
from repro.hbm.decode import (
    decode_trace,
    decode_translated,
    iter_decoded_chunks,
)
from repro.hbm.guard import DEFAULT_GUARD_SAMPLE, GuardedBackend, TierFactory
from repro.hbm.stats import BackendHealth, RunStats
from repro.mem.kernel import Kernel
from repro.mem.malloc import MappingAwareAllocator
from repro.ml.dlkmeans import AutoencoderConfig
from repro.profiling.bfrv import bit_flip_rate_vector
from repro.profiling.profiler import WorkloadProfile, profile_trace
from repro.profiling.variables import VariableRegistry
from repro.system.config import SystemConfig
from repro.workloads.base import Workload

__all__ = ["ExternalSummary", "Machine", "MachineResult"]

# End-to-end time model: compute overlaps poorly with a saturated memory
# system, so total time = memory makespan + accesses * per-access work.
CPU_COMPUTE_NS_PER_ACCESS = 1.0  # per-access pipeline work, BOOM-scaled
ACCEL_COMPUTE_NS_PER_ACCESS = 0.15  # deep custom pipelines


@dataclass(frozen=True)
class ExternalSummary:
    """Cache-behaviour numbers of a run, without the trace arrays.

    Serialized results keep the external-trace *statistics* but not the
    address stream itself; this stand-in exposes the same aggregate
    interface as :class:`~repro.cpu.cpu.ExternalTraceResult`.
    """

    l1_hit_rate: float
    llc_hit_rate: float
    program_accesses: int
    external_accesses: int

    @property
    def miss_fraction(self) -> float:
        """External accesses per program access."""
        if self.program_accesses == 0:
            return 0.0
        return self.external_accesses / self.program_accesses


@dataclass
class MachineResult:
    """Everything one pipeline run produced."""

    workload: str
    system: str
    stats: RunStats
    external: ExternalTraceResult | ExternalSummary | None
    selection: MappingSelection | None
    compute_ns: float
    profiling_seconds: float = 0.0
    backend_health: BackendHealth | None = None

    @property
    def time_ns(self) -> float:
        """End-to-end time: memory makespan plus compute."""
        return self.stats.makespan_ns + self.compute_ns

    @property
    def memory_time_ns(self) -> float:
        """Memory-system makespan only."""
        return self.stats.makespan_ns

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.workload:>12} on {self.system:<16} "
            f"{self.stats.throughput_gbps:7.1f} GB/s  "
            f"CLP {self.stats.clp_utilization:.2f}  "
            f"time {self.time_ns / 1e3:.1f} us"
        )

    # -- serialization -------------------------------------------------------
    def external_summary(self) -> ExternalSummary | None:
        """The external-trace statistics, trace arrays dropped."""
        if self.external is None:
            return None
        if isinstance(self.external, ExternalSummary):
            return self.external
        return ExternalSummary(
            l1_hit_rate=float(self.external.l1_hit_rate),
            llc_hit_rate=float(self.external.llc_hit_rate),
            program_accesses=int(self.external.program_accesses),
            external_accesses=len(self.external.trace),
        )

    def to_dict(self) -> dict:
        """A JSON-serialisable form.

        Bulk arrays (the external address trace, the selection's
        window permutations) are reduced to their statistics:
        everything speedup computation and reporting consume survives
        the round trip, so cached and fresh results are
        interchangeable.
        """
        external = self.external_summary()
        selection = None
        if self.selection is not None:
            selection = {
                "method": self.selection.method,
                "k": int(self.selection.k),
                "num_mappings": len(self.selection.window_perms)
                or int(self.selection.details.get("num_mappings", 0)),
                "variable_cluster": {
                    str(var): int(cluster)
                    for var, cluster in self.selection.variable_cluster.items()
                },
                "elapsed_seconds": float(self.selection.elapsed_seconds),
            }
        data = {
            "workload": self.workload,
            "system": self.system,
            "stats": self.stats.to_dict(),
            "external": None
            if external is None
            else {
                "l1_hit_rate": external.l1_hit_rate,
                "llc_hit_rate": external.llc_hit_rate,
                "program_accesses": external.program_accesses,
                "external_accesses": external.external_accesses,
            },
            "selection": selection,
            "compute_ns": self.compute_ns,
            "profiling_seconds": self.profiling_seconds,
        }
        # Only present for guarded/supervised runs: keeps the dict (and
        # every pre-existing cache entry and fingerprint) unchanged for
        # plain runs.
        if self.backend_health is not None:
            data["backend_health"] = self.backend_health.to_dict()
        return data

    def to_json(self, **json_kwargs) -> str:
        """JSON text of :meth:`to_dict`."""
        import json

        return json.dumps(self.to_dict(), **json_kwargs)

    def fingerprint(self) -> dict:
        """:meth:`to_dict` with wall-clock timing fields zeroed.

        Two runs of the same cell are bit-identical on everything but
        the host's measured profiling time; this is the deterministic
        content, for equivalence checks across serial, parallel and
        cached execution.
        """
        data = self.to_dict()
        data["profiling_seconds"] = 0.0
        if data["selection"] is not None:
            data["selection"]["elapsed_seconds"] = 0.0
        # Health describes *how* the result was obtained (pool
        # availability, retries) and varies with the host environment;
        # the deterministic content is the result itself.
        data.pop("backend_health", None)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "MachineResult":
        """Rebuild a result written by :meth:`to_dict`.

        The reconstructed ``selection`` carries the clustering summary
        (method, k, variable->cluster) but no window permutations, and
        ``external`` comes back as an :class:`ExternalSummary`.
        """
        external = None
        if data.get("external") is not None:
            ext = data["external"]
            external = ExternalSummary(
                l1_hit_rate=float(ext["l1_hit_rate"]),
                llc_hit_rate=float(ext["llc_hit_rate"]),
                program_accesses=int(ext["program_accesses"]),
                external_accesses=int(ext["external_accesses"]),
            )
        selection = None
        if data.get("selection") is not None:
            sel = data["selection"]
            selection = MappingSelection(
                method=sel["method"],
                k=int(sel["k"]),
                window_perms=[],
                variable_cluster={
                    int(var): int(cluster)
                    for var, cluster in sel["variable_cluster"].items()
                },
                elapsed_seconds=float(sel["elapsed_seconds"]),
                details={"num_mappings": int(sel["num_mappings"])},
            )
        health = None
        if data.get("backend_health") is not None:
            health = BackendHealth.from_dict(data["backend_health"])
        return cls(
            workload=data["workload"],
            system=data["system"],
            stats=RunStats.from_dict(data["stats"]),
            external=external,
            selection=selection,
            compute_ns=float(data["compute_ns"]),
            profiling_seconds=float(data.get("profiling_seconds", 0.0)),
            backend_health=health,
        )


class Machine:
    """One simulated platform bound to a system configuration."""

    def __init__(
        self,
        system: SystemConfig,
        hbm: HBMConfig | None = None,
        geometry: ChunkGeometry | None = None,
        engine: str = "cpu",
        cores: int = 4,
        backend: str | None = None,
        backend_options: dict | None = None,
        chunk_accesses: int | None = None,
        dl_config: AutoencoderConfig | None = None,
        seed: int = 0,
        chunk_colours: int = 8,
        debug_ha: bool = False,
        memory_model: str | None = None,
        guard: bool = False,
        guard_sample: float | None = None,
        guard_mode: str = "demote",
        backend_faults=None,
    ):
        self.system = system
        self.hbm = hbm or hbm2_config()
        self.geometry = geometry or ChunkGeometry(total_bytes=self.hbm.total_bytes)
        if engine == "cpu":
            self.engine = CPUModel(cores=cores)
            self.compute_ns_per_access = CPU_COMPUTE_NS_PER_ACCESS
        elif engine == "accelerator":
            self.engine = AcceleratorModel()
            self.compute_ns_per_access = ACCEL_COMPUTE_NS_PER_ACCESS
        else:
            raise ConfigError(f"unknown engine {engine!r}")
        if memory_model is not None:
            # Pre-redesign spelling of the backend selector.
            warn_deprecated_once(
                "machine.memory_model",
                "Machine(memory_model=...) is deprecated; "
                "use Machine(backend=...)",
            )
            if backend is not None and backend != memory_model:
                raise ConfigError(
                    "pass either backend= or the deprecated memory_model=, "
                    "not conflicting values of both"
                )
            backend = memory_model
        if backend is None:
            backend = "fast"
        if backend not in available_backends():
            raise ConfigError(
                f"unknown memory model {backend!r}; "
                f"available: {', '.join(available_backends())}"
            )
        self.backend = backend
        self.backend_options = dict(backend_options or {})
        if guard_mode not in ("demote", "raise"):
            raise ConfigError(
                f"unknown guard mode {guard_mode!r}; "
                "expected 'demote' or 'raise'"
            )
        if guard_sample is not None and not (0.0 < guard_sample <= 1.0):
            raise ConfigError("guard_sample must be in (0, 1]")
        self.guard = bool(guard)
        self.guard_sample = guard_sample
        self.guard_mode = guard_mode
        self.backend_faults = backend_faults
        self.chunk_accesses = chunk_accesses
        self.dl_config = dl_config
        self.seed = seed
        self.chunk_colours = chunk_colours
        self.debug_ha = debug_ha
        self.layout = self.hbm.layout()

    @property
    def memory_model(self) -> str:
        """Deprecated alias for :attr:`backend`."""
        return self.backend

    # -- building blocks -----------------------------------------------------
    #: VectorModel execution knobs that must not leak into the guard's
    #: single-process replay instances (they change *how* a result is
    #: computed, never *what* it is).
    _EXECUTION_OPTIONS = ("workers", "shard_timeout", "retry", "faults")

    def _memory(self) -> MemoryBackend:
        options = dict(self.backend_options)
        if (
            self.backend == "vector"
            and self.backend_faults is not None
            and "faults" not in options
        ):
            options["faults"] = self.backend_faults
        backend = create_backend(
            self.backend,
            self.hbm,
            max_inflight=self.engine.max_inflight,
            **options,
        )
        if not self.guard or self.backend == "event":
            return backend
        replay_options = {
            key: value
            for key, value in self.backend_options.items()
            if key not in self._EXECUTION_OPTIONS
        }
        max_inflight = self.engine.max_inflight
        return GuardedBackend(
            backend,
            primary_factory=TierFactory(
                self.backend,
                self.hbm,
                max_inflight=max_inflight,
                **replay_options,
            ),
            reference_factory=TierFactory(
                "event", self.hbm, max_inflight=max_inflight
            ),
            primary_name=self.backend,
            reference_name="event",
            sample=(
                self.guard_sample
                if self.guard_sample is not None
                else DEFAULT_GUARD_SAMPLE
            ),
            mode=self.guard_mode,
            faults=self.backend_faults,
            seed=self.seed,
        )

    def _allocate(
        self,
        kernel: Kernel,
        workload: Workload,
        mapping_of_variable: dict[int, int],
    ):
        space = kernel.spawn()
        allocator = MappingAwareAllocator(kernel, space)
        registry = VariableRegistry()
        base: dict[str, int] = {}
        for variable_id, spec in enumerate(workload.variables()):
            mapping_id = mapping_of_variable.get(variable_id, 0)
            va = allocator.malloc(
                spec.size_bytes, mapping_id=mapping_id, tag=spec.name
            )
            registry.record_allocation(spec.name, va, spec.size_bytes)
            base[spec.name] = va
        return space, allocator, base, registry

    def _external(self, workload: Workload, base: dict[str, int], seed: int):
        thread_traces = workload.trace(base, input_seed=seed)
        return self.engine.external_trace(thread_traces)

    # -- profiling pass --------------------------------------------------------
    def profile(self, workload: Workload, input_seed: int = 0) -> WorkloadProfile:
        """Offline profiling on the baseline system (Section 6.2)."""
        kernel = Kernel(self.geometry, sdam=None)
        space, _allocator, base, registry = self._allocate(kernel, workload, {})
        external = self._external(workload, base, input_seed)
        pa = space.translate_trace(external.trace.va)
        pa_trace = AccessTrace(
            va=pa,
            is_write=external.trace.is_write,
            variable=external.trace.variable,
        )
        return profile_trace(pa_trace, registry, name=workload.name)

    # -- mapping selection -------------------------------------------------------
    # Major-variable coverage for clustered selection.  The paper's 80%
    # rule identifies majors in real applications with thousands of
    # variables; our Table-1 models *are* the majors by construction,
    # so selection covers (nearly) all of them and leaves only the
    # modelled minor tail on the default mapping.
    SELECTION_COVERAGE = 0.95

    def select(self, profile: WorkloadProfile) -> MappingSelection:
        system = self.system
        if system.clustering == "kmeans":
            return select_mappings_kmeans(
                profile,
                system.clusters,
                self.layout,
                self.geometry,
                seed=self.seed,
                coverage=self.SELECTION_COVERAGE,
            )
        if system.clustering == "dl":
            return select_mappings_dl(
                profile,
                system.clusters,
                self.layout,
                self.geometry,
                config=self.dl_config,
                coverage=self.SELECTION_COVERAGE,
            )
        return select_application_mapping(profile, self.layout, self.geometry)

    def _global_translator(
        self, mix_profile: WorkloadProfile | None
    ) -> GlobalMappingTranslator:
        if self.system.policy == "default":
            return GlobalMappingTranslator(identity_mapping(self.layout.width))
        if self.system.policy == "hash":
            return GlobalMappingTranslator(default_hash_mapping(self.layout))
        # Global bit-shuffle from the workload-mix profile.
        if mix_profile is None or not mix_profile.profiles:
            return GlobalMappingTranslator(identity_mapping(self.layout.width))
        addresses = np.concatenate(
            [p.addresses for p in mix_profile.profiles]
        )
        rates = bit_flip_rate_vector(addresses, self.layout.width)
        return GlobalMappingTranslator(
            select_global_mapping(rates, self.layout)
        )

    # -- the full pipeline ----------------------------------------------------
    def run(
        self,
        workload: Workload,
        profile_seed: int = 0,
        eval_seed: int = 1,
        mix_profile: WorkloadProfile | None = None,
        profile: WorkloadProfile | None = None,
        selection: MappingSelection | None = None,
    ) -> MachineResult:
        """Profile (if needed), select mappings, evaluate, simulate.

        ``mix_profile`` overrides the profile used by the global
        ``BS+BSM`` policy — the experiment driver passes the suite-wide
        mix, matching the paper's methodology.  ``profile`` and
        ``selection`` inject precomputed stage outputs (the experiment
        runner's cache); when given, the corresponding pipeline stage
        is skipped.
        """
        system = self.system
        profiling_seconds = 0.0

        if system.sdam:
            if selection is None:
                if profile is None:
                    profile = self.profile(workload, input_seed=profile_seed)
                selection = self.select(profile)
            profiling_seconds = selection.elapsed_seconds
            sdam = SDAMController(self.geometry)
            kernel = Kernel(
                self.geometry, sdam=sdam, chunk_colours=self.chunk_colours
            )
            cluster_to_mapping = {
                index: kernel.add_addr_map(perm)
                for index, perm in enumerate(selection.window_perms)
            }
            mapping_of_variable = {
                variable_id: cluster_to_mapping[cluster]
                for variable_id, cluster in selection.variable_cluster.items()
            }
        else:
            kernel = Kernel(
                self.geometry, sdam=None, chunk_colours=self.chunk_colours
            )
            mapping_of_variable = {}
            if system.policy == "bsm" and mix_profile is None:
                mix_profile = profile or self.profile(
                    workload, input_seed=profile_seed
                )

        space, _allocator, base, _registry = self._allocate(
            kernel, workload, mapping_of_variable
        )
        external = self._external(workload, base, eval_seed)
        # The fused datapath: VA -> PA through the page table, then one
        # precomposed mapping∘decode pass per translation group straight
        # into the memory backend — no intermediate HA array.  With
        # ``debug_ha`` the legacy two-step (translate, then decode) runs
        # instead; the two are bit-identical (tested).
        pa = space.translate_trace(external.trace.va)
        if system.sdam:
            translator = kernel.address_translator
        else:
            translator = self._global_translator(mix_profile)
        backend = self._memory()
        if self.debug_ha:
            ha = translator.translate(pa)
            stats = backend.simulate_decoded(decode_trace(ha, self.hbm))
        elif self.chunk_accesses is not None or self.backend == "vector":
            # Streaming evaluate: decoded chunks flow straight into the
            # backend, so the decoded trace never fully materialises.
            # Chunking is bit-identical to whole-trace simulation for
            # every built-in tier (tested), so this only changes peak
            # memory.  Opt-in via ``chunk_accesses`` for fast/event;
            # the vector tier streams by default.
            stats = backend.simulate_decoded(
                iter_decoded_chunks(
                    pa,
                    translator,
                    self.hbm,
                    **(
                        {"chunk_accesses": self.chunk_accesses}
                        if self.chunk_accesses is not None
                        else {}
                    ),
                )
            )
        else:
            stats = backend.simulate_decoded(
                decode_translated(pa, translator, self.hbm)
            )
        intensity = getattr(workload, "compute_intensity", 1.0)
        compute_ns = (
            external.program_accesses * self.compute_ns_per_access * intensity
        )
        return MachineResult(
            workload=workload.name,
            system=system.label,
            stats=stats,
            external=external,
            selection=selection,
            compute_ns=compute_ns,
            profiling_seconds=profiling_seconds,
            backend_health=getattr(backend, "last_health", None),
        )

    # -- RAS -------------------------------------------------------------------
    def ras_campaign(self, seed: int | None = None, kinds=None, quick=True):
        """Run a seeded device-fault RAS campaign on this machine's device.

        Injects one modeled-hardware fault per requested kind (stuck
        row, dead bank, lost channel, CMT bit flip, AMU misprogramming)
        into a live software stack built on this machine's HBM
        configuration, lets the RAS controller detect and repair each,
        and verifies the surviving contents against a never-faulted
        twin.  Returns a :class:`~repro.ras.campaign.CampaignResult`.
        """
        from repro.ras.campaign import ALL_KINDS, run_campaign

        return run_campaign(
            seed=self.seed if seed is None else seed,
            kinds=kinds or ALL_KINDS,
            quick=quick,
            config=self.hbm,
            geometry=self.geometry,
            backend=self.backend,
            guard=self.guard,
            guard_sample=self.guard_sample,
            guard_faults=self.backend_faults,
        )

    # -- online adaptation ------------------------------------------------------
    def adaptive_campaign(self, seed: int | None = None, quick: bool = True):
        """Run the seeded online-adaptation campaign on this device.

        A phase-shifting workload is served window by window while an
        :class:`~repro.online.controller.AdaptiveController` watches
        the external trace, detects phase changes and migrates the live
        mapping; the same trace is then scored under every relevant
        static mapping.  Returns an
        :class:`~repro.online.campaign.AdaptiveCampaignResult`.
        """
        from repro.online.campaign import run_adaptive_campaign

        return run_adaptive_campaign(
            seed=self.seed if seed is None else seed,
            quick=quick,
            config=self.hbm,
            geometry=self.geometry,
            backend=self.backend,
            guard=self.guard,
            guard_sample=self.guard_sample,
            guard_faults=self.backend_faults,
        )
