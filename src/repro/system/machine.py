"""The full machine: a single-tenant façade over the tenant-scoped core.

``Machine.run(workload)`` executes the paper's whole pipeline for one
system configuration:

1. *Profile* (if the system needs it): run the workload on the baseline
   mapping with the profiling input, collect the external PA trace per
   variable (Section 6.2's offline pass).
2. *Select mappings*: per-application bit-shuffle, K-Means clusters or
   DL-assisted clusters; or a global BSM/HM mapping for the
   hardware-only baselines.
3. *Evaluate*: fresh kernel, ``add_addr_map`` + mapping-aware malloc
   for every variable, generate the evaluation-input trace, filter it
   through the cache hierarchy, translate VA->PA->HA, and simulate the
   HBM device.

The pipeline itself lives in
:class:`~repro.service.tenant.TenantContext`; ``Machine`` is the thin
single-tenant façade that builds one private
:class:`~repro.service.tenant.SharedArtifacts` + tenant context pair
and delegates.  Multi-tenant serving constructs the same contexts
directly through :mod:`repro.service` and shares the artifacts.

The returned :class:`MachineResult` carries the memory statistics plus
an end-to-end time model (memory makespan + a compute term proportional
to program accesses) from which experiment-level speedups are computed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.chunks import ChunkGeometry
from repro.core.selection import MappingSelection
from repro.cpu.cpu import ExternalTraceResult
from repro.errors import ConfigError, warn_deprecated_once
from repro.hbm.config import HBMConfig
from repro.hbm.stats import BackendHealth, RunStats
from repro.ml.dlkmeans import AutoencoderConfig
from repro.profiling.profiler import WorkloadProfile
from repro.service.tenant import (
    ACCEL_COMPUTE_NS_PER_ACCESS,
    CPU_COMPUTE_NS_PER_ACCESS,
    SharedArtifacts,
    TenantContext,
)
from repro.system.config import SystemConfig
from repro.tier.stats import TierTraffic
from repro.workloads.base import Workload

__all__ = [
    "ACCEL_COMPUTE_NS_PER_ACCESS",
    "CPU_COMPUTE_NS_PER_ACCESS",
    "ExternalSummary",
    "Machine",
    "MachineResult",
]


@dataclass(frozen=True)
class ExternalSummary:
    """Cache-behaviour numbers of a run, without the trace arrays.

    Serialized results keep the external-trace *statistics* but not the
    address stream itself; this stand-in exposes the same aggregate
    interface as :class:`~repro.cpu.cpu.ExternalTraceResult`.
    """

    l1_hit_rate: float
    llc_hit_rate: float
    program_accesses: int
    external_accesses: int

    @property
    def miss_fraction(self) -> float:
        """External accesses per program access."""
        if self.program_accesses == 0:
            return 0.0
        return self.external_accesses / self.program_accesses


@dataclass
class MachineResult:
    """Everything one pipeline run produced."""

    workload: str
    system: str
    stats: RunStats
    external: ExternalTraceResult | ExternalSummary | None
    selection: MappingSelection | None
    compute_ns: float
    profiling_seconds: float = 0.0
    backend_health: BackendHealth | None = None
    tier_traffic: TierTraffic | None = None

    @property
    def time_ns(self) -> float:
        """End-to-end time: memory makespan plus compute."""
        return self.stats.makespan_ns + self.compute_ns

    @property
    def memory_time_ns(self) -> float:
        """Memory-system makespan only."""
        return self.stats.makespan_ns

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.workload:>12} on {self.system:<16} "
            f"{self.stats.throughput_gbps:7.1f} GB/s  "
            f"CLP {self.stats.clp_utilization:.2f}  "
            f"time {self.time_ns / 1e3:.1f} us"
        )

    # -- serialization -------------------------------------------------------
    def external_summary(self) -> ExternalSummary | None:
        """The external-trace statistics, trace arrays dropped."""
        if self.external is None:
            return None
        if isinstance(self.external, ExternalSummary):
            return self.external
        return ExternalSummary(
            l1_hit_rate=float(self.external.l1_hit_rate),
            llc_hit_rate=float(self.external.llc_hit_rate),
            program_accesses=int(self.external.program_accesses),
            external_accesses=len(self.external.trace),
        )

    def to_dict(self) -> dict:
        """A JSON-serialisable form.

        Bulk arrays (the external address trace, the selection's
        window permutations) are reduced to their statistics:
        everything speedup computation and reporting consume survives
        the round trip, so cached and fresh results are
        interchangeable.
        """
        external = self.external_summary()
        selection = None
        if self.selection is not None:
            selection = {
                "method": self.selection.method,
                "k": int(self.selection.k),
                "num_mappings": len(self.selection.window_perms)
                or int(self.selection.details.get("num_mappings", 0)),
                "variable_cluster": {
                    str(var): int(cluster)
                    for var, cluster in self.selection.variable_cluster.items()
                },
                "elapsed_seconds": float(self.selection.elapsed_seconds),
            }
        data = {
            "workload": self.workload,
            "system": self.system,
            "stats": self.stats.to_dict(),
            "external": None
            if external is None
            else {
                "l1_hit_rate": external.l1_hit_rate,
                "llc_hit_rate": external.llc_hit_rate,
                "program_accesses": external.program_accesses,
                "external_accesses": external.external_accesses,
            },
            "selection": selection,
            "compute_ns": self.compute_ns,
            "profiling_seconds": self.profiling_seconds,
        }
        # Only present for guarded/supervised runs: keeps the dict (and
        # every pre-existing cache entry and fingerprint) unchanged for
        # plain runs.
        if self.backend_health is not None:
            data["backend_health"] = self.backend_health.to_dict()
        if self.tier_traffic is not None:
            data["tier_traffic"] = self.tier_traffic.to_dict()
        return data

    def to_json(self, **json_kwargs) -> str:
        """JSON text of :meth:`to_dict`."""
        import json

        return json.dumps(self.to_dict(), **json_kwargs)

    def fingerprint(self) -> dict:
        """:meth:`to_dict` with wall-clock timing fields zeroed.

        Two runs of the same cell are bit-identical on everything but
        the host's measured profiling time; this is the deterministic
        content, for equivalence checks across serial, parallel and
        cached execution.
        """
        data = self.to_dict()
        data["profiling_seconds"] = 0.0
        if data["selection"] is not None:
            data["selection"]["elapsed_seconds"] = 0.0
        # Health describes *how* the result was obtained (pool
        # availability, retries) and varies with the host environment;
        # the deterministic content is the result itself.
        data.pop("backend_health", None)
        # Tier traffic is likewise provenance (placement and swap
        # accounting), not result content: the timing it influenced is
        # already inside ``stats``.
        data.pop("tier_traffic", None)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "MachineResult":
        """Rebuild a result written by :meth:`to_dict`.

        The reconstructed ``selection`` carries the clustering summary
        (method, k, variable->cluster) but no window permutations, and
        ``external`` comes back as an :class:`ExternalSummary`.
        """
        external = None
        if data.get("external") is not None:
            ext = data["external"]
            external = ExternalSummary(
                l1_hit_rate=float(ext["l1_hit_rate"]),
                llc_hit_rate=float(ext["llc_hit_rate"]),
                program_accesses=int(ext["program_accesses"]),
                external_accesses=int(ext["external_accesses"]),
            )
        selection = None
        if data.get("selection") is not None:
            sel = data["selection"]
            selection = MappingSelection(
                method=sel["method"],
                k=int(sel["k"]),
                window_perms=[],
                variable_cluster={
                    int(var): int(cluster)
                    for var, cluster in sel["variable_cluster"].items()
                },
                elapsed_seconds=float(sel["elapsed_seconds"]),
                details={"num_mappings": int(sel["num_mappings"])},
            )
        health = None
        if data.get("backend_health") is not None:
            health = BackendHealth.from_dict(data["backend_health"])
        tier_traffic = None
        if data.get("tier_traffic") is not None:
            tier_traffic = TierTraffic.from_dict(data["tier_traffic"])
        return cls(
            workload=data["workload"],
            system=data["system"],
            stats=RunStats.from_dict(data["stats"]),
            external=external,
            selection=selection,
            compute_ns=float(data["compute_ns"]),
            profiling_seconds=float(data.get("profiling_seconds", 0.0)),
            backend_health=health,
            tier_traffic=tier_traffic,
        )


class Machine:
    """One simulated platform bound to a system configuration.

    A thin single-tenant façade: construction builds one private
    :class:`~repro.service.tenant.SharedArtifacts` and one
    :class:`~repro.service.tenant.TenantContext`, and every pipeline
    method delegates to the context.  The familiar attributes
    (``system``, ``hbm``, ``geometry``, ``engine``, ``backend``,
    ``layout``, ...) remain available on the façade.
    """

    SELECTION_COVERAGE = TenantContext.SELECTION_COVERAGE

    def __init__(
        self,
        system: SystemConfig,
        hbm: HBMConfig | None = None,
        geometry: ChunkGeometry | None = None,
        engine: str = "cpu",
        cores: int = 4,
        backend: str | None = None,
        backend_options: dict | None = None,
        chunk_accesses: int | None = None,
        dl_config: AutoencoderConfig | None = None,
        seed: int = 0,
        chunk_colours: int = 8,
        debug_ha: bool = False,
        memory_model: str | None = None,
        guard: bool = False,
        guard_sample: float | None = None,
        guard_mode: str = "demote",
        backend_faults=None,
    ):
        if memory_model is not None:
            # Pre-redesign spelling of the backend selector.
            warn_deprecated_once(
                "machine.memory_model",
                "Machine(memory_model=...) is deprecated; "
                "use Machine(backend=...)",
            )
            if backend is not None and backend != memory_model:
                raise ConfigError(
                    "pass either backend= or the deprecated memory_model=, "
                    "not conflicting values of both"
                )
            backend = memory_model
        if backend is None:
            backend = "fast"
        shared = SharedArtifacts.create(
            hbm=hbm,
            geometry=geometry,
            backend=backend,
            backend_options=backend_options,
        )
        self._tenant = TenantContext(
            name="machine",
            system=system,
            shared=shared,
            engine=engine,
            cores=cores,
            chunk_accesses=chunk_accesses,
            dl_config=dl_config,
            seed=seed,
            chunk_colours=chunk_colours,
            debug_ha=debug_ha,
            guard=guard,
            guard_sample=guard_sample,
            guard_mode=guard_mode,
            backend_faults=backend_faults,
        )
        # Façade mirrors of the tenant's configuration, kept for the
        # pre-refactor public surface (experiments, stages, tests).
        self.shared = shared
        self.system = system
        self.hbm = shared.hbm
        self.geometry = shared.geometry
        self.layout = self._tenant.layout
        self.engine = self._tenant.engine
        self.compute_ns_per_access = self._tenant.compute_ns_per_access
        self.backend = self._tenant.backend
        self.backend_options = self._tenant.backend_options
        self.guard = self._tenant.guard
        self.guard_sample = self._tenant.guard_sample
        self.guard_mode = self._tenant.guard_mode
        self.backend_faults = self._tenant.backend_faults
        self.chunk_accesses = self._tenant.chunk_accesses
        self.dl_config = self._tenant.dl_config
        self.seed = self._tenant.seed
        self.chunk_colours = self._tenant.chunk_colours
        self.debug_ha = self._tenant.debug_ha

    @property
    def memory_model(self) -> str:
        """Deprecated alias for :attr:`backend`."""
        return self.backend

    @property
    def tenant(self) -> TenantContext:
        """The tenant context this façade drives."""
        return self._tenant

    # -- the pipeline (delegated to the tenant context) ----------------------
    def profile(self, workload: Workload, input_seed: int = 0) -> WorkloadProfile:
        """Offline profiling on the baseline system (Section 6.2)."""
        return self._tenant.profile(workload, input_seed=input_seed)

    def select(self, profile: WorkloadProfile) -> MappingSelection:
        """Mapping selection for this machine's system configuration."""
        return self._tenant.select(profile)

    def run(
        self,
        workload: Workload,
        profile_seed: int = 0,
        eval_seed: int = 1,
        mix_profile: WorkloadProfile | None = None,
        profile: WorkloadProfile | None = None,
        selection: MappingSelection | None = None,
    ) -> MachineResult:
        """Profile (if needed), select mappings, evaluate, simulate.

        See :meth:`repro.service.tenant.TenantContext.run` for the
        parameter semantics.
        """
        return self._tenant.run(
            workload,
            profile_seed=profile_seed,
            eval_seed=eval_seed,
            mix_profile=mix_profile,
            profile=profile,
            selection=selection,
        )

    # -- RAS -------------------------------------------------------------------
    def ras_campaign(self, seed: int | None = None, kinds=None, quick=True):
        """Run a seeded device-fault RAS campaign on this machine's device.

        Injects one modeled-hardware fault per requested kind (stuck
        row, dead bank, lost channel, CMT bit flip, AMU misprogramming)
        into a live software stack built on this machine's HBM
        configuration, lets the RAS controller detect and repair each,
        and verifies the surviving contents against a never-faulted
        twin.  Returns a :class:`~repro.ras.campaign.CampaignResult`.
        """
        return self._tenant.ras_campaign(seed=seed, kinds=kinds, quick=quick)

    # -- online adaptation ------------------------------------------------------
    def adaptive_campaign(self, seed: int | None = None, quick: bool = True):
        """Run the seeded online-adaptation campaign on this device.

        A phase-shifting workload is served window by window while an
        :class:`~repro.online.controller.AdaptiveController` watches
        the external trace, detects phase changes and migrates the live
        mapping; the same trace is then scored under every relevant
        static mapping.  Returns an
        :class:`~repro.online.campaign.AdaptiveCampaignResult`.
        """
        return self._tenant.adaptive_campaign(seed=seed, quick=quick)
