"""Parallel, cached experiment execution engine.

:class:`ExperimentRunner` turns a (workloads x systems) sweep into the
stage DAG of :mod:`repro.system.stages`, memoises every stage output —
in memory for the lifetime of the runner and on disk through a
:class:`~repro.system.tracefile.StageStore` — and fans the remaining
independent cells out over a ``ProcessPoolExecutor``:

1. *Plan*: compute every cell's result key; cells whose result is
   already cached are done without touching a worker.
2. *Profile*: the unique profiling stages the remaining cells need
   (one per workload, shared by every system) run first, in parallel.
3. *Evaluate*: the remaining cells run in parallel, each worker
   computing (or loading) its mapping selection and simulating the
   memory system.  Results come back as serialised dicts, so parallel,
   serial and cached cells are exactly interchangeable.

Results are returned in deterministic (workload-major) order whatever
the completion order; a failing or timed-out cell degrades to a
recorded :class:`CellError` instead of killing the sweep.

The engine is *fault-tolerant* (see DESIGN.md, "Failure model"):
transient cell failures are retried under a :class:`RetryPolicy`, a
broken process pool degrades the rest of the sweep to serial
execution instead of aborting it, every sweep writes a per-cell
outcome manifest so ``run_suite(..., resume=True)`` re-runs only
failed or missing cells, and a :class:`~repro.faults.FaultPlan` can
inject failures at named sites to test all of the above.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.core.keys import stable_hash
from repro.core.selection import MappingSelection
from repro.errors import ConfigError, RetryExhaustedError
from repro.faults import FaultPlan
from repro.profiling.profiler import WorkloadProfile
from repro.system.config import SystemConfig, standard_systems
from repro.system.experiment import SpeedupTable
from repro.system.machine import MachineResult
from repro.system.stages import (
    MachineParams,
    build_mix_profile,
    evaluate_cache_key,
    evaluate_stage,
    profile_cache_key,
    profile_stage,
    selection_cache_key,
    selection_stage,
    sweep_cache_key,
)
from repro.system.tracefile import StageStore
from repro.workloads.base import Workload

__all__ = [
    "CellError",
    "ExperimentRunner",
    "RetryPolicy",
    "StageMetrics",
    "SuiteResult",
]

STAGES = ("profile", "mix", "selection", "evaluate")

MANIFEST_FORMAT = 1


@dataclass(frozen=True)
class RetryPolicy:
    """When and how often to re-execute a failed cell.

    A cell whose error class is in ``retry_on`` is re-submitted with
    exponential backoff until it succeeds or ``max_attempts`` is
    spent; other errors are recorded immediately.  The default class
    set covers crashes and I/O flakes — failures that plausibly pass
    on a second try — and excludes deterministic ones (a workload
    whose trace generator raises will raise again).
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    retry_on: tuple[str, ...] = (
        "WorkerCrashError",
        "BrokenProcessPool",
        "OSError",
        "IOError",
        "EOFError",
        "ConnectionError",
        "ConnectionResetError",
    )

    @classmethod
    def none(cls) -> "RetryPolicy":
        """Single-attempt policy: record every failure immediately."""
        return cls(max_attempts=1)

    def delay(self, attempt: int) -> float:
        """Backoff before re-running a cell that failed ``attempt``."""
        return self.backoff_seconds * self.backoff_factor ** (attempt - 1)

    def should_retry(self, error_type: str | None, attempt: int) -> bool:
        """Whether a failure of this class at this attempt is retried."""
        return attempt < self.max_attempts and error_type in self.retry_on

    def should_retry_exception(
        self, error: BaseException, attempt: int
    ) -> bool:
        """Classify a live exception object instead of its class name.

        The sweep engine ships error *strings* across process
        boundaries; in-process callers (the service front-end's tenant
        lanes) hold the exception itself — both classify identically.
        """
        return self.should_retry(type(error).__name__, attempt)


@dataclass
class StageMetrics:
    """Aggregated accounting for one stage across a sweep."""

    stage: str
    wall_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    bytes_simulated: int = 0

    def to_dict(self) -> dict:
        """A JSON-serialisable form."""
        return {
            "stage": self.stage,
            "wall_seconds": self.wall_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "bytes_simulated": self.bytes_simulated,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StageMetrics":
        """Rebuild metrics written by :meth:`to_dict`."""
        return cls(
            stage=data["stage"],
            wall_seconds=float(data["wall_seconds"]),
            cache_hits=int(data["cache_hits"]),
            cache_misses=int(data["cache_misses"]),
            bytes_simulated=int(data["bytes_simulated"]),
        )


@dataclass(frozen=True)
class CellError:
    """One failed cell: where it failed and why; the sweep continued.

    ``error_type`` is the exception class name (what retry policies
    classify on) and ``attempts`` how many executions were spent
    before the failure was recorded.
    """

    workload: str
    system: str
    stage: str
    message: str
    error_type: str = ""
    attempts: int = 1

    def to_dict(self) -> dict:
        """A JSON-serialisable form."""
        return {
            "workload": self.workload,
            "system": self.system,
            "stage": self.stage,
            "message": self.message,
            "error_type": self.error_type,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CellError":
        """Rebuild an error written by :meth:`to_dict`.

        Tolerant of manifests from other engine versions: missing
        keys fall back to defaults and extra keys are ignored.
        """
        return cls(
            workload=str(data.get("workload", "?")),
            system=str(data.get("system", "?")),
            stage=str(data.get("stage", "evaluate")),
            message=str(data.get("message", "")),
            error_type=str(data.get("error_type", "")),
            attempts=int(data.get("attempts", 1)),
        )


@dataclass
class SuiteResult:
    """A sweep's results plus per-stage structured metrics."""

    table: SpeedupTable
    errors: list[CellError] = field(default_factory=list)
    metrics: dict[str, StageMetrics] = field(default_factory=dict)
    wall_seconds: float = 0.0
    workers: int = 0
    degraded: bool = False
    resumed: bool = False

    @property
    def cache_hits(self) -> int:
        """Stage-cache hits across the whole sweep."""
        return sum(m.cache_hits for m in self.metrics.values())

    @property
    def cache_misses(self) -> int:
        """Stage-cache misses across the whole sweep."""
        return sum(m.cache_misses for m in self.metrics.values())

    @property
    def bytes_simulated(self) -> int:
        """Bytes moved by freshly simulated cells (cache hits excluded)."""
        return sum(m.bytes_simulated for m in self.metrics.values())

    def raise_errors(self) -> "SuiteResult":
        """Raise if any cell failed; otherwise return self."""
        if self.errors:
            first = self.errors[0]
            raise ConfigError(
                f"{len(self.errors)} cell(s) failed; first: "
                f"{first.workload} on {first.system} in {first.stage}: "
                f"{first.message}"
            )
        return self

    def to_dict(self) -> dict:
        """A JSON-serialisable form; :meth:`from_dict` round-trips it."""
        return {
            "table": self.table.to_dict(),
            "errors": [e.to_dict() for e in self.errors],
            "metrics": {
                stage: m.to_dict() for stage, m in self.metrics.items()
            },
            "wall_seconds": self.wall_seconds,
            "workers": self.workers,
            "degraded": self.degraded,
            "resumed": self.resumed,
        }

    def to_json(self, **json_kwargs) -> str:
        """JSON text of :meth:`to_dict`."""
        import json

        return json.dumps(self.to_dict(), **json_kwargs)

    @classmethod
    def from_dict(cls, data: dict) -> "SuiteResult":
        """Rebuild a result written by :meth:`to_dict`."""
        return cls(
            table=SpeedupTable.from_dict(data["table"]),
            errors=[CellError.from_dict(e) for e in data["errors"]],
            metrics={
                stage: StageMetrics.from_dict(m)
                for stage, m in data["metrics"].items()
            },
            wall_seconds=float(data["wall_seconds"]),
            workers=int(data["workers"]),
            degraded=bool(data.get("degraded", False)),
            resumed=bool(data.get("resumed", False)),
        )


# ---------------------------------------------------------------------------
# Worker-side tasks (module-level and picklable)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _ProfileTask:
    key: str
    params: MachineParams
    workload: Workload
    input_seed: int
    cache_dir: str | None
    attempt: int = 1
    faults: FaultPlan | None = None


@dataclass(frozen=True)
class _CellTask:
    index: int
    params: MachineParams
    workload: Workload
    profile_seed: int
    eval_seed: int
    result_key: str
    selection_key: str | None = None
    profile_key: str | None = None
    profile: WorkloadProfile | None = None
    selection: MappingSelection | None = None
    mix_profile: WorkloadProfile | None = None
    cache_dir: str | None = None
    attempt: int = 1
    faults: FaultPlan | None = None

    @property
    def token(self) -> str:
        """The fault-site token identifying this cell."""
        return f"{self.workload.name}:{self.params.system.key}"


@dataclass
class _CellOutcome:
    index: int
    result: dict | None
    timings: dict[str, float]
    error_stage: str | None = None
    error: str | None = None
    error_type: str | None = None
    attempt: int = 1


def _run_profile_task(
    task: _ProfileTask, in_worker: bool = False
) -> tuple[str, WorkloadProfile, float]:
    """Worker entry: compute (or load) one profiling stage."""
    store = (
        StageStore(task.cache_dir, faults=task.faults)
        if task.cache_dir
        else None
    )
    if store is not None:
        cached = store.load_profile(task.key)
        if cached is not None:
            return task.key, cached, 0.0
    if task.faults is not None:
        task.faults.inject(
            "worker.profile",
            task.workload.name,
            attempt=task.attempt,
            allow_exit=in_worker,
        )
    start = time.perf_counter()
    profile = profile_stage(task.params, task.workload, task.input_seed)
    elapsed = time.perf_counter() - start
    if store is not None:
        store.store_profile(task.key, profile)
    return task.key, profile, elapsed


def _run_cell_task(task: _CellTask, in_worker: bool = False) -> _CellOutcome:
    """Worker entry: selection (if needed) + evaluation for one cell."""
    store = (
        StageStore(task.cache_dir, faults=task.faults)
        if task.cache_dir
        else None
    )
    timings: dict[str, float] = {}
    stage = "evaluate"

    def fail(exc: Exception) -> _CellOutcome:
        return _CellOutcome(
            index=task.index,
            result=None,
            timings=timings,
            error_stage=stage,
            error=f"{type(exc).__name__}: {exc}",
            error_type=type(exc).__name__,
            attempt=task.attempt,
        )

    def inject(site: str) -> None:
        if task.faults is not None:
            task.faults.inject(
                site, task.token, attempt=task.attempt, allow_exit=in_worker
            )

    try:
        profile = task.profile
        selection = task.selection
        if task.params.system.sdam and selection is None:
            stage = "selection"
            if store is not None and task.selection_key:
                selection = store.load_selection(task.selection_key)
            if selection is None:
                if profile is None:
                    # Planner normally embeds the profile; recompute as
                    # a fallback so a lone task stays self-contained.
                    stage = "profile"
                    inject("worker.profile")
                    start = time.perf_counter()
                    profile = profile_stage(
                        task.params, task.workload, task.profile_seed
                    )
                    timings["profile"] = time.perf_counter() - start
                    if store is not None and task.profile_key:
                        store.store_profile(task.profile_key, profile)
                    stage = "selection"
                inject("worker.selection")
                start = time.perf_counter()
                selection = selection_stage(task.params, profile)
                timings["selection"] = time.perf_counter() - start
                if store is not None and task.selection_key:
                    store.store_selection(task.selection_key, selection)
        stage = "evaluate"
        inject("worker.evaluate")
        start = time.perf_counter()
        result = evaluate_stage(
            task.params,
            task.workload,
            task.profile_seed,
            task.eval_seed,
            mix_profile=task.mix_profile,
            profile=profile,
            selection=selection,
        )
        timings["evaluate"] = time.perf_counter() - start
        result_dict = result.to_dict()
        if store is not None:
            store.store_result(task.result_key, result_dict)
        return _CellOutcome(
            index=task.index,
            result=result_dict,
            timings=timings,
            attempt=task.attempt,
        )
    except Exception as exc:  # noqa: BLE001 — isolate the failing cell
        return fail(exc)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class ExperimentRunner:
    """Plans, caches and executes (workload x system) sweeps.

    ``max_workers <= 1`` runs every stage in-process (still cached);
    larger values fan independent stages out over worker processes.
    ``cell_timeout`` bounds the wait for each parallel cell; a cell
    that exceeds it is recorded as a :class:`CellError`.  Timeouts
    require ``max_workers >= 2`` — the serial path cannot interrupt a
    running stage.

    ``retry_policy`` governs re-execution of transiently failed cells
    (crashes, I/O flakes); a broken process pool degrades the rest of
    the sweep to serial execution instead of aborting.  ``faults``
    optionally injects failures from a
    :class:`~repro.faults.FaultPlan` (defaults to the
    ``$REPRO_FAULT_PLAN`` environment hook); when a cache directory
    exists, the plan's firing ledger is kept inside it so fault
    budgets hold across worker processes and resumed sweeps.
    """

    def __init__(
        self,
        cache_dir: str | None = None,
        max_workers: int = 0,
        cell_timeout: float | None = None,
        retry_policy: RetryPolicy | None = None,
        faults: FaultPlan | None = None,
    ):
        self.cache_dir = str(cache_dir) if cache_dir else None
        if faults is None:
            faults = FaultPlan.from_env()
        if (
            faults is not None
            and faults.ledger_dir is None
            and self.cache_dir
        ):
            faults = faults.with_ledger(
                Path(self.cache_dir) / "faults-ledger"
            )
        self.faults = faults
        self.retry_policy = retry_policy or RetryPolicy()
        self.store = (
            StageStore(self.cache_dir, faults=faults)
            if self.cache_dir
            else None
        )
        self.max_workers = int(max_workers or 0)
        self.cell_timeout = cell_timeout
        self._profiles: dict[str, WorkloadProfile] = {}
        self._selections: dict[str, MappingSelection] = {}
        self._results: dict[str, dict] = {}
        self._degraded = False

    # -- cached stage lookups ------------------------------------------------
    def _cached_profile(self, key: str) -> WorkloadProfile | None:
        profile = self._profiles.get(key)
        if profile is None and self.store is not None:
            profile = self.store.load_profile(key)
            if profile is not None:
                self._profiles[key] = profile
        return profile

    def _cached_selection(self, key: str) -> MappingSelection | None:
        selection = self._selections.get(key)
        if selection is None and self.store is not None:
            selection = self.store.load_selection(key)
            if selection is not None:
                self._selections[key] = selection
        return selection

    def _cached_result(self, key: str) -> dict | None:
        result = self._results.get(key)
        if result is None and self.store is not None:
            result = self.store.load_result(key)
            if result is not None:
                self._results[key] = result
        return result

    # -- profiling phase -----------------------------------------------------
    def _ensure_profiles(
        self,
        needed: list[tuple[str, Workload]],
        params: MachineParams,
        input_seed: int,
        metrics: StageMetrics,
    ) -> dict[str, WorkloadProfile]:
        """Compute (in parallel) every missing profiling stage."""
        profiles: dict[str, WorkloadProfile] = {}
        missing: list[_ProfileTask] = []
        for key, workload in needed:
            cached = self._cached_profile(key)
            if cached is not None:
                profiles[key] = cached
                metrics.cache_hits += 1
            else:
                metrics.cache_misses += 1
                missing.append(
                    _ProfileTask(
                        key=key,
                        params=params,
                        workload=workload,
                        input_seed=input_seed,
                        cache_dir=self.cache_dir,
                        faults=self.faults,
                    )
                )
        if not missing:
            return profiles
        start = time.perf_counter()
        if self.max_workers > 1:
            try:
                with ProcessPoolExecutor(
                    max_workers=min(self.max_workers, len(missing))
                ) as pool:
                    outcomes = list(
                        pool.map(_run_profile_task, missing, [True] * len(missing))
                    )
            except Exception as exc:  # noqa: BLE001 — degrade, don't abort
                # A crashed worker (or injected fault) lost the batch;
                # profiles the workers did publish reload from the
                # store, the rest recompute serially as a fresh attempt.
                if isinstance(exc, BrokenProcessPool):
                    self._degraded = True
                outcomes = [
                    _run_profile_task(replace(task, attempt=task.attempt + 1))
                    for task in missing
                ]
        else:
            outcomes = [_run_profile_task(task) for task in missing]
        metrics.wall_seconds += time.perf_counter() - start
        for key, profile, _elapsed in outcomes:
            profiles[key] = profile
            self._profiles[key] = profile
        return profiles

    # -- the sweep -----------------------------------------------------------
    def run_suite(
        self,
        workloads: list[Workload],
        systems: list[SystemConfig] | None = None,
        profile_seed: int = 0,
        eval_seed: int = 1,
        resume: bool = False,
        **machine_kwargs,
    ) -> SuiteResult:
        """Run every workload under every system, cached and parallel.

        Speedups are reported against the first system in ``systems``
        (``BS+DM`` in the standard set), matching
        :func:`repro.system.experiment.run_suite`.

        With a cache directory the sweep maintains a *manifest* — a
        per-cell outcome record updated as results land — so an
        interrupted or partially failed sweep can be finished with
        ``resume=True``: healthy cells are served from the stage
        cache (zero recomputation) and only failed or missing cells
        re-run.
        """
        sweep_start = time.perf_counter()
        self._degraded = False
        systems = systems or standard_systems()
        if not workloads:
            raise ConfigError("no workloads given")
        if not systems:
            raise ConfigError("no systems given")
        base = MachineParams.from_kwargs(systems[0], **machine_kwargs)
        metrics = {stage: StageMetrics(stage) for stage in STAGES}

        # Keys shared across the plan.
        profile_keys = {
            workload.name: profile_cache_key(base, workload, profile_seed)
            for workload in workloads
        }
        mix_needed_by = [
            system
            for system in systems
            if system.policy == "bsm" and not system.sdam
        ]
        mix_key = stable_hash(
            "mix", [profile_keys[w.name] for w in workloads]
        )

        # Plan: resolve every cell to a cached result or a task.
        cells: list[tuple[int, Workload, SystemConfig, MachineParams, str]] = []
        results: dict[int, dict] = {}
        errors: list[CellError] = []
        pending: list[tuple[int, Workload, SystemConfig, MachineParams, str]] = []
        for index, (workload, system) in enumerate(
            (w, s) for w in workloads for s in systems
        ):
            params = base.with_system(system)
            cell_mix = (
                mix_key if system.policy == "bsm" and not system.sdam else None
            )
            result_key = evaluate_cache_key(
                params, workload, profile_seed, eval_seed, cell_mix
            )
            cells.append((index, workload, system, params, result_key))
            cached = self._cached_result(result_key)
            if cached is not None:
                metrics["evaluate"].cache_hits += 1
                results[index] = cached
            else:
                pending.append((index, workload, system, params, result_key))

        # Manifest: record the plan (and each outcome, incrementally)
        # so an interrupted sweep can be resumed from what finished.
        sweep_key = sweep_cache_key(
            base, workloads, systems, profile_seed, eval_seed
        )
        manifest: dict | None = None
        resumed = False
        if self.store is not None:
            if resume:
                resumed = self.store.load_manifest(sweep_key) is not None
            manifest = {
                "format": MANIFEST_FORMAT,
                "sweep": sweep_key,
                "workloads": [w.name for w in workloads],
                "systems": [s.key for s in systems],
                "resumed": resumed,
                "completed": False,
                "cells": {
                    str(index): {
                        "workload": workload.name,
                        "system": system.key,
                        "result_key": key,
                        "status": "ok" if index in results else "pending",
                    }
                    for index, workload, system, _params, key in cells
                },
            }
            self.store.store_manifest(sweep_key, manifest)

        # Profile: one stage per workload, shared by every system.
        profiles_wanted: dict[str, Workload] = {}
        if mix_needed_by and pending:
            # The suite mix folds in every workload's profile.
            for workload in workloads:
                profiles_wanted[profile_keys[workload.name]] = workload
        for _index, workload, system, params, _key in pending:
            if not system.sdam:
                continue
            pkey = profile_keys[workload.name]
            skey = selection_cache_key(params, pkey)
            if self._cached_selection(skey) is None:
                profiles_wanted[pkey] = workload
        profiles = self._ensure_profiles(
            list(profiles_wanted.items()), base, profile_seed, metrics["profile"]
        )

        mix_profile: WorkloadProfile | None = None
        if mix_needed_by and pending:
            start = time.perf_counter()
            mix_profile = build_mix_profile(
                [profiles[profile_keys[w.name]] for w in workloads]
            )
            metrics["mix"].wall_seconds += time.perf_counter() - start
            metrics["mix"].cache_misses += 1

        # Evaluate: fan the remaining cells out.
        tasks: list[_CellTask] = []
        for index, workload, system, params, result_key in pending:
            pkey = profile_keys[workload.name]
            skey = selection_cache_key(params, pkey) if system.sdam else None
            selection = self._cached_selection(skey) if skey else None
            if skey and selection is not None:
                metrics["selection"].cache_hits += 1
            elif skey:
                metrics["selection"].cache_misses += 1
            needs_mix = system.policy == "bsm" and not system.sdam
            tasks.append(
                _CellTask(
                    index=index,
                    params=params,
                    workload=workload,
                    profile_seed=profile_seed,
                    eval_seed=eval_seed,
                    result_key=result_key,
                    selection_key=skey,
                    profile_key=pkey,
                    profile=profiles.get(pkey),
                    selection=selection,
                    mix_profile=mix_profile if needs_mix else None,
                    cache_dir=self.cache_dir,
                    faults=self.faults,
                )
            )

        def record_outcome(outcome: _CellOutcome) -> None:
            if manifest is None:
                return
            cell = manifest["cells"][str(outcome.index)]
            if outcome.error is None:
                cell["status"] = "ok"
                cell.pop("error", None)
            else:
                cell["status"] = "error"
                cell["error"] = {
                    "stage": outcome.error_stage or "evaluate",
                    "message": outcome.error,
                    "error_type": outcome.error_type or "",
                    "attempts": outcome.attempt,
                }
            self.store.store_manifest(sweep_key, manifest)

        outcomes = self._execute_cells(tasks, on_outcome=record_outcome)

        # Assemble in deterministic cell order.
        by_index = {
            index: (workload, system)
            for index, workload, system, _params, _key in cells
        }
        keys_by_index = {index: key for index, _w, _s, _p, key in cells}
        for outcome in outcomes:
            workload, system = by_index[outcome.index]
            for stage, seconds in outcome.timings.items():
                metrics[stage].wall_seconds += seconds
            if outcome.error is not None:
                errors.append(
                    CellError(
                        workload=workload.name,
                        system=system.key,
                        stage=outcome.error_stage or "evaluate",
                        message=outcome.error,
                        error_type=outcome.error_type or "",
                        attempts=outcome.attempt,
                    )
                )
                continue
            metrics["evaluate"].cache_misses += 1
            metrics["evaluate"].bytes_simulated += int(
                outcome.result["stats"]["bytes_moved"]
            )
            results[outcome.index] = outcome.result
            self._results[keys_by_index[outcome.index]] = outcome.result

        table = SpeedupTable(baseline_label=systems[0].label)
        for index, _workload, _system, _params, _key in cells:
            if index in results:
                table.add(MachineResult.from_dict(results[index]))
        suite = SuiteResult(
            table=table,
            errors=errors,
            metrics=metrics,
            wall_seconds=time.perf_counter() - sweep_start,
            workers=self.max_workers,
            degraded=self._degraded,
            resumed=resumed,
        )
        if manifest is not None:
            manifest["completed"] = not errors
            self.store.store_manifest(sweep_key, manifest)
        return suite

    def _execute_cells(
        self, tasks: list[_CellTask], on_outcome=None
    ) -> list[_CellOutcome]:
        """Run cell tasks with retries, degrading serially if needed.

        Each round executes the outstanding tasks (over the pool, or
        in-process once the pool has broken or ``max_workers <= 1``);
        failures the :class:`RetryPolicy` classifies as transient are
        re-submitted with backoff as the next round.  ``on_outcome``
        fires once per cell when its outcome becomes final.
        """
        if not tasks:
            return []
        final: dict[int, _CellOutcome] = {}
        serial = self.max_workers <= 1
        batch = list(tasks)
        while batch:
            if serial:
                raw = [_run_cell_task(task) for task in batch]
            else:
                raw, pool_broken = self._run_pooled(batch)
                if pool_broken:
                    # Graceful degradation: finish the sweep (and any
                    # retries) in-process rather than aborting it.
                    self._degraded = True
                    serial = True
            by_index = {task.index: task for task in batch}
            retries: list[_CellTask] = []
            for outcome in raw:
                task = by_index[outcome.index]
                if outcome.error is not None and self.retry_policy.should_retry(
                    outcome.error_type, task.attempt
                ):
                    retries.append(replace(task, attempt=task.attempt + 1))
                else:
                    final[outcome.index] = outcome
                    if on_outcome is not None:
                        on_outcome(outcome)
            if retries:
                time.sleep(
                    self.retry_policy.delay(
                        min(task.attempt for task in retries) - 1
                    )
                )
            batch = retries
        return [final[index] for index in sorted(final)]

    def _run_pooled(
        self, tasks: list[_CellTask]
    ) -> tuple[list[_CellOutcome], bool]:
        """One round of tasks over a process pool.

        Returns the outcomes plus whether the pool broke.  A broken
        pool marks every unfinished cell as a crash (retryable, so
        the serial fallback re-runs them); a timeout marks every
        still-running cell as timed out and abandons the pool.
        """
        outcomes: list[_CellOutcome] = []
        pool = ProcessPoolExecutor(
            max_workers=min(self.max_workers, len(tasks))
        )
        timed_out = False
        pool_broken = False
        try:
            futures = {
                pool.submit(_run_cell_task, task, True): task
                for task in tasks
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(
                    remaining,
                    timeout=self.cell_timeout,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    # No cell finished within the per-cell budget: the
                    # in-flight cells are recorded as timed out and the
                    # pool is abandoned without waiting on them.
                    timed_out = True
                    for future in remaining:
                        task = futures[future]
                        future.cancel()
                        outcomes.append(
                            _CellOutcome(
                                index=task.index,
                                result=None,
                                timings={},
                                error_stage="evaluate",
                                error=(
                                    "timeout: no progress within "
                                    f"{self.cell_timeout:.1f}s"
                                ),
                                error_type="CellTimeout",
                                attempt=task.attempt,
                            )
                        )
                    break
                for future in done:
                    task = futures[future]
                    try:
                        outcomes.append(future.result())
                    except BrokenProcessPool as exc:
                        pool_broken = True
                        outcomes.append(
                            _CellOutcome(
                                index=task.index,
                                result=None,
                                timings={},
                                error_stage="evaluate",
                                error=f"worker crashed: {exc}",
                                error_type="WorkerCrashError",
                                attempt=task.attempt,
                            )
                        )
                    except Exception as exc:  # pool/pickle failures
                        outcomes.append(
                            _CellOutcome(
                                index=task.index,
                                result=None,
                                timings={},
                                error_stage="evaluate",
                                error=f"{type(exc).__name__}: {exc}",
                                error_type=type(exc).__name__,
                                attempt=task.attempt,
                            )
                        )
                if pool_broken:
                    # The pool takes every queued future down with it.
                    for future in remaining:
                        task = futures[future]
                        future.cancel()
                        outcomes.append(
                            _CellOutcome(
                                index=task.index,
                                result=None,
                                timings={},
                                error_stage="evaluate",
                                error="worker pool broke before the cell ran",
                                error_type="WorkerCrashError",
                                attempt=task.attempt,
                            )
                        )
                    break
        finally:
            abandoned = timed_out or pool_broken
            pool.shutdown(wait=not abandoned, cancel_futures=abandoned)
        outcomes.sort(key=lambda outcome: outcome.index)
        return outcomes, pool_broken

    # -- single cells --------------------------------------------------------
    def run_one(
        self,
        workload: Workload,
        system: SystemConfig,
        profile_seed: int = 0,
        eval_seed: int = 1,
        **machine_kwargs,
    ) -> MachineResult:
        """One (workload, system) cell, cached; raises on failure.

        Unlike :meth:`run_suite`, a ``BS+BSM`` cell run alone uses the
        workload's *own* profile as the mix (exactly what
        ``Machine.run`` does without a suite context).
        """
        params = MachineParams.from_kwargs(system, **machine_kwargs)
        pkey = profile_cache_key(params, workload, profile_seed)
        result_key = evaluate_cache_key(
            params,
            workload,
            profile_seed,
            eval_seed,
            stable_hash("self-mix", pkey)
            if system.policy == "bsm" and not system.sdam
            else None,
        )
        cached = self._cached_result(result_key)
        if cached is not None:
            return MachineResult.from_dict(cached)
        profile = None
        selection = None
        skey = None
        if system.needs_profiling:
            profile = self._cached_profile(pkey)
            if profile is None:
                profile = profile_stage(params, workload, profile_seed)
                self._profiles[pkey] = profile
                if self.store is not None:
                    self.store.store_profile(pkey, profile)
            if system.sdam:
                skey = selection_cache_key(params, pkey)
                selection = self._cached_selection(skey)
        task = _CellTask(
            index=0,
            params=params,
            workload=workload,
            profile_seed=profile_seed,
            eval_seed=eval_seed,
            result_key=result_key,
            selection_key=skey,
            profile_key=pkey,
            profile=profile,
            selection=selection,
            mix_profile=profile
            if system.policy == "bsm" and not system.sdam
            else None,
            cache_dir=self.cache_dir,
            faults=self.faults,
        )
        attempt = 1
        while True:
            outcome = _run_cell_task(replace(task, attempt=attempt))
            if outcome.error is None:
                break
            if self.retry_policy.should_retry(outcome.error_type, attempt):
                time.sleep(self.retry_policy.delay(attempt))
                attempt += 1
                continue
            if (
                outcome.error_type in self.retry_policy.retry_on
                and attempt >= self.retry_policy.max_attempts
            ):
                raise RetryExhaustedError(
                    f"{workload.name} on {system.key} still failing in "
                    f"{outcome.error_stage} after {attempt} attempt(s): "
                    f"{outcome.error}"
                )
            raise ConfigError(
                f"{workload.name} on {system.key} failed in "
                f"{outcome.error_stage}: {outcome.error}"
            )
        self._results[result_key] = outcome.result
        return MachineResult.from_dict(outcome.result)
