"""Crash-safe campaign checkpoints.

Long campaigns (``repro ras``, ``repro adapt``) periodically persist
their live state — the simulated machines, journals, controllers, and
a loop cursor — so a killed run can ``--resume`` and finish with a
fingerprint **bit-identical** to the uninterrupted run.  That identity
holds because campaigns are seeded-deterministic: everything outside
the pickled state (schedules, traces, fault plans) is recomputed from
the seed, and everything stateful rides in the checkpoint.

The format is a single pickle with a small validated envelope::

    {"version": 1, "campaign": "ras" | "adaptive",
     "key": <stable_hash of the campaign parameters>,
     "cursor": <loop index to resume from>, "state": <campaign dict>}

``key`` binds a checkpoint to the exact parameter set that produced
it; resuming with different parameters is a hard
:class:`~repro.errors.ConfigError`, never a silently-wrong campaign.
Writes are atomic (temp file + ``os.replace``), so a kill *during*
checkpointing leaves the previous checkpoint intact.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

from repro.errors import ConfigError

__all__ = ["CHECKPOINT_VERSION", "load_checkpoint", "save_checkpoint"]

CHECKPOINT_VERSION = 1


def save_checkpoint(
    path: str | Path, campaign: str, key: str, cursor: int, state: dict
) -> None:
    """Atomically persist one campaign checkpoint."""
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": CHECKPOINT_VERSION,
        "campaign": campaign,
        "key": key,
        "cursor": int(cursor),
        "state": state,
    }
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def load_checkpoint(
    path: str | Path, campaign: str, key: str
) -> tuple[int, dict]:
    """Load and validate a checkpoint; returns ``(cursor, state)``.

    Refuses (with a :class:`ConfigError`) a file written by a
    different checkpoint version, a different campaign type, or a
    campaign with different parameters — a resumed run must continue
    the *same* campaign or not at all.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"no checkpoint at {path}")
    with open(path, "rb") as handle:
        try:
            payload = pickle.load(handle)
        except Exception as error:
            raise ConfigError(
                f"unreadable checkpoint {path}: {error}"
            ) from error
    if not isinstance(payload, dict) or "version" not in payload:
        raise ConfigError(f"{path} is not a campaign checkpoint")
    if payload["version"] != CHECKPOINT_VERSION:
        raise ConfigError(
            f"checkpoint {path} has version {payload['version']}, "
            f"this build writes {CHECKPOINT_VERSION}"
        )
    if payload.get("campaign") != campaign:
        raise ConfigError(
            f"checkpoint {path} belongs to a "
            f"{payload.get('campaign')!r} campaign, not {campaign!r}"
        )
    if payload.get("key") != key:
        raise ConfigError(
            f"checkpoint {path} was written by a campaign with "
            "different parameters (seed/kinds/backend/config); refusing "
            "to resume into a different experiment"
        )
    return int(payload["cursor"]), payload["state"]
