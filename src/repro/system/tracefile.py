"""Trace and profile persistence (npz archives).

The paper's profiling is offline and reused across runs of the same
program ("the profiling result can be reused across variations of the
program as long as the data structure and memory allocation site do
not change", Section 6.2).  These helpers store external traces and
per-variable profiles on disk so a profiling pass can be decoupled
from the evaluation runs that consume it.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.cpu.trace import AccessTrace
from repro.errors import ProfilingError
from repro.profiling.profiler import VariableProfile, WorkloadProfile

__all__ = [
    "save_trace",
    "load_trace",
    "save_profile",
    "load_profile",
]

TRACE_FORMAT = 1
PROFILE_FORMAT = 1


def save_trace(path: str | Path, trace: AccessTrace) -> Path:
    """Write an access trace to an ``.npz`` archive."""
    path = Path(path)
    np.savez_compressed(
        path,
        format=np.int64(TRACE_FORMAT),
        va=trace.va,
        is_write=trace.is_write,
        variable=trace.variable,
    )
    return path if path.suffix == ".npz" else path.with_suffix(".npz")


def load_trace(path: str | Path) -> AccessTrace:
    """Read an access trace written by :func:`save_trace`."""
    with np.load(Path(path)) as archive:
        if int(archive["format"]) != TRACE_FORMAT:
            raise ProfilingError("unsupported trace file format")
        return AccessTrace(
            va=archive["va"],
            is_write=archive["is_write"],
            variable=archive["variable"],
        )


def save_profile(path: str | Path, profile: WorkloadProfile) -> Path:
    """Write a workload profile (per-variable sub-traces) to disk."""
    path = Path(path)
    payload: dict[str, np.ndarray] = {
        "format": np.int64(PROFILE_FORMAT),
        "name": np.bytes_(profile.name.encode()),
        "total_references": np.int64(profile.total_references),
        "count": np.int64(len(profile.profiles)),
    }
    for index, variable in enumerate(profile.profiles):
        payload[f"v{index}_id"] = np.int64(variable.variable_id)
        payload[f"v{index}_name"] = np.bytes_(variable.name.encode())
        payload[f"v{index}_size"] = np.int64(variable.size_bytes)
        payload[f"v{index}_refs"] = np.int64(variable.references)
        payload[f"v{index}_addresses"] = variable.addresses
    np.savez_compressed(path, **payload)
    return path if path.suffix == ".npz" else path.with_suffix(".npz")


def load_profile(path: str | Path) -> WorkloadProfile:
    """Read a profile written by :func:`save_profile`."""
    with np.load(Path(path)) as archive:
        if int(archive["format"]) != PROFILE_FORMAT:
            raise ProfilingError("unsupported profile file format")
        count = int(archive["count"])
        profiles = [
            VariableProfile(
                variable_id=int(archive[f"v{index}_id"]),
                name=bytes(archive[f"v{index}_name"]).decode(),
                size_bytes=int(archive[f"v{index}_size"]),
                references=int(archive[f"v{index}_refs"]),
                addresses=archive[f"v{index}_addresses"],
            )
            for index in range(count)
        ]
        return WorkloadProfile(
            name=bytes(archive["name"]).decode(),
            profiles=profiles,
            total_references=int(archive["total_references"]),
        )
