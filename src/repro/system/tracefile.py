"""Trace and profile persistence (npz archives).

The paper's profiling is offline and reused across runs of the same
program ("the profiling result can be reused across variations of the
program as long as the data structure and memory allocation site do
not change", Section 6.2).  These helpers store external traces and
per-variable profiles on disk so a profiling pass can be decoupled
from the evaluation runs that consume it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.core.selection import MappingSelection
from repro.cpu.trace import AccessTrace
from repro.errors import ProfilingError
from repro.profiling.profiler import VariableProfile, WorkloadProfile

__all__ = [
    "StageStore",
    "save_trace",
    "load_trace",
    "save_profile",
    "load_profile",
    "save_selection",
    "load_selection",
]

TRACE_FORMAT = 1
PROFILE_FORMAT = 1
SELECTION_FORMAT = 1


def save_trace(path: str | Path, trace: AccessTrace) -> Path:
    """Write an access trace to an ``.npz`` archive."""
    path = Path(path)
    np.savez_compressed(
        path,
        format=np.int64(TRACE_FORMAT),
        va=trace.va,
        is_write=trace.is_write,
        variable=trace.variable,
    )
    return path if path.suffix == ".npz" else path.with_suffix(".npz")


def load_trace(path: str | Path) -> AccessTrace:
    """Read an access trace written by :func:`save_trace`."""
    with np.load(Path(path)) as archive:
        if int(archive["format"]) != TRACE_FORMAT:
            raise ProfilingError("unsupported trace file format")
        return AccessTrace(
            va=archive["va"],
            is_write=archive["is_write"],
            variable=archive["variable"],
        )


def save_profile(path: str | Path, profile: WorkloadProfile) -> Path:
    """Write a workload profile (per-variable sub-traces) to disk."""
    path = Path(path)
    payload: dict[str, np.ndarray] = {
        "format": np.int64(PROFILE_FORMAT),
        "name": np.bytes_(profile.name.encode()),
        "total_references": np.int64(profile.total_references),
        "count": np.int64(len(profile.profiles)),
    }
    for index, variable in enumerate(profile.profiles):
        payload[f"v{index}_id"] = np.int64(variable.variable_id)
        payload[f"v{index}_name"] = np.bytes_(variable.name.encode())
        payload[f"v{index}_size"] = np.int64(variable.size_bytes)
        payload[f"v{index}_refs"] = np.int64(variable.references)
        payload[f"v{index}_addresses"] = variable.addresses
    np.savez_compressed(path, **payload)
    return path if path.suffix == ".npz" else path.with_suffix(".npz")


def save_selection(path: str | Path, selection: MappingSelection) -> Path:
    """Write a mapping selection (window perms + bindings) to disk."""
    path = Path(path)
    variable_ids = np.asarray(
        sorted(selection.variable_cluster), dtype=np.int64
    )
    clusters = np.asarray(
        [selection.variable_cluster[int(v)] for v in variable_ids],
        dtype=np.int64,
    )
    perms = (
        np.stack(selection.window_perms)
        if selection.window_perms
        else np.zeros((0, 0), dtype=np.int64)
    )
    np.savez_compressed(
        path,
        format=np.int64(SELECTION_FORMAT),
        method=np.bytes_(selection.method.encode()),
        k=np.int64(selection.k),
        window_perms=perms,
        variable_ids=variable_ids,
        clusters=clusters,
        elapsed_seconds=np.float64(selection.elapsed_seconds),
        details=np.bytes_(json.dumps(selection.details).encode()),
    )
    return path if path.suffix == ".npz" else path.with_suffix(".npz")


def load_selection(path: str | Path) -> MappingSelection:
    """Read a selection written by :func:`save_selection`."""
    with np.load(Path(path)) as archive:
        if int(archive["format"]) != SELECTION_FORMAT:
            raise ProfilingError("unsupported selection file format")
        perms = archive["window_perms"]
        return MappingSelection(
            method=bytes(archive["method"]).decode(),
            k=int(archive["k"]),
            window_perms=[perms[i] for i in range(perms.shape[0])],
            variable_cluster={
                int(v): int(c)
                for v, c in zip(archive["variable_ids"], archive["clusters"])
            },
            elapsed_seconds=float(archive["elapsed_seconds"]),
            details=json.loads(bytes(archive["details"]).decode()),
        )


def load_profile(path: str | Path) -> WorkloadProfile:
    """Read a profile written by :func:`save_profile`."""
    with np.load(Path(path)) as archive:
        if int(archive["format"]) != PROFILE_FORMAT:
            raise ProfilingError("unsupported profile file format")
        count = int(archive["count"])
        profiles = [
            VariableProfile(
                variable_id=int(archive[f"v{index}_id"]),
                name=bytes(archive[f"v{index}_name"]).decode(),
                size_bytes=int(archive[f"v{index}_size"]),
                references=int(archive[f"v{index}_refs"]),
                addresses=archive[f"v{index}_addresses"],
            )
            for index in range(count)
        ]
        return WorkloadProfile(
            name=bytes(archive["name"]).decode(),
            profiles=profiles,
            total_references=int(archive["total_references"]),
        )


class StageStore:
    """Content-addressed, process-safe store of experiment-stage outputs.

    Each stage output lives in ``root/<kind>/<key>.<ext>`` where
    ``key`` is the content hash of everything that determines the
    output (see :mod:`repro.system.stages`).  Identical stages are
    therefore computed once and shared across systems, sweeps and
    process restarts; changing any input yields a new key, so stale
    entries are never *read* (invalidation is by construction — old
    keys simply stop being referenced).

    Writes go through a per-process temporary file and an atomic
    ``os.replace``, so concurrent workers racing on the same key are
    harmless: both write identical bytes and one rename wins.
    """

    KINDS = ("trace", "profile", "selection", "result")

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.hits: dict[str, int] = {kind: 0 for kind in self.KINDS}
        self.misses: dict[str, int] = {kind: 0 for kind in self.KINDS}

    def _path(self, kind: str, key: str, ext: str) -> Path:
        if kind not in self.KINDS:
            raise ProfilingError(f"unknown stage kind {kind!r}")
        return self.root / kind / f"{key}.{ext}"

    def _publish(self, target: Path, write) -> None:
        target.parent.mkdir(parents=True, exist_ok=True)
        # Keep the real extension so the npz writers don't append one.
        tmp = target.parent / f".tmp-{os.getpid()}-{target.name}"
        try:
            write(tmp)
            os.replace(tmp, target)
        finally:
            tmp.unlink(missing_ok=True)

    def _record(self, kind: str, hit: bool) -> bool:
        counter = self.hits if hit else self.misses
        counter[kind] += 1
        return hit

    # -- traces / profiles / selections (npz) -------------------------------
    def load_trace(self, key: str) -> AccessTrace | None:
        """The cached trace under a key, if present."""
        path = self._path("trace", key, "npz")
        if not self._record("trace", path.exists()):
            return None
        return load_trace(path)

    def store_trace(self, key: str, trace: AccessTrace) -> None:
        """Publish a trace under a key."""
        self._publish(
            self._path("trace", key, "npz"), lambda p: save_trace(p, trace)
        )

    def load_profile(self, key: str) -> WorkloadProfile | None:
        """The cached profile under a key, if present."""
        path = self._path("profile", key, "npz")
        if not self._record("profile", path.exists()):
            return None
        return load_profile(path)

    def store_profile(self, key: str, profile: WorkloadProfile) -> None:
        """Publish a profile under a key."""
        self._publish(
            self._path("profile", key, "npz"),
            lambda p: save_profile(p, profile),
        )

    def load_selection(self, key: str) -> MappingSelection | None:
        """The cached mapping selection under a key, if present."""
        path = self._path("selection", key, "npz")
        if not self._record("selection", path.exists()):
            return None
        return load_selection(path)

    def store_selection(self, key: str, selection: MappingSelection) -> None:
        """Publish a selection under a key."""
        self._publish(
            self._path("selection", key, "npz"),
            lambda p: save_selection(p, selection),
        )

    # -- results (json) ------------------------------------------------------
    def load_result(self, key: str) -> dict | None:
        """The cached result dict under a key, if present."""
        path = self._path("result", key, "json")
        if not self._record("result", path.exists()):
            return None
        return json.loads(path.read_text())

    def store_result(self, key: str, result: dict) -> None:
        """Publish a result dict under a key."""
        text = json.dumps(result)
        self._publish(
            self._path("result", key, "json"), lambda p: p.write_text(text)
        )

    # -- accounting ----------------------------------------------------------
    def counters(self) -> dict[str, dict[str, int]]:
        """Per-kind hit/miss counts accumulated by this store instance."""
        return {
            kind: {"hits": self.hits[kind], "misses": self.misses[kind]}
            for kind in self.KINDS
        }
