"""Trace and profile persistence (npz archives).

The paper's profiling is offline and reused across runs of the same
program ("the profiling result can be reused across variations of the
program as long as the data structure and memory allocation site do
not change", Section 6.2).  These helpers store external traces and
per-variable profiles on disk so a profiling pass can be decoupled
from the evaluation runs that consume it.

:class:`StageStore` is the *self-healing* content-addressed cache the
experiment engine builds on: every entry carries a checksum sidecar,
and an entry that fails its checksum or its decoder is quarantined to
``root/quarantine/`` and reported as a miss — a torn write can cost a
recomputation but never poisons the cache.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from pathlib import Path

import numpy as np

from repro.core.selection import MappingSelection
from repro.cpu.trace import AccessTrace
from repro.errors import CacheCorruptionError, ProfilingError
from repro.profiling.profiler import VariableProfile, WorkloadProfile

__all__ = [
    "StageStore",
    "save_trace",
    "load_trace",
    "save_profile",
    "load_profile",
    "save_selection",
    "load_selection",
]

TRACE_FORMAT = 1
PROFILE_FORMAT = 1
SELECTION_FORMAT = 1


def save_trace(path: str | Path, trace: AccessTrace) -> Path:
    """Write an access trace to an ``.npz`` archive."""
    path = Path(path)
    np.savez_compressed(
        path,
        format=np.int64(TRACE_FORMAT),
        va=trace.va,
        is_write=trace.is_write,
        variable=trace.variable,
    )
    return path if path.suffix == ".npz" else path.with_suffix(".npz")


def load_trace(path: str | Path) -> AccessTrace:
    """Read an access trace written by :func:`save_trace`."""
    with np.load(Path(path)) as archive:
        if int(archive["format"]) != TRACE_FORMAT:
            raise ProfilingError("unsupported trace file format")
        return AccessTrace(
            va=archive["va"],
            is_write=archive["is_write"],
            variable=archive["variable"],
        )


def save_profile(path: str | Path, profile: WorkloadProfile) -> Path:
    """Write a workload profile (per-variable sub-traces) to disk."""
    path = Path(path)
    payload: dict[str, np.ndarray] = {
        "format": np.int64(PROFILE_FORMAT),
        "name": np.bytes_(profile.name.encode()),
        "total_references": np.int64(profile.total_references),
        "count": np.int64(len(profile.profiles)),
    }
    for index, variable in enumerate(profile.profiles):
        payload[f"v{index}_id"] = np.int64(variable.variable_id)
        payload[f"v{index}_name"] = np.bytes_(variable.name.encode())
        payload[f"v{index}_size"] = np.int64(variable.size_bytes)
        payload[f"v{index}_refs"] = np.int64(variable.references)
        payload[f"v{index}_addresses"] = variable.addresses
    np.savez_compressed(path, **payload)
    return path if path.suffix == ".npz" else path.with_suffix(".npz")


def save_selection(path: str | Path, selection: MappingSelection) -> Path:
    """Write a mapping selection (window perms + bindings) to disk."""
    path = Path(path)
    variable_ids = np.asarray(
        sorted(selection.variable_cluster), dtype=np.int64
    )
    clusters = np.asarray(
        [selection.variable_cluster[int(v)] for v in variable_ids],
        dtype=np.int64,
    )
    perms = (
        np.stack(selection.window_perms)
        if selection.window_perms
        else np.zeros((0, 0), dtype=np.int64)
    )
    np.savez_compressed(
        path,
        format=np.int64(SELECTION_FORMAT),
        method=np.bytes_(selection.method.encode()),
        k=np.int64(selection.k),
        window_perms=perms,
        variable_ids=variable_ids,
        clusters=clusters,
        elapsed_seconds=np.float64(selection.elapsed_seconds),
        details=np.bytes_(json.dumps(selection.details).encode()),
    )
    return path if path.suffix == ".npz" else path.with_suffix(".npz")


def load_selection(path: str | Path) -> MappingSelection:
    """Read a selection written by :func:`save_selection`."""
    with np.load(Path(path)) as archive:
        if int(archive["format"]) != SELECTION_FORMAT:
            raise ProfilingError("unsupported selection file format")
        perms = archive["window_perms"]
        return MappingSelection(
            method=bytes(archive["method"]).decode(),
            k=int(archive["k"]),
            window_perms=[perms[i] for i in range(perms.shape[0])],
            variable_cluster={
                int(v): int(c)
                for v, c in zip(archive["variable_ids"], archive["clusters"])
            },
            elapsed_seconds=float(archive["elapsed_seconds"]),
            details=json.loads(bytes(archive["details"]).decode()),
        )


def load_profile(path: str | Path) -> WorkloadProfile:
    """Read a profile written by :func:`save_profile`."""
    with np.load(Path(path)) as archive:
        if int(archive["format"]) != PROFILE_FORMAT:
            raise ProfilingError("unsupported profile file format")
        count = int(archive["count"])
        profiles = [
            VariableProfile(
                variable_id=int(archive[f"v{index}_id"]),
                name=bytes(archive[f"v{index}_name"]).decode(),
                size_bytes=int(archive[f"v{index}_size"]),
                references=int(archive[f"v{index}_refs"]),
                addresses=archive[f"v{index}_addresses"],
            )
            for index in range(count)
        ]
        return WorkloadProfile(
            name=bytes(archive["name"]).decode(),
            profiles=profiles,
            total_references=int(archive["total_references"]),
        )


_TMP_IDS = itertools.count()
"""Per-process tmp-file serial: makes concurrent same-key writes from
threads of one process collide-free (the PID alone is not unique)."""


def _digest_path(path: Path) -> Path:
    """The checksum sidecar path for a blob."""
    return path.with_name(path.name + ".sha256")


def _file_digest(path: Path) -> str:
    """Hex sha256 of a file's bytes."""
    return hashlib.sha256(path.read_bytes()).hexdigest()


def _load_json(path: Path) -> dict:
    return json.loads(path.read_text())


class StageStore:
    """Content-addressed, process-safe, self-healing stage-output store.

    Each stage output lives in ``root/<kind>/<key>.<ext>`` where
    ``key`` is the content hash of everything that determines the
    output (see :mod:`repro.system.stages`).  Identical stages are
    therefore computed once and shared across systems, sweeps and
    process restarts; changing any input yields a new key, so stale
    entries are never *read* (invalidation is by construction — old
    keys simply stop being referenced).

    Writes go through a per-call temporary file and an atomic
    ``os.replace``, so concurrent writers racing on the same key are
    harmless: both write identical bytes and one rename wins.  Every
    blob gets a ``.sha256`` sidecar; a load whose checksum or decoder
    fails *quarantines* the entry (moves it to ``root/quarantine/``
    with a ``.reason`` note) and returns a miss, so one torn write
    costs at most a recomputation, never a crashing sweep.

    ``faults`` optionally wires a :class:`~repro.faults.FaultPlan`
    into the load path (sites ``store.load.<kind>``) for resilience
    testing.
    """

    KINDS = ("trace", "profile", "selection", "result", "sweep")
    QUARANTINE = "quarantine"

    _READERS = {
        "trace": load_trace,
        "profile": load_profile,
        "selection": load_selection,
        "result": _load_json,
        "sweep": _load_json,
    }

    def __init__(self, root: str | Path, faults=None):
        self.root = Path(root)
        self.faults = faults
        self.hits: dict[str, int] = {kind: 0 for kind in self.KINDS}
        self.misses: dict[str, int] = {kind: 0 for kind in self.KINDS}
        self.corruptions: dict[str, int] = {kind: 0 for kind in self.KINDS}

    @classmethod
    def _ext(cls, kind: str) -> str:
        return "json" if kind in ("result", "sweep") else "npz"

    def _path(self, kind: str, key: str, ext: str) -> Path:
        if kind not in self.KINDS:
            raise ProfilingError(f"unknown stage kind {kind!r}")
        return self.root / kind / f"{key}.{ext}"

    def _publish(self, target: Path, write) -> None:
        target.parent.mkdir(parents=True, exist_ok=True)
        # Keep the real extension so the npz writers don't append one;
        # the serial keeps same-key writes from one process distinct.
        tmp = target.parent / (
            f".tmp-{os.getpid()}-{next(_TMP_IDS)}-{target.name}"
        )
        digest_tmp = target.parent / f"{tmp.name}.sha256"
        try:
            write(tmp)
            digest_tmp.write_text(_file_digest(tmp) + "\n")
            os.replace(tmp, target)
            os.replace(digest_tmp, _digest_path(target))
        finally:
            tmp.unlink(missing_ok=True)
            digest_tmp.unlink(missing_ok=True)

    def _record(self, kind: str, hit: bool) -> bool:
        counter = self.hits if hit else self.misses
        counter[kind] += 1
        return hit

    # -- the self-healing load path ------------------------------------------
    def _check(self, path: Path) -> None:
        """Raise :class:`CacheCorruptionError` on a checksum mismatch.

        Entries without a sidecar (pre-checksum caches, or a crash
        between blob and sidecar publication) are admitted if their
        decoder accepts them; the sidecar is backfilled after a
        successful load.
        """
        sidecar = _digest_path(path)
        if not sidecar.exists():
            return
        expected = sidecar.read_text().strip()
        if _file_digest(path) != expected:
            raise CacheCorruptionError(
                f"checksum mismatch for cache entry {path.name}"
            )

    def _backfill_digest(self, path: Path) -> None:
        sidecar = _digest_path(path)
        if not sidecar.exists():
            tmp = path.parent / f".tmp-{os.getpid()}-{next(_TMP_IDS)}-sha256"
            tmp.write_text(_file_digest(path) + "\n")
            os.replace(tmp, sidecar)

    def _quarantine(self, kind: str, path: Path, reason: str) -> None:
        """Move a bad entry (blob + sidecar) out of the cache's way."""
        qdir = self.root / self.QUARANTINE / kind
        qdir.mkdir(parents=True, exist_ok=True)
        for victim in (path, _digest_path(path)):
            if victim.exists():
                os.replace(victim, qdir / victim.name)
        (qdir / f"{path.name}.reason").write_text(reason + "\n")

    def _load(self, kind: str, key: str, reader):
        path = self._path(kind, key, self._ext(kind))
        if not path.exists():
            self._record(kind, False)
            return None
        if self.faults is not None:
            self.faults.inject(f"store.load.{kind}", key, path=path)
        try:
            self._check(path)
            value = reader(path)
        except Exception as exc:  # noqa: BLE001 — heal, don't crash
            self._quarantine(kind, path, f"{type(exc).__name__}: {exc}")
            self.corruptions[kind] += 1
            self._record(kind, False)
            return None
        self._record(kind, True)
        self._backfill_digest(path)
        return value

    # -- traces / profiles / selections (npz) -------------------------------
    def load_trace(self, key: str) -> AccessTrace | None:
        """The cached trace under a key; corrupt entries are a miss."""
        return self._load("trace", key, load_trace)

    def store_trace(self, key: str, trace: AccessTrace) -> None:
        """Publish a trace under a key."""
        self._publish(
            self._path("trace", key, "npz"), lambda p: save_trace(p, trace)
        )

    def load_profile(self, key: str) -> WorkloadProfile | None:
        """The cached profile under a key; corrupt entries are a miss."""
        return self._load("profile", key, load_profile)

    def store_profile(self, key: str, profile: WorkloadProfile) -> None:
        """Publish a profile under a key."""
        self._publish(
            self._path("profile", key, "npz"),
            lambda p: save_profile(p, profile),
        )

    def load_selection(self, key: str) -> MappingSelection | None:
        """The cached selection under a key; corrupt entries are a miss."""
        return self._load("selection", key, load_selection)

    def store_selection(self, key: str, selection: MappingSelection) -> None:
        """Publish a selection under a key."""
        self._publish(
            self._path("selection", key, "npz"),
            lambda p: save_selection(p, selection),
        )

    # -- results / sweep manifests (json) ------------------------------------
    def load_result(self, key: str) -> dict | None:
        """The cached result dict under a key; corrupt entries are a miss."""
        return self._load("result", key, _load_json)

    def store_result(self, key: str, result: dict) -> None:
        """Publish a result dict under a key."""
        text = json.dumps(result)
        self._publish(
            self._path("result", key, "json"), lambda p: p.write_text(text)
        )

    def load_manifest(self, key: str) -> dict | None:
        """The sweep manifest under a key; corrupt entries are a miss."""
        return self._load("sweep", key, _load_json)

    def store_manifest(self, key: str, manifest: dict) -> None:
        """Publish a sweep manifest under a key."""
        text = json.dumps(manifest)
        self._publish(
            self._path("sweep", key, "json"), lambda p: p.write_text(text)
        )

    # -- maintenance ----------------------------------------------------------
    def verify(self) -> dict:
        """Checksum + decode every entry, quarantining the bad ones.

        Returns a per-kind report: entries checked, entries healthy,
        and the file names moved to quarantine.
        """
        report: dict[str, dict] = {}
        for kind in self.KINDS:
            directory = self.root / kind
            checked = ok = 0
            quarantined: list[str] = []
            if directory.is_dir():
                for path in sorted(directory.glob(f"*.{self._ext(kind)}")):
                    checked += 1
                    try:
                        self._check(path)
                        self._READERS[kind](path)
                    except Exception as exc:  # noqa: BLE001
                        self._quarantine(
                            kind, path, f"{type(exc).__name__}: {exc}"
                        )
                        self.corruptions[kind] += 1
                        quarantined.append(path.name)
                    else:
                        ok += 1
                        self._backfill_digest(path)
            report[kind] = {
                "checked": checked,
                "ok": ok,
                "quarantined": quarantined,
            }
        return report

    def gc(self, purge_quarantine: bool = False) -> dict:
        """Sweep maintenance debris out of the cache tree.

        Removes abandoned ``.tmp-*`` files (crashed writers) and
        orphaned ``.sha256`` sidecars; with ``purge_quarantine`` the
        quarantine directory is emptied too.  Returns removal counts.
        """
        removed = {"tmp": 0, "orphan_sidecars": 0, "quarantined": 0}
        for tmp in self.root.glob("*/.tmp-*"):
            tmp.unlink(missing_ok=True)
            removed["tmp"] += 1
        for sidecar in self.root.glob("*/*.sha256"):
            if not sidecar.with_suffix("").exists():
                sidecar.unlink(missing_ok=True)
                removed["orphan_sidecars"] += 1
        if purge_quarantine:
            qroot = self.root / self.QUARANTINE
            if qroot.is_dir():
                for path in sorted(
                    qroot.rglob("*"), key=lambda p: len(p.parts), reverse=True
                ):
                    if path.is_file():
                        path.unlink(missing_ok=True)
                        removed["quarantined"] += 1
                    elif path.is_dir():
                        path.rmdir()
        return removed

    # -- accounting ----------------------------------------------------------
    def counters(self) -> dict[str, dict[str, int]]:
        """Per-kind hit/miss/corruption counts for this store instance."""
        return {
            kind: {
                "hits": self.hits[kind],
                "misses": self.misses[kind],
                "corruptions": self.corruptions[kind],
            }
            for kind in self.KINDS
        }
