"""Translation-datapath microbenchmark (``python -m repro bench``).

Measures the hot address-math stages of every sweep cell — *translate*
(PA -> HA), *decode* (HA -> channel/bank/row/column) and *evaluate*
(translate + decode + the fast window model) — for the paper's mapping
families, and compares the fused bit-operator pipeline against the
**pre-refactor baseline**: the per-bit shift/mask loop the mapping
classes used before they lowered to :mod:`repro.core.bitmatrix`, plus
the field-by-field extraction ``decode_trace`` used before plans.  The
baseline implementations are kept verbatim in this module so the
speedup is recorded against a fixed reference *in the same run*, on the
same host, giving future PRs a perf trajectory to compare against
(``BENCH_translation.json``).

Correctness is asserted, not assumed: every fused cell is checked
bit-identical to its baseline before it is timed.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.bitshuffle import select_global_mapping
from repro.core.chunks import ChunkGeometry
from repro.core.hashing import default_hash_mapping
from repro.core.mapping import PermutationMapping, identity_mapping
from repro.core.sdam import GlobalMappingTranslator, SDAMController
from repro.hbm.config import HBMConfig, hbm2_config
from repro.hbm.decode import DecodedTrace, decode_translated
from repro.hbm.fastmodel import WindowModel
from repro.profiling.bfrv import bit_flip_rate_vector

__all__ = [
    "run_benchmark",
    "run_evaluate_benchmark",
    "run_tier_benchmark",
    "write_report",
    "DEFAULT_REPORT_PATH",
    "EVALUATE_REPORT_PATH",
    "TIER_REPORT_PATH",
]

DEFAULT_REPORT_PATH = "BENCH_translation.json"
EVALUATE_REPORT_PATH = "BENCH_evaluate.json"
TIER_REPORT_PATH = "BENCH_tier.json"
SCENARIOS = ("bs_dm", "bs_bsm", "bs_hm", "sdm_bsm")
STAGES = ("translate", "decode", "translate_decode", "evaluate")


# -- the pre-refactor reference implementations (the recorded baseline) ----
def _reference_apply_permutation(source: np.ndarray, pa: np.ndarray) -> np.ndarray:
    """Old ``PermutationMapping.apply``: one shift/mask pass per HA bit."""
    ha = np.zeros_like(pa)
    for ha_bit in range(source.size):
        pa_bit = int(source[ha_bit])
        if pa_bit == ha_bit:
            ha |= pa & np.uint64(1 << ha_bit)
        else:
            bit = (pa >> np.uint64(pa_bit)) & np.uint64(1)
            ha |= bit << np.uint64(ha_bit)
    return ha


def _reference_apply_linear(row_masks: np.ndarray, pa: np.ndarray) -> np.ndarray:
    """Old ``LinearMapping.apply``: per-row popcount parity."""
    ha = np.zeros_like(pa)
    for ha_bit in range(row_masks.size):
        mask = row_masks[ha_bit]
        if mask == 0:
            continue
        v = (pa & mask).copy()
        for shift in (32, 16, 8, 4, 2, 1):
            v ^= v >> np.uint64(shift)
        ha |= (v & np.uint64(1)) << np.uint64(ha_bit)
    return ha


def _row_masks(matrix: np.ndarray) -> np.ndarray:
    return np.array(
        [
            int("".join("1" if b else "0" for b in row[::-1]), 2)
            for row in matrix
        ],
        dtype=np.uint64,
    )


def _reference_decode(ha: np.ndarray, config: HBMConfig) -> DecodedTrace:
    """Old ``decode_trace``: layout field extraction on a full HA array."""
    layout = config.layout()
    fields = layout.decode(ha)
    channel = fields["channel"].astype(np.int64)
    bank = fields["bank"].astype(np.int64)
    return DecodedTrace(
        channel=channel,
        bank=bank,
        row=fields["row"].astype(np.int64),
        column=fields["column"].astype(np.int64),
        global_bank=channel * config.banks_per_channel + bank,
    )


def _make_reference_translate(translator):
    """The pre-refactor translate path for either translator kind."""
    if isinstance(translator, SDAMController):
        controller = translator

        def translate(pa: np.ndarray) -> np.ndarray:
            controller.geometry.check_address(pa)
            chunk_no = controller.geometry.chunk_number(pa)
            mapping_idx = controller.cmt.mapping_index_of(np.asarray(chunk_no))
            ha = pa.copy()
            for idx in np.unique(mapping_idx):
                if idx == 0:
                    continue
                select = mapping_idx == idx
                source = controller.full_mapping(int(idx)).source
                ha[select] = _reference_apply_permutation(source, pa[select])
            return ha

        return translate
    mapping = translator.mapping
    if isinstance(mapping, PermutationMapping):
        source = mapping.source
        return lambda pa: _reference_apply_permutation(source, pa)
    row_masks = _row_masks(mapping.as_matrix())
    return lambda pa: _reference_apply_linear(row_masks, pa)


# -- scenario construction --------------------------------------------------
def _build_translator(scenario: str, config: HBMConfig, pa: np.ndarray, seed: int):
    layout = config.layout()
    if scenario == "bs_dm":
        return GlobalMappingTranslator(identity_mapping(layout.width))
    if scenario == "bs_hm":
        return GlobalMappingTranslator(default_hash_mapping(layout))
    if scenario == "bs_bsm":
        rates = bit_flip_rate_vector(pa, layout.width)
        return GlobalMappingTranslator(select_global_mapping(rates, layout))
    if scenario == "sdm_bsm":
        geometry = ChunkGeometry(total_bytes=config.total_bytes)
        controller = SDAMController(geometry)
        rng = np.random.default_rng(seed)
        mapping_ids = [
            controller.register_mapping(rng.permutation(geometry.window_bits))
            for _ in range(8)
        ]
        for chunk_no in range(geometry.num_chunks):
            controller.assign_chunk(
                chunk_no, mapping_ids[chunk_no % len(mapping_ids)]
            )
        return controller
    raise ValueError(f"unknown bench scenario {scenario!r}")


def _assert_equal_decoded(a: DecodedTrace, b: DecodedTrace, what: str) -> None:
    for name in ("channel", "bank", "row", "column", "global_bank"):
        if not np.array_equal(getattr(a, name), getattr(b, name)):
            raise AssertionError(
                f"{what}: fused {name} diverges from the baseline"
            )


def _time_ns(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter_ns()
        fn()
        best = min(best, time.perf_counter_ns() - start)
    return float(best)


def _cell(baseline_ns: float, fused_ns: float, accesses: int) -> dict:
    return {
        "baseline_ns": baseline_ns,
        "fused_ns": fused_ns,
        "speedup": baseline_ns / fused_ns if fused_ns else float("inf"),
        "baseline_maccesses_per_s": accesses * 1e3 / baseline_ns,
        "fused_maccesses_per_s": accesses * 1e3 / fused_ns,
    }


def run_benchmark(
    accesses: int = 1_000_000,
    seed: int = 0,
    repeats: int = 3,
    config: HBMConfig | None = None,
    scenarios: tuple[str, ...] = SCENARIOS,
) -> dict:
    """Time baseline vs fused translate/decode/evaluate; return the report.

    The headline number — the acceptance gate and the trajectory future
    PRs compare against — is ``summary.translate_decode`` (geomean over
    scenarios of baseline translate+decode time over fused time).
    """
    config = config or hbm2_config()
    rng = np.random.default_rng(seed)
    line = config.line_bytes
    pa = (
        rng.integers(0, config.total_bytes // line, accesses, dtype=np.uint64)
        * np.uint64(line)
    )
    model = WindowModel(config, max_inflight=64)
    cells: dict[str, dict] = {}
    for scenario in scenarios:
        translator = _build_translator(scenario, config, pa, seed)
        reference_translate = _make_reference_translate(translator)

        # Bit-exactness first; only a correct pipeline gets timed.
        baseline_decoded = _reference_decode(reference_translate(pa), config)
        fused_decoded = decode_translated(pa, translator, config)
        _assert_equal_decoded(baseline_decoded, fused_decoded, scenario)

        translate_base = _time_ns(lambda: reference_translate(pa), repeats)
        translate_fused = _time_ns(lambda: translator.translate(pa), repeats)
        ha = translator.translate(pa)
        decode_base = _time_ns(lambda: _reference_decode(ha, config), repeats)
        decode_fused = _time_ns(
            lambda: decode_translated(
                ha, _identity_translator_for(config), config
            ),
            repeats,
        )
        fused_pipeline = _time_ns(
            lambda: decode_translated(pa, translator, config), repeats
        )
        evaluate_base = _time_ns(
            lambda: model.simulate_decoded(
                _reference_decode(reference_translate(pa), config)
            ),
            repeats,
        )
        evaluate_fused = _time_ns(
            lambda: model.simulate_decoded(
                decode_translated(pa, translator, config)
            ),
            repeats,
        )
        cells[scenario] = {
            "translate": _cell(translate_base, translate_fused, accesses),
            "decode": _cell(decode_base, decode_fused, accesses),
            "translate_decode": _cell(
                translate_base + decode_base, fused_pipeline, accesses
            ),
            "evaluate": _cell(evaluate_base, evaluate_fused, accesses),
        }
    summary = {
        stage: float(
            np.exp(
                np.mean(
                    [np.log(cells[s][stage]["speedup"]) for s in scenarios]
                )
            )
        )
        for stage in STAGES
    }
    return {
        "schema": 1,
        "benchmark": "translation-datapath",
        "accesses": int(accesses),
        "seed": int(seed),
        "repeats": int(repeats),
        "config": {
            "name": config.name,
            "address_bits": config.address_bits,
            "num_channels": config.num_channels,
        },
        "unix_time": time.time(),
        "cells": cells,
        "summary_speedup_geomean": summary,
    }


def run_evaluate_benchmark(
    accesses: int = 200_000,
    seed: int = 0,
    repeats: int = 2,
    config: HBMConfig | None = None,
    scenarios: tuple[str, ...] = SCENARIOS,
    backend: str = "vector",
    workers: int = 0,
    chunk_accesses: int = 1 << 16,
) -> dict:
    """Time end-to-end ``evaluate`` under the event reference vs ``backend``.

    The companion of :func:`run_benchmark` for the memory-model wall:
    the *baseline* is the pre-vectorization event-loop evaluate
    (fused translate+decode feeding :class:`~repro.hbm.device.
    HBMDevice`), the *candidate* is the chunk-streamed ``backend`` tier
    (``"vector"`` by default, optionally channel-sharded over
    ``workers`` processes).  The headline number — the acceptance gate —
    is ``summary_speedup_geomean.evaluate``.

    Each cell also records a calibration block (makespan ratio,
    throughput ratio, row-hit-rate delta of candidate vs event) so the
    speedup is never reported detached from the fidelity it was bought
    at; the hard per-scenario bands live in
    ``tests/hbm/test_calibration.py``.
    """
    from repro.hbm.backend import create_backend
    from repro.hbm.decode import iter_decoded_chunks

    config = config or hbm2_config()
    rng = np.random.default_rng(seed)
    line = config.line_bytes
    pa = (
        rng.integers(0, config.total_bytes // line, accesses, dtype=np.uint64)
        * np.uint64(line)
    )
    baseline_model = create_backend("event", config, max_inflight=64)
    candidate_kwargs: dict = {"max_inflight": 64}
    if workers:
        candidate_kwargs["workers"] = workers
    candidate_model = create_backend(backend, config, **candidate_kwargs)
    cells: dict[str, dict] = {}
    for scenario in scenarios:
        translator = _build_translator(scenario, config, pa, seed)

        def run_baseline():
            return baseline_model.simulate_decoded(
                decode_translated(pa, translator, config)
            )

        def run_candidate():
            return candidate_model.simulate_decoded(
                iter_decoded_chunks(pa, translator, config, chunk_accesses)
            )

        base_stats = run_baseline()
        cand_stats = run_candidate()
        baseline_ns = _time_ns(run_baseline, repeats)
        candidate_ns = _time_ns(run_candidate, repeats)
        cells[scenario] = {
            "evaluate": _cell(baseline_ns, candidate_ns, accesses),
            "calibration": {
                "makespan_ratio": cand_stats.makespan_ns
                / base_stats.makespan_ns
                if base_stats.makespan_ns
                else float("inf"),
                "throughput_ratio": cand_stats.throughput_gbps
                / base_stats.throughput_gbps
                if base_stats.throughput_gbps
                else float("inf"),
                "hit_rate_delta": cand_stats.row_hit_rate
                - base_stats.row_hit_rate,
                "event_makespan_ns": base_stats.makespan_ns,
                "candidate_makespan_ns": cand_stats.makespan_ns,
            },
        }
    geomean = float(
        np.exp(
            np.mean(
                [
                    np.log(cells[s]["evaluate"]["speedup"])
                    for s in scenarios
                ]
            )
        )
    )
    health = getattr(candidate_model, "last_health", None)
    sharded = bool(health.sharded) if health is not None else False
    if workers and not sharded:
        import warnings

        detail = (
            health.summary()
            if health is not None
            else "backend reported no health record"
        )
        warnings.warn(
            f"bench --workers {workers} asked for sharded execution but "
            f"the run degraded ({detail}); the recorded numbers measure "
            "the fallback path, not the worker pool",
            RuntimeWarning,
            stacklevel=2,
        )
    return {
        "schema": 1,
        "benchmark": "end-to-end-evaluate",
        "backend": backend,
        "workers": int(workers),
        "sharded": sharded,
        "backend_health": health.to_dict() if health is not None else None,
        "chunk_accesses": int(chunk_accesses),
        "accesses": int(accesses),
        "seed": int(seed),
        "repeats": int(repeats),
        "config": {
            "name": config.name,
            "address_bits": config.address_bits,
            "num_channels": config.num_channels,
        },
        "unix_time": time.time(),
        "cells": cells,
        "summary_speedup_geomean": {"evaluate": geomean},
    }


def run_tier_benchmark(
    accesses: int = 65_536,
    seed: int = 0,
    repeats: int = 2,
    config: HBMConfig | None = None,
    footprint_bytes: int = 4 * 1024 * 1024,
) -> dict:
    """SmartSwap tiered placement vs the all-slow baseline.

    For each workload shape (hot/cold skew and uniform capacity
    pressure) the same trace runs through two tiered backends: SmartSwap
    with a fast tier a quarter of the footprint, and the all-slow
    baseline (``fast_pages=0``).  Cells record both the *modeled*
    makespans — the headline ``speedup`` and the acceptance gate
    ``summary_speedup_geomean.smart`` — and the host simulation time,
    plus each side's swap/translation traffic so the placement win is
    never detached from the overhead it was bought at.
    """
    from repro.tier.backend import TieredBackend
    from repro.workloads.synthetic import TieredPressureWorkload

    config = config or hbm2_config()
    fast_pages = (footprint_bytes >> 12) // 4
    cells: dict[str, dict] = {}
    for scenario, hot_fraction in (("skew", 0.9), ("pressure", 0.0)):
        workload = TieredPressureWorkload(
            footprint_bytes=footprint_bytes,
            hot_fraction=hot_fraction,
            accesses=accesses,
        )
        ha = workload.trace({"arena": 0}, input_seed=seed)[0].va
        smart = TieredBackend(config, policy="smart", fast_pages=fast_pages)
        all_slow = TieredBackend(config, policy="slow", fast_pages=0)

        def run_smart():
            return smart.simulate(ha)

        def run_all_slow():
            return all_slow.simulate(ha)

        smart_stats = run_smart()
        smart_traffic = smart.last_traffic.to_dict()
        slow_stats = run_all_slow()
        slow_traffic = all_slow.last_traffic.to_dict()
        smart_host_ns = _time_ns(run_smart, repeats)
        slow_host_ns = _time_ns(run_all_slow, repeats)
        cells[scenario] = {
            "smart_ns": smart_stats.makespan_ns,
            "all_slow_ns": slow_stats.makespan_ns,
            "speedup": (
                slow_stats.makespan_ns / smart_stats.makespan_ns
                if smart_stats.makespan_ns
                else float("inf")
            ),
            "host_smart_ns": smart_host_ns,
            "host_all_slow_ns": slow_host_ns,
            "smart_traffic": smart_traffic,
            "all_slow_traffic": slow_traffic,
        }
    geomean = float(
        np.exp(np.mean([np.log(cell["speedup"]) for cell in cells.values()]))
    )
    return {
        "schema": 1,
        "benchmark": "tiered-memory",
        "fast_pages": int(fast_pages),
        "footprint_bytes": int(footprint_bytes),
        "accesses": int(accesses),
        "seed": int(seed),
        "repeats": int(repeats),
        "config": {
            "name": config.name,
            "address_bits": config.address_bits,
            "num_channels": config.num_channels,
        },
        "unix_time": time.time(),
        "cells": cells,
        "summary_speedup_geomean": {"smart": geomean},
    }


_identity_translators: dict[HBMConfig, GlobalMappingTranslator] = {}


def _identity_translator_for(config: HBMConfig) -> GlobalMappingTranslator:
    translator = _identity_translators.get(config)
    if translator is None:
        translator = GlobalMappingTranslator(
            identity_mapping(config.layout().width)
        )
        _identity_translators[config] = translator
    return translator


def write_report(report: dict, path: "str | Path") -> Path:
    """Write the benchmark report as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path
