"""The evaluated system configurations (Section 7.3).

Seven systems, exactly the paper's comparison set:

* ``BS+DM``   — baseline, boot-time default (identity) mapping;
* ``BS+BSM``  — one global bit-shuffle mapping chosen from the profile
  of the whole workload mix;
* ``BS+HM``   — one global hashing-based mapping (no profiling);
* ``SDM+BSM`` — SDAM with one bit-shuffle mapping per application;
* ``SDM+BSM+ML`` — SDAM + K-Means clustering of major variables
  (4 or 32 clusters);
* ``SDM+BSM+DL`` — SDAM + DL-assisted K-Means (4 or 32 clusters).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["SystemConfig", "standard_systems", "system_by_key"]

POLICIES = ("default", "bsm", "hash")
CLUSTERINGS = (None, "kmeans", "dl")


@dataclass(frozen=True)
class SystemConfig:
    """One point in the paper's system-comparison space."""

    key: str
    label: str
    sdam: bool
    policy: str  # global mapping policy for non-SDAM systems
    clustering: str | None = None
    clusters: int = 0

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ConfigError(f"unknown policy {self.policy!r}")
        if self.clustering not in CLUSTERINGS:
            raise ConfigError(f"unknown clustering {self.clustering!r}")
        if self.clustering is not None and not self.sdam:
            raise ConfigError("clustering requires SDAM")
        if self.clustering is not None and self.clusters < 1:
            raise ConfigError("clustered systems need clusters >= 1")

    @property
    def needs_profiling(self) -> bool:
        """Whether the configuration requires an offline profiling run."""
        return self.sdam or self.policy == "bsm"


BS_DM = SystemConfig("bs_dm", "BS+DM", sdam=False, policy="default")
BS_BSM = SystemConfig("bs_bsm", "BS+BSM", sdam=False, policy="bsm")
BS_HM = SystemConfig("bs_hm", "BS+HM", sdam=False, policy="hash")
SDM_BSM = SystemConfig("sdm_bsm", "SDM+BSM", sdam=True, policy="bsm")


def _clustered(kind: str, clusters: int) -> SystemConfig:
    label = "ML" if kind == "kmeans" else "DL"
    return SystemConfig(
        key=f"sdm_bsm_{label.lower()}{clusters}",
        label=f"SDM+BSM+{label}({clusters})",
        sdam=True,
        policy="bsm",
        clustering=kind,
        clusters=clusters,
    )


def standard_systems(cluster_counts: tuple[int, ...] = (4, 32)) -> list[SystemConfig]:
    """The full Fig. 12 comparison set."""
    systems = [BS_DM, BS_BSM, BS_HM, SDM_BSM]
    for count in cluster_counts:
        systems.append(_clustered("kmeans", count))
    for count in cluster_counts:
        systems.append(_clustered("dl", count))
    return systems


def system_by_key(key: str) -> SystemConfig:
    """Look up a configuration by its short key (e.g. ``sdm_bsm_dl32``)."""
    for system in standard_systems():
        if system.key == key:
            return system
    # Allow arbitrary cluster counts like sdm_bsm_ml8.
    for kind, tag in (("kmeans", "ml"), ("dl", "dl")):
        prefix = f"sdm_bsm_{tag}"
        if key.startswith(prefix) and key[len(prefix) :].isdigit():
            return _clustered(kind, int(key[len(prefix) :]))
    raise ConfigError(f"unknown system key {key!r}")
