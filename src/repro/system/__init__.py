"""System composition: configurations, machines, experiments, runner."""

from repro.system.config import SystemConfig, standard_systems, system_by_key
from repro.system.corun import CorunMachine, CorunResult
from repro.system.experiment import (
    SpeedupTable,
    core_sweep,
    frequency_sweep,
    run_suite,
)
from repro.system.machine import ExternalSummary, Machine, MachineResult
from repro.system.reporting import format_series, format_table
from repro.system.runner import (
    CellError,
    ExperimentRunner,
    RetryPolicy,
    StageMetrics,
    SuiteResult,
)
from repro.system.stages import MachineParams
from repro.system.tracefile import (
    StageStore,
    load_profile,
    load_selection,
    load_trace,
    save_profile,
    save_selection,
    save_trace,
)

__all__ = [
    "CellError",
    "CorunMachine",
    "CorunResult",
    "ExperimentRunner",
    "ExternalSummary",
    "Machine",
    "MachineParams",
    "MachineResult",
    "RetryPolicy",
    "SpeedupTable",
    "StageMetrics",
    "StageStore",
    "SuiteResult",
    "SystemConfig",
    "core_sweep",
    "format_series",
    "format_table",
    "frequency_sweep",
    "load_profile",
    "load_selection",
    "load_trace",
    "save_profile",
    "save_selection",
    "save_trace",
    "run_suite",
    "standard_systems",
    "system_by_key",
]
