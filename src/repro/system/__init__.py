"""System composition: configurations, machines, experiments."""

from repro.system.config import SystemConfig, standard_systems, system_by_key
from repro.system.corun import CorunMachine, CorunResult
from repro.system.experiment import (
    SpeedupTable,
    core_sweep,
    frequency_sweep,
    run_suite,
)
from repro.system.machine import Machine, MachineResult
from repro.system.reporting import format_series, format_table
from repro.system.tracefile import (
    load_profile,
    load_trace,
    save_profile,
    save_trace,
)

__all__ = [
    "CorunMachine",
    "CorunResult",
    "Machine",
    "MachineResult",
    "SpeedupTable",
    "SystemConfig",
    "core_sweep",
    "format_series",
    "format_table",
    "frequency_sweep",
    "load_profile",
    "load_trace",
    "save_profile",
    "save_trace",
    "run_suite",
    "standard_systems",
    "system_by_key",
]
