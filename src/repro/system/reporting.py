"""Plain-text table/series formatting for benchmark output."""

from __future__ import annotations

__all__ = ["format_table", "format_series"]


def format_table(
    rows: list[dict],
    columns: list[str] | None = None,
    float_format: str = "{:.2f}",
    title: str = "",
) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value) -> str:
        """Format one value for the table."""
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[cell(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    series: dict,
    key_label: str = "x",
    value_label: str = "y",
    float_format: str = "{:.2f}",
    title: str = "",
) -> str:
    """Render a {x: y} mapping as a two-column table."""
    rows = [
        {key_label: key, value_label: value} for key, value in series.items()
    ]
    return format_table(
        rows, columns=[key_label, value_label],
        float_format=float_format, title=title,
    )
