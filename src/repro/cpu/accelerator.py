"""Near-memory accelerator model.

Section 7.4 attributes the larger accelerator speedups (2.58x) to two
properties: (i) deep pipelines generate far more concurrent memory
accesses than a CPU, and (ii) small (or absent) on-chip buffers mean a
much larger fraction of accesses reaches external memory.  Both are
first-class knobs here: a high in-flight window and an optional tiny
scratch cache.
"""

from __future__ import annotations

from repro.cpu.cache import SetAssociativeCache
from repro.cpu.cpu import ExternalTraceResult
from repro.cpu.trace import AccessTrace, interleave_traces
from repro.errors import ConfigError, warn_deprecated_once

__all__ = ["AcceleratorModel"]

KiB = 1024


class AcceleratorModel:
    """A streaming accelerator: huge MLP, tiny cache."""

    def __init__(
        self,
        lanes: int = 16,
        mlp_per_lane: int = 16,
        scratch_bytes: int = 8 * KiB,
        line_bytes: int = 64,
    ):
        if lanes < 1:
            raise ConfigError("need at least one lane")
        self.lanes = lanes
        self.mlp_per_lane = mlp_per_lane
        self.scratch_bytes = scratch_bytes
        self.line_bytes = line_bytes

    @property
    def max_inflight(self) -> int:
        """Memory-level parallelism handed to the memory model."""
        return self.lanes * self.mlp_per_lane

    def backend_hints(self) -> dict:
        """Deprecated: read :attr:`max_inflight` directly instead.

        The backend-selection redesign passes ``max_inflight`` as an
        explicit :func:`~repro.hbm.backend.create_backend` argument;
        this indirection survives only as a shim.
        """
        warn_deprecated_once(
            "accelerator.backend_hints",
            "AcceleratorModel.backend_hints() is deprecated; "
            "pass max_inflight=engine.max_inflight to create_backend",
        )
        return {"max_inflight": self.max_inflight}

    def external_trace(
        self, thread_traces: list[AccessTrace]
    ) -> ExternalTraceResult:
        """Nearly everything reaches memory; only a tiny scratch filters."""
        program_accesses = sum(len(t) for t in thread_traces)
        merged = interleave_traces(
            [t.aligned(self.line_bytes) for t in thread_traces], chunk=1
        )
        if self.scratch_bytes == 0:
            return ExternalTraceResult(
                trace=merged,
                l1_hit_rate=0.0,
                llc_hit_rate=0.0,
                program_accesses=program_accesses,
            )
        scratch = SetAssociativeCache(
            self.scratch_bytes, self.line_bytes, ways=4
        )
        external = scratch.filter_trace(merged)
        return ExternalTraceResult(
            trace=external,
            l1_hit_rate=scratch.stats.hit_rate,
            llc_hit_rate=0.0,
            program_accesses=program_accesses,
        )

    def __repr__(self) -> str:
        return (
            f"AcceleratorModel(lanes={self.lanes}, "
            f"inflight={self.max_inflight}, "
            f"scratch={self.scratch_bytes // KiB}KiB)"
        )
