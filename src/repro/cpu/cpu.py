"""CPU model: per-core L1 caches over a shared LLC.

Mirrors the prototype's 4-core BOOM with 64 KB L1s (Section 7.1): each
thread's accesses filter through a private L1, the miss streams
interleave into a shared last-level cache, and LLC misses (plus
write-backs) form the external memory trace handed to the memory
controller.  ``max_inflight`` is the memory-level parallelism the core
complex can sustain — the window the HBM models consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.cache import SetAssociativeCache
from repro.cpu.trace import AccessTrace, interleave_traces
from repro.errors import ConfigError, warn_deprecated_once

__all__ = ["CPUModel", "ExternalTraceResult"]

KiB = 1024


@dataclass(frozen=True)
class ExternalTraceResult:
    """External memory stream plus the cache behaviour that produced it."""

    trace: AccessTrace
    l1_hit_rate: float
    llc_hit_rate: float
    program_accesses: int

    @property
    def miss_fraction(self) -> float:
        """External accesses per program access."""
        if self.program_accesses == 0:
            return 0.0
        return len(self.trace) / self.program_accesses


class CPUModel:
    """A small multicore: private L1s, shared LLC, bounded MLP."""

    def __init__(
        self,
        cores: int = 4,
        l1_bytes: int = 64 * KiB,
        llc_bytes: int = 1024 * KiB,
        line_bytes: int = 64,
        mlp_per_core: int = 16,
    ):
        if cores < 1:
            raise ConfigError("need at least one core")
        self.cores = cores
        self.l1_bytes = l1_bytes
        self.llc_bytes = llc_bytes
        self.line_bytes = line_bytes
        self.mlp_per_core = mlp_per_core

    @property
    def max_inflight(self) -> int:
        """MLP handed to the memory model."""
        return self.cores * self.mlp_per_core

    def backend_hints(self) -> dict:
        """Deprecated: read :attr:`max_inflight` directly instead.

        The backend-selection redesign passes ``max_inflight`` as an
        explicit :func:`~repro.hbm.backend.create_backend` argument;
        this indirection survives only as a shim.
        """
        warn_deprecated_once(
            "cpu.backend_hints",
            "CPUModel.backend_hints() is deprecated; "
            "pass max_inflight=engine.max_inflight to create_backend",
        )
        return {"max_inflight": self.max_inflight}

    def external_trace(
        self, thread_traces: list[AccessTrace]
    ) -> ExternalTraceResult:
        """Filter per-thread program traces into the external stream.

        Threads beyond ``cores`` are round-robined onto cores (as the
        OS scheduler would), sharing that core's L1.
        """
        program_accesses = sum(len(t) for t in thread_traces)
        l1s = [
            SetAssociativeCache(self.l1_bytes, self.line_bytes)
            for _ in range(self.cores)
        ]
        l1_streams: list[AccessTrace] = []
        for index, trace in enumerate(thread_traces):
            l1 = l1s[index % self.cores]
            l1_streams.append(l1.filter_trace(trace.aligned(self.line_bytes)))
        merged = interleave_traces(l1_streams, chunk=4)
        llc = SetAssociativeCache(self.llc_bytes, self.line_bytes, ways=16)
        external = llc.filter_trace(merged)
        l1_accesses = sum(c.stats.accesses for c in l1s)
        l1_hits = sum(c.stats.hits for c in l1s)
        return ExternalTraceResult(
            trace=external,
            l1_hit_rate=l1_hits / l1_accesses if l1_accesses else 0.0,
            llc_hit_rate=llc.stats.hit_rate,
            program_accesses=program_accesses,
        )

    def __repr__(self) -> str:
        return (
            f"CPUModel(cores={self.cores}, l1={self.l1_bytes // KiB}KiB, "
            f"llc={self.llc_bytes // KiB}KiB)"
        )
