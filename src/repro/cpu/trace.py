"""Memory-access traces: struct-of-arrays containers and combinators.

A trace is the ordered stream of (virtual address, is_write, variable id)
triples a program or accelerator emits.  The variable id stands in for
the paper's PC-to-variable table (Section 6.2): the workload models tag
every access with the variable that generated it, exactly the
information gcc + call-stack matching recovers on the prototype.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError

__all__ = ["AccessTrace", "interleave_traces", "concat_traces"]

NO_VARIABLE = -1


@dataclass(frozen=True)
class AccessTrace:
    """An ordered memory-access stream (struct of arrays)."""

    va: np.ndarray
    is_write: np.ndarray = field(default=None)  # type: ignore[assignment]
    variable: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        va = np.asarray(self.va, dtype=np.uint64)
        object.__setattr__(self, "va", va)
        if self.is_write is None:
            object.__setattr__(self, "is_write", np.zeros(va.size, dtype=bool))
        else:
            is_write = np.asarray(self.is_write, dtype=bool)
            if is_write.size != va.size:
                raise SimulationError("is_write length mismatch")
            object.__setattr__(self, "is_write", is_write)
        if self.variable is None:
            object.__setattr__(
                self, "variable", np.full(va.size, NO_VARIABLE, dtype=np.int64)
            )
        else:
            variable = np.asarray(self.variable, dtype=np.int64)
            if variable.size != va.size:
                raise SimulationError("variable length mismatch")
            object.__setattr__(self, "variable", variable)

    def __len__(self) -> int:
        return self.va.size

    def select(self, mask: np.ndarray) -> "AccessTrace":
        """Subset of the trace (order preserved)."""
        return AccessTrace(
            va=self.va[mask],
            is_write=self.is_write[mask],
            variable=self.variable[mask],
        )

    def take(self, count: int) -> "AccessTrace":
        """Trace prefix."""
        return AccessTrace(
            va=self.va[:count],
            is_write=self.is_write[:count],
            variable=self.variable[:count],
        )

    def aligned(self, line_bytes: int = 64) -> "AccessTrace":
        """Cache-line-aligned copy of the trace."""
        mask = np.uint64(~(line_bytes - 1) & 0xFFFF_FFFF_FFFF_FFFF)
        return AccessTrace(
            va=self.va & mask, is_write=self.is_write, variable=self.variable
        )

    def variables_present(self) -> np.ndarray:
        """Sorted unique variable ids in the trace (excluding untagged)."""
        unique = np.unique(self.variable)
        return unique[unique != NO_VARIABLE]


def concat_traces(traces: list[AccessTrace]) -> AccessTrace:
    """Append traces back to back."""
    if not traces:
        return AccessTrace(va=np.zeros(0, dtype=np.uint64))
    return AccessTrace(
        va=np.concatenate([t.va for t in traces]),
        is_write=np.concatenate([t.is_write for t in traces]),
        variable=np.concatenate([t.variable for t in traces]),
    )


def interleave_traces(traces: list[AccessTrace], chunk: int = 1) -> AccessTrace:
    """Round-robin interleave per-thread traces into one stream.

    ``chunk`` accesses are taken from each thread in turn — the paper's
    four-thread data copy (Fig. 11) interleaves at fine grain.  Threads
    that run out simply drop out of the rotation.
    """
    if chunk < 1:
        raise SimulationError("interleave chunk must be >= 1")
    if not traces:
        return AccessTrace(va=np.zeros(0, dtype=np.uint64))
    if len(traces) == 1:
        return traces[0]
    total = sum(len(t) for t in traces)
    va = np.empty(total, dtype=np.uint64)
    is_write = np.empty(total, dtype=bool)
    variable = np.empty(total, dtype=np.int64)
    cursors = [0] * len(traces)
    out = 0
    while out < total:
        for index, trace in enumerate(traces):
            start = cursors[index]
            if start >= len(trace):
                continue
            stop = min(start + chunk, len(trace))
            span = stop - start
            va[out : out + span] = trace.va[start:stop]
            is_write[out : out + span] = trace.is_write[start:stop]
            variable[out : out + span] = trace.variable[start:stop]
            cursors[index] = stop
            out += span
    return AccessTrace(va=va, is_write=is_write, variable=variable)
