"""Request-stream substrate: traces, caches, CPU and accelerator models."""

from repro.cpu.accelerator import AcceleratorModel
from repro.cpu.cache import CacheStats, SetAssociativeCache
from repro.cpu.cpu import CPUModel, ExternalTraceResult
from repro.cpu.trace import AccessTrace, concat_traces, interleave_traces

__all__ = [
    "AcceleratorModel",
    "AccessTrace",
    "CPUModel",
    "CacheStats",
    "ExternalTraceResult",
    "SetAssociativeCache",
    "concat_traces",
    "interleave_traces",
]
