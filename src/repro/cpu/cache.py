"""Set-associative write-back cache with LRU replacement.

Filters a program's access stream into the *external* (miss +
write-back) stream that actually reaches the memory controller — the
stream the paper profiles and optimises.  The BOOM prototype has 64 KB
L1 caches; accelerators have small or no caches, which is why they are
more sensitive to CLP (Section 7.4).
"""

from __future__ import annotations

import numpy as np

from repro.cpu.trace import AccessTrace
from repro.errors import ConfigError

__all__ = ["SetAssociativeCache", "CacheStats"]


class CacheStats:
    """Hit/miss/write-back counters."""

    __slots__ = ("accesses", "hits", "misses", "writebacks")

    def __init__(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    @property
    def hit_rate(self) -> float:
        """Hits divided by accesses."""
        return self.hits / self.accesses if self.accesses else 0.0

    def __repr__(self) -> str:
        return (
            f"CacheStats(accesses={self.accesses}, hit_rate={self.hit_rate:.3f},"
            f" writebacks={self.writebacks})"
        )


class SetAssociativeCache:
    """LRU set-associative write-back, write-allocate cache."""

    def __init__(self, size_bytes: int, line_bytes: int = 64, ways: int = 8):
        if size_bytes <= 0 or size_bytes % (line_bytes * ways):
            raise ConfigError(
                "cache size must be a positive multiple of line_bytes*ways"
            )
        if line_bytes & (line_bytes - 1):
            raise ConfigError("line size must be a power of two")
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (line_bytes * ways)
        self.line_bits = line_bytes.bit_length() - 1
        # sets[set_index] = {tag: [lru_stamp, dirty]}
        self._sets: list[dict[int, list]] = [{} for _ in range(self.num_sets)]
        self._clock = 0
        self.stats = CacheStats()

    def reset(self) -> None:
        """Clear all cached lines and counters."""
        self._sets = [{} for _ in range(self.num_sets)]
        self._clock = 0
        self.stats = CacheStats()

    def access(self, address: int, is_write: bool = False) -> tuple[bool, int | None]:
        """One access; returns ``(hit, writeback_address_or_None)``."""
        line = address >> self.line_bits
        set_index = line % self.num_sets
        tag = line // self.num_sets
        ways = self._sets[set_index]
        self._clock += 1
        self.stats.accesses += 1
        entry = ways.get(tag)
        if entry is not None:
            entry[0] = self._clock
            entry[1] = entry[1] or is_write
            self.stats.hits += 1
            return True, None
        self.stats.misses += 1
        writeback = None
        if len(ways) >= self.ways:
            victim_tag = min(ways, key=lambda t: ways[t][0])
            victim = ways.pop(victim_tag)
            if victim[1]:
                victim_line = victim_tag * self.num_sets + set_index
                writeback = victim_line << self.line_bits
                self.stats.writebacks += 1
        ways[tag] = [self._clock, is_write]
        return False, writeback

    def filter_trace(self, trace: AccessTrace) -> AccessTrace:
        """Run a trace through the cache; return the external stream.

        Misses keep their variable tag; write-backs are emitted as
        writes tagged with the variable of the evicted line's last
        writer is unknown, so they carry the *current* access's tag —
        a reasonable approximation that keeps every external access
        attributable.
        """
        out_va: list[int] = []
        out_write: list[bool] = []
        out_variable: list[int] = []
        va = trace.va.tolist()
        is_write = trace.is_write.tolist()
        variable = trace.variable.tolist()
        access = self.access
        for address, write, var in zip(va, is_write, variable):
            hit, writeback = access(address, write)
            if writeback is not None:
                out_va.append(writeback)
                out_write.append(True)
                out_variable.append(var)
            if not hit:
                out_va.append(address)
                out_write.append(write)
                out_variable.append(var)
        return AccessTrace(
            va=np.array(out_va, dtype=np.uint64),
            is_write=np.array(out_write, dtype=bool),
            variable=np.array(out_variable, dtype=np.int64),
        )

    def __repr__(self) -> str:
        return (
            f"SetAssociativeCache({self.size_bytes // 1024}KiB, "
            f"{self.ways}-way, {self.num_sets} sets)"
        )
