"""SDAM: Software-Defined Address Mapping for 3D memory.

A full-stack reproduction of Zhang, Swift and Li, "Software-Defined
Address Mapping: A Case on 3D Memory" (ASPLOS 2022): the AMU/CMT
hardware models, the chunk-aware OS memory allocators, the access-
pattern profiler, the K-Means / DL-assisted mapping selection, and a
trace-driven HBM simulator to evaluate it all on.

The curated convenience surface is re-exported here (and lives in
:mod:`repro.api`); subsystem packages (``repro.core``, ``repro.hbm``,
``repro.mem``, ``repro.cpu``, ``repro.profiling``, ``repro.ml``,
``repro.workloads``, ``repro.system``) expose the full interfaces.
"""

from repro.api import (
    AdaptiveCampaignResult,
    AdaptiveController,
    MappingSelection,
    Session,
    default_cache_dir,
    evaluation_workloads,
    mixed_stride_workload,
    run_adaptive_campaign,
    select_application_mapping,
    strided_workload,
)
from repro.errors import ServiceOverloadError, TenantQuarantinedError
from repro.faults import FaultPlan, FaultSpec
from repro.hbm import PlanCache, default_plan_cache
from repro.service import (
    JobHandle,
    LaneSupervisor,
    MappingService,
    ServiceCampaignResult,
    ServiceFrontend,
    ServiceHealth,
    SharedArtifacts,
    TenantContext,
    TenantRegistry,
    TenantSpec,
    run_service_campaign,
)
from repro.ras import (
    CampaignResult,
    DeviceFaultPlan,
    DeviceFaultSpec,
    RASReport,
)
from repro.ras import run_campaign as run_ras_campaign
from repro.system import (
    ExperimentRunner,
    Machine,
    MachineResult,
    RetryPolicy,
    SpeedupTable,
    SuiteResult,
    SystemConfig,
    run_suite,
    standard_systems,
    system_by_key,
)

__version__ = "1.4.0"

__all__ = [
    "AdaptiveCampaignResult",
    "AdaptiveController",
    "CampaignResult",
    "DeviceFaultPlan",
    "DeviceFaultSpec",
    "ExperimentRunner",
    "FaultPlan",
    "FaultSpec",
    "JobHandle",
    "LaneSupervisor",
    "Machine",
    "MappingSelection",
    "MappingService",
    "PlanCache",
    "RASReport",
    "run_adaptive_campaign",
    "run_ras_campaign",
    "run_service_campaign",
    "MachineResult",
    "RetryPolicy",
    "ServiceCampaignResult",
    "ServiceFrontend",
    "ServiceHealth",
    "ServiceOverloadError",
    "Session",
    "SharedArtifacts",
    "TenantQuarantinedError",
    "SpeedupTable",
    "SuiteResult",
    "SystemConfig",
    "TenantContext",
    "TenantRegistry",
    "TenantSpec",
    "__version__",
    "default_cache_dir",
    "default_plan_cache",
    "evaluation_workloads",
    "mixed_stride_workload",
    "run_suite",
    "select_application_mapping",
    "standard_systems",
    "strided_workload",
    "system_by_key",
]
