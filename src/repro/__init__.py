"""SDAM: Software-Defined Address Mapping for 3D memory.

A full-stack reproduction of Zhang, Swift and Li, "Software-Defined
Address Mapping: A Case on 3D Memory" (ASPLOS 2022): the AMU/CMT
hardware models, the chunk-aware OS memory allocators, the access-
pattern profiler, the K-Means / DL-assisted mapping selection, and a
trace-driven HBM simulator to evaluate it all on.

The curated convenience surface lives in :mod:`repro.api`; subsystem
packages (``repro.core``, ``repro.hbm``, ``repro.mem``, ``repro.cpu``,
``repro.profiling``, ``repro.ml``, ``repro.workloads``,
``repro.system``) expose the full interfaces.
"""

__version__ = "1.0.0"
