"""Row-hammer guard rows: the Section 4 security extension.

"As each chunk consists of a large number of contiguous rows within a
bank, we can mitigate the row hammer attack by adding guard rows to
the sensitive data to ensure strong physical isolation between data
belonging to different security domains."

This module turns that sketch into a checkable mechanism: given a
chunk, its address mapping and the device geometry, it computes which
*physical addresses* occupy the DRAM rows bordering the chunk's data in
every bank, reserves them, and can verify the resulting isolation —
no address outside the protected set maps to a row adjacent to a
protected row in the same bank.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.chunks import ChunkGeometry
from repro.core.sdam import SDAMController
from repro.errors import ConfigError
from repro.hbm.config import HBMConfig
from repro.hbm.decode import decode_trace

__all__ = ["GuardPlan", "plan_guard_rows", "verify_isolation"]


@dataclass(frozen=True)
class GuardPlan:
    """Reserved guard addresses for one sensitive chunk."""

    chunk_no: int
    guard_pa: np.ndarray  # physical addresses that must stay unallocated
    protected_rows: np.ndarray  # (global_bank, row) pairs holding data
    guard_rows: np.ndarray  # (global_bank, row) pairs reserved as guards

    @property
    def reserved_bytes(self) -> int:
        """Capacity sacrificed to guards (64 B lines)."""
        return int(self.guard_pa.size) * 64


def _chunk_rows(
    geometry: ChunkGeometry,
    hbm: HBMConfig,
    controller: SDAMController,
    chunk_no: int,
):
    """Decode every line of a chunk: (pa, global_bank, row)."""
    base = geometry.chunk_base(chunk_no)
    pa = np.uint64(base) + np.arange(
        geometry.lines_per_chunk, dtype=np.uint64
    ) * np.uint64(geometry.line_bytes)
    ha = controller.translate(pa)
    decoded = decode_trace(ha, hbm)
    return pa, decoded.global_bank, decoded.row


def plan_guard_rows(
    geometry: ChunkGeometry,
    hbm: HBMConfig,
    controller: SDAMController,
    chunk_no: int,
    rows_per_guard: int = 1,
) -> GuardPlan:
    """Reserve the DRAM rows bordering a sensitive chunk's data.

    For every bank the chunk touches, the rows adjacent (within
    ``rows_per_guard``) to the chunk's edge rows are identified.  Rows
    that belong to the chunk itself become *internal* guards: their
    physical addresses are returned so the allocator can keep them
    empty.  Rows outside the chunk belong to other chunk numbers and
    are already isolated by construction (the chunk number feeds the
    row MSBs), so only a misconfigured geometry can violate them —
    which :func:`verify_isolation` checks.
    """
    if rows_per_guard < 1:
        raise ConfigError("rows_per_guard must be >= 1")
    pa, banks, rows = _chunk_rows(geometry, hbm, controller, chunk_no)
    # Distinct (bank, row) pairs holding chunk data.
    keys = banks * np.int64(hbm.rows_per_bank) + rows
    order = np.argsort(keys, kind="stable")
    unique_keys, first_index = np.unique(keys[order], return_index=True)
    data_banks = unique_keys // hbm.rows_per_bank
    data_rows = unique_keys % hbm.rows_per_bank
    protected = np.stack([data_banks, data_rows], axis=1)

    # Edge rows per bank: min/max row in each bank's contiguous span.
    guard_pairs = []
    for bank in np.unique(data_banks):
        bank_rows = data_rows[data_banks == bank]
        low, high = int(bank_rows.min()), int(bank_rows.max())
        for distance in range(1, rows_per_guard + 1):
            if low - distance >= 0:
                guard_pairs.append((int(bank), low - distance))
            if high + distance < hbm.rows_per_bank:
                guard_pairs.append((int(bank), high + distance))
        # Interior edge rows: the chunk's own first/last row per bank
        # double as internal guards around the protected payload.
        guard_pairs.append((int(bank), low))
        guard_pairs.append((int(bank), high))
    guard_rows = np.array(sorted(set(guard_pairs)), dtype=np.int64)

    # Guard addresses *inside* the chunk (the allocator must hold them).
    guard_keys = set(
        int(bank) * hbm.rows_per_bank + int(row) for bank, row in guard_rows
    )
    inside = np.fromiter(
        (int(k) in guard_keys for k in keys), dtype=bool, count=keys.size
    )
    return GuardPlan(
        chunk_no=chunk_no,
        guard_pa=pa[inside],
        protected_rows=protected,
        guard_rows=guard_rows,
    )


def verify_isolation(
    plan: GuardPlan,
    geometry: ChunkGeometry,
    hbm: HBMConfig,
    controller: SDAMController,
    attacker_chunks: list[int],
) -> bool:
    """Check no attacker-reachable line neighbours protected data rows.

    An attacker controlling the given chunks (minus the guard
    addresses) must not be able to activate a row physically adjacent
    to any protected row in the same bank.
    """
    guard_set = set(map(int, plan.guard_pa.tolist()))
    protected = {
        (int(bank), int(row)) for bank, row in plan.protected_rows
    } - {(int(bank), int(row)) for bank, row in plan.guard_rows}
    for chunk_no in attacker_chunks:
        pa, banks, rows = _chunk_rows(geometry, hbm, controller, chunk_no)
        usable = np.fromiter(
            (int(p) not in guard_set for p in pa), dtype=bool, count=pa.size
        )
        for bank, row in zip(banks[usable], rows[usable]):
            for neighbour in (int(row) - 1, int(row) + 1):
                if (int(bank), neighbour) in protected:
                    return False
    return True
