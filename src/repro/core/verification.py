"""Correctness audits for the Section 4 functional guarantee.

"One PA can map to only one HA or vice versa": this module provides
executable checks of that property — exhaustive within a chunk,
sampled across the device — plus an audit of the chunk-number
preservation rule and the AMU/CMT configuration consistency.  Useful
both in tests and as a runtime debugging aid when composing custom
mappings.

Both entry points accept ``strict=True``, under which the first failed
check raises a structured :class:`~repro.errors.MappingIntegrityError`
instead of accumulating into the report.  The error's ``code`` field
classifies the failure — ``"cmt-config"``/``"cmt-binding"`` point at
corrupt CMT state, ``"translation"`` at the datapath, ``"bijectivity"``
at a bad user mapping — which is how the RAS scrubber tells an SRAM
upset apart from a mis-composed mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.chunks import ChunkGeometry
from repro.core.mapping import LinearMapping, PermutationMapping
from repro.core.sdam import SDAMController
from repro.errors import CMTError, MappingError, MappingIntegrityError

__all__ = [
    "VerificationFailure",
    "VerificationReport",
    "audit_controller",
    "verify_mapping",
]


@dataclass(frozen=True)
class VerificationFailure:
    """One failed check, with enough context to act on it."""

    message: str
    code: str = ""
    chunk_no: int | None = None
    mapping_index: int | None = None

    def as_error(self) -> MappingIntegrityError:
        """The failure as a raisable structured error."""
        return MappingIntegrityError(
            self.message,
            code=self.code,
            chunk_no=self.chunk_no,
            mapping_index=self.mapping_index,
        )


@dataclass
class VerificationReport:
    """Outcome of a correctness audit.

    With ``strict=True`` the first failing check raises its
    :class:`~repro.errors.MappingIntegrityError` immediately.
    """

    checks_run: int = 0
    failures: list[str] = field(default_factory=list)
    records: list[VerificationFailure] = field(default_factory=list)
    strict: bool = False

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        return not self.failures

    def check(
        self,
        passed: bool,
        message: str,
        code: str = "",
        chunk_no: int | None = None,
        mapping_index: int | None = None,
    ) -> None:
        """Record one check; ``message`` (plus context) is kept on failure."""
        self.checks_run += 1
        if passed:
            return
        record = VerificationFailure(
            message=message,
            code=code,
            chunk_no=chunk_no,
            mapping_index=mapping_index,
        )
        self.failures.append(message)
        self.records.append(record)
        if self.strict:
            raise record.as_error()

    def raise_if_failed(self) -> None:
        """Raise :class:`MappingError` if any check failed."""
        if self.failures:
            raise MappingError(
                "verification failed: " + "; ".join(self.failures)
            )

    def __repr__(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        return f"VerificationReport({self.checks_run} checks, {status})"


def verify_mapping(
    mapping: PermutationMapping | LinearMapping,
    exhaustive_bits: int = 16,
    strict: bool = False,
) -> VerificationReport:
    """Check a single mapping is a bijection.

    Exhaustive over the low ``exhaustive_bits`` of the space (with the
    remaining bits zero), plus an inverse round-trip over random
    samples of the full width.  ``strict=True`` raises a
    ``code="bijectivity"`` :class:`MappingIntegrityError` on the first
    failure.
    """
    report = VerificationReport(strict=strict)
    width = mapping.width
    span = 1 << min(exhaustive_bits, width)
    space = np.arange(span, dtype=np.uint64)
    mapped = np.asarray(mapping.apply(space))
    report.check(
        np.unique(mapped).size == span,
        f"mapping aliases values within the low {min(exhaustive_bits, width)}"
        " bits",
        code="bijectivity",
    )
    inverse = mapping.inverse()
    rng = np.random.default_rng(0)
    sample = rng.integers(0, 1 << width, 512, dtype=np.uint64)
    roundtrip = np.asarray(inverse.apply(np.asarray(mapping.apply(sample))))
    report.check(
        bool(np.array_equal(roundtrip, sample)),
        "inverse(apply(x)) != x on random samples",
        code="bijectivity",
    )
    return report


def audit_controller(
    controller: SDAMController,
    sample_chunks: int = 8,
    lines_per_chunk: int = 2048,
    seed: int = 0,
    strict: bool = False,
) -> VerificationReport:
    """Audit a live SDAM controller against the Section 4 rules.

    * every interned mapping is an invertible window permutation
      (``code="cmt-config"`` on failure);
    * every sampled chunk points at an interned mapping
      (``code="cmt-binding"``);
    * chunk numbers pass through translation unchanged and translation
      is injective within each sampled chunk (``code="translation"``).

    With ``strict=True`` the first failure raises, so a runtime
    scrubber can dispatch on the error's ``code``/``chunk_no``/
    ``mapping_index`` instead of parsing messages.
    """
    report = VerificationReport(strict=strict)
    geometry: ChunkGeometry = controller.geometry
    cmt = controller.cmt

    for index in range(cmt.live_mappings):
        perm = cmt.config_of(index)
        report.check(
            sorted(perm.tolist()) == list(range(geometry.window_bits)),
            f"mapping {index} is not a window permutation",
            code="cmt-config",
            mapping_index=index,
        )
        try:
            full = controller.full_mapping(index)
        except MappingError as error:
            report.check(
                False,
                f"mapping {index} rejected by AMU: {error}",
                code="cmt-config",
                mapping_index=index,
            )
            continue
        low, high = geometry.window_slice()
        report.check(
            full.restricted_window(low, high),
            f"mapping {index} leaks outside the chunk window",
            code="cmt-config",
            mapping_index=index,
        )

    rng = np.random.default_rng(seed)
    chunk_numbers = rng.integers(
        0, geometry.num_chunks, min(sample_chunks, geometry.num_chunks)
    )
    for chunk_no in np.unique(chunk_numbers):
        index = cmt.mapping_index_of(int(chunk_no))
        bound = 0 <= index < cmt.live_mappings
        report.check(
            bound,
            f"chunk {chunk_no} bound to unknown mapping {index}",
            code="cmt-binding",
            chunk_no=int(chunk_no),
            mapping_index=int(index),
        )
        if not bound:
            continue
        base = geometry.chunk_base(int(chunk_no))
        offsets = rng.choice(
            geometry.lines_per_chunk,
            size=min(lines_per_chunk, geometry.lines_per_chunk),
            replace=False,
        ).astype(np.uint64)
        pa = np.uint64(base) + offsets * np.uint64(geometry.line_bytes)
        try:
            ha = controller.translate(pa)
        except (MappingError, CMTError) as error:
            report.check(
                False,
                f"chunk {chunk_no}: translation failed: {error}",
                code="translation",
                chunk_no=int(chunk_no),
                mapping_index=int(index),
            )
            continue
        report.check(
            bool(
                np.array_equal(
                    geometry.chunk_number(ha), geometry.chunk_number(pa)
                )
            ),
            f"chunk {chunk_no}: chunk number not preserved",
            code="translation",
            chunk_no=int(chunk_no),
            mapping_index=int(index),
        )
        report.check(
            np.unique(ha).size == pa.size,
            f"chunk {chunk_no}: translation aliases addresses",
            code="translation",
            chunk_no=int(chunk_no),
            mapping_index=int(index),
        )
    return report
