"""Address Mapping Unit (AMU) — the crossbar that shuffles chunk-offset bits.

Section 5.2: the AMU realises bit-shuffle mappings with an n-by-n array
of switches (n = chunk-offset width, 15 in the prototype), with exactly
one closed switch per column.  Its configuration is therefore n integers
of ceil(log2 n) bits — 60 bits for n = 15 — which is what each
second-level CMT entry stores.

This module provides the functional model (apply a window permutation to
chunk offsets), the configuration codec, and the analytic area model
behind Table 3.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.bitmatrix import BitOperator
from repro.core.chunks import ChunkGeometry
from repro.core.mapping import PermutationMapping
from repro.errors import MappingError

__all__ = ["AddressMappingUnit", "amu_area_report"]

# Calibration constants for the Table 3 area model: a VU37P has ~1.3 M
# LUTs; one crossbar switch point (mux bit + config decode share) costs a
# handful of LUTs.  Chosen so 8 duplicated 15-bit AMUs land at the
# paper's ~0.5 % logic share.
VU37P_LUTS = 1_303_680
LUTS_PER_SWITCH = 3.6
AMU_DUPLICATES = 8  # the prototype replicates the AMU to sustain peak BW


class AddressMappingUnit:
    """Functional model of the n-bit crossbar.

    A *configuration* is a window permutation ``perm`` with HA-source
    semantics: output bit ``i`` of the window equals input bit
    ``perm[i]``.  The unit validates the one-closed-switch-per-column
    crossbar rule (i.e. ``perm`` is a permutation).
    """

    def __init__(self, window_bits: int):
        if window_bits < 2:
            raise MappingError("AMU window must be at least 2 bits")
        self.window_bits = window_bits

    # -- configuration codec --------------------------------------------
    @property
    def select_bits(self) -> int:
        """Bits per column selector: ceil(log2 n)."""
        return max(1, math.ceil(math.log2(self.window_bits)))

    @property
    def config_bits(self) -> int:
        """Total configuration width — 15 * 4 = 60 bits in the prototype."""
        return self.window_bits * self.select_bits

    def validate(self, perm) -> np.ndarray:
        """Enforce the one-closed-switch-per-column crossbar rule."""
        perm = np.asarray(perm, dtype=np.int64)
        if perm.size != self.window_bits or sorted(perm.tolist()) != list(
            range(self.window_bits)
        ):
            raise MappingError(
                f"AMU config must be a permutation of 0..{self.window_bits - 1}"
            )
        return perm

    def encode_config(self, perm) -> int:
        """Pack a permutation into the CMT's second-level entry format."""
        perm = self.validate(perm)
        word = 0
        for column, row in enumerate(perm.tolist()):
            word |= row << (column * self.select_bits)
        return word

    def decode_config(self, word: int) -> np.ndarray:
        """Unpack a CMT entry back into a permutation."""
        mask = (1 << self.select_bits) - 1
        perm = np.array(
            [
                (word >> (column * self.select_bits)) & mask
                for column in range(self.window_bits)
            ],
            dtype=np.int64,
        )
        return self.validate(perm)

    # -- datapath ---------------------------------------------------------
    def window_operator(self, perm) -> BitOperator:
        """The crossbar configuration as a window-width GF(2) operator."""
        return BitOperator.from_permutation(self.validate(perm))

    def apply(self, offsets, perm) -> np.ndarray | int:
        """Shuffle chunk-offset window bits through the crossbar.

        ``offsets`` are window-relative values (< 2**window_bits).
        """
        return self.window_operator(perm).apply(offsets)

    def full_mapping(
        self, perm, geometry: ChunkGeometry, address_bits: int | None = None
    ) -> PermutationMapping:
        """Lift a window permutation to a full-width PA-to-HA permutation.

        Bits below the window (byte-in-line offset) and above it (chunk
        number) pass through unchanged — the Section 4 correctness rule.
        """
        perm = self.validate(perm)
        low, high = geometry.window_slice()
        if high - low != self.window_bits:
            raise MappingError("geometry window does not match AMU width")
        width = address_bits if address_bits is not None else geometry.address_bits
        source = np.arange(width, dtype=np.int64)
        source[low:high] = perm + low
        return PermutationMapping(source)

    # -- area model (Table 3) ----------------------------------------------
    @property
    def switch_count(self) -> int:
        """n^2 crossbar switch points."""
        return self.window_bits * self.window_bits


def amu_area_report(
    window_bits: int = 15,
    duplicates: int = AMU_DUPLICATES,
    total_luts: int = VU37P_LUTS,
) -> dict[str, float]:
    """Analytic FPGA area model for the AMU (Table 3's ``AMU 0.5 %`` row)."""
    unit = AddressMappingUnit(window_bits)
    luts = unit.switch_count * LUTS_PER_SWITCH * duplicates
    return {
        "window_bits": window_bits,
        "switches_per_amu": unit.switch_count,
        "config_bits": unit.config_bits,
        "duplicates": duplicates,
        "luts": luts,
        "logic_fraction": luts / total_luts,
    }
