"""Chunk geometry: the coarse-grained unit of address-mapping management.

Section 4 of the paper manages address mappings at *chunk* granularity
(2 MB in the prototype): every physical frame inside a chunk shares one
address mapping, the chunk number (the PA bits above the chunk offset)
passes through the AMU unchanged, and only the chunk-offset bits above
the cache-line offset are shuffled.  With a 2 MB chunk and 64 B lines
that shuffled window is 15 bits wide — the figure the paper uses to size
the AMU crossbar and the CMT entries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AddressError, ConfigError

__all__ = ["ChunkGeometry"]

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB


def _log2_exact(value: int, what: str) -> int:
    if value <= 0 or value & (value - 1):
        raise ConfigError(f"{what} must be a power of two, got {value}")
    return value.bit_length() - 1


@dataclass(frozen=True)
class ChunkGeometry:
    """Sizes tying together lines, pages, chunks and total capacity.

    Parameters mirror the prototype: 64 B cache lines, 4 KiB pages,
    2 MB chunks, 8 GB of HBM.
    """

    total_bytes: int = 8 * GiB
    chunk_bytes: int = 2 * MiB
    page_bytes: int = 4 * KiB
    line_bytes: int = 64

    def __post_init__(self) -> None:
        for name in ("total_bytes", "chunk_bytes", "page_bytes", "line_bytes"):
            _log2_exact(getattr(self, name), name)
        if not self.line_bytes <= self.page_bytes <= self.chunk_bytes:
            raise ConfigError("need line <= page <= chunk")
        if self.chunk_bytes > self.total_bytes:
            raise ConfigError("chunk larger than total memory")

    # -- derived widths ------------------------------------------------
    @property
    def line_bits(self) -> int:
        """Byte-in-line offset width (6 for 64 B lines)."""
        return _log2_exact(self.line_bytes, "line_bytes")

    @property
    def page_bits(self) -> int:
        """Page-offset width (12 for 4 KiB pages)."""
        return _log2_exact(self.page_bytes, "page_bytes")

    @property
    def chunk_shift(self) -> int:
        """First chunk-number bit (21 for 2 MB chunks)."""
        return _log2_exact(self.chunk_bytes, "chunk_bytes")

    @property
    def address_bits(self) -> int:
        """Physical address width (33 for 8 GB)."""
        return _log2_exact(self.total_bytes, "total_bytes")

    @property
    def window_bits(self) -> int:
        """Width of the AMU-shuffled window (15 in the prototype)."""
        return self.chunk_shift - self.line_bits

    @property
    def num_chunks(self) -> int:
        """Chunks in the device (4096 in the prototype)."""
        return self.total_bytes // self.chunk_bytes

    @property
    def pages_per_chunk(self) -> int:
        """Frames per chunk (512 in the prototype)."""
        return self.chunk_bytes // self.page_bytes

    @property
    def lines_per_chunk(self) -> int:
        """Cache lines per chunk (32768 in the prototype)."""
        return self.chunk_bytes // self.line_bytes

    # -- address helpers ------------------------------------------------
    def check_address(self, pa) -> None:
        """Raise :class:`AddressError` if any PA is outside the device."""
        limit = self.total_bytes
        if isinstance(pa, np.ndarray):
            if pa.size and int(pa.max()) >= limit:
                raise AddressError(f"physical address beyond {limit:#x}")
        elif not 0 <= int(pa) < limit:
            raise AddressError(f"physical address {int(pa):#x} beyond {limit:#x}")

    def chunk_number(self, pa):
        """Chunk index of a PA (scalar or array)."""
        if isinstance(pa, np.ndarray):
            return pa >> np.uint64(self.chunk_shift)
        return int(pa) >> self.chunk_shift

    def chunk_offset(self, pa):
        """Offset of a PA inside its chunk."""
        mask = self.chunk_bytes - 1
        if isinstance(pa, np.ndarray):
            return pa & np.uint64(mask)
        return int(pa) & mask

    def chunk_base(self, chunk_no: int) -> int:
        """First physical address of a chunk."""
        if not 0 <= chunk_no < self.num_chunks:
            raise AddressError(f"chunk {chunk_no} outside 0..{self.num_chunks - 1}")
        return chunk_no << self.chunk_shift

    def page_number(self, pa):
        """Physical frame number of a PA (scalar or array)."""
        if isinstance(pa, np.ndarray):
            return pa >> np.uint64(self.page_bits)
        return int(pa) >> self.page_bits

    def window_slice(self) -> tuple[int, int]:
        """The ``[low, high)`` bit window the AMU is allowed to permute."""
        return self.line_bits, self.chunk_shift

    # -- guard rows (row-hammer mitigation extension, Section 4) --------
    def guard_line_offsets(self, rows_per_guard: int, row_bytes: int) -> np.ndarray:
        """Chunk-relative byte offsets of guard rows at the chunk edges.

        Following the paper's row-hammer discussion, a *sensitive* chunk
        reserves its first and last ``rows_per_guard`` DRAM rows so data in
        neighbouring chunks cannot hammer it.  Returns the byte offsets of
        the reserved rows (row granularity).
        """
        if rows_per_guard <= 0:
            raise ConfigError("rows_per_guard must be positive")
        rows_in_chunk = self.chunk_bytes // row_bytes
        if 2 * rows_per_guard >= rows_in_chunk:
            raise ConfigError("guard rows would consume the whole chunk")
        head = np.arange(rows_per_guard, dtype=np.int64)
        tail = np.arange(rows_in_chunk - rows_per_guard, rows_in_chunk, dtype=np.int64)
        return np.concatenate([head, tail]) * row_bytes

    def __repr__(self) -> str:
        return (
            f"ChunkGeometry(total={self.total_bytes // GiB}GiB, "
            f"chunk={self.chunk_bytes // MiB}MiB, "
            f"chunks={self.num_chunks}, window={self.window_bits}b)"
        )
