"""Stable content hashing for experiment-stage cache keys.

The experiment runner memoises stage outputs (traces, profiles,
mapping selections, results) on disk, keyed by a content hash of
everything that determines the stage's output: the workload spec, the
system configuration, the device geometry and the seeds.  Keys must be
stable across processes and Python releases, so hashing goes through a
canonical JSON form rather than ``pickle`` or ``hash()`` (both of
which vary between runs).

``canonical`` understands the value vocabulary the configuration
objects are built from: scalars, strings, tuples/lists, dicts,
(frozen) dataclasses, numpy scalars and arrays, and any object
exposing a ``spec_dict()`` method (the workload protocol).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

import numpy as np

from repro.errors import ConfigError

__all__ = ["canonical", "canonical_json", "stable_hash"]


def canonical(value: Any) -> Any:
    """Reduce a value to JSON-serialisable form, deterministically."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr round-trips doubles exactly and is stable across builds.
        return {"__float__": repr(value)}
    if isinstance(value, np.generic):
        return canonical(value.item())
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": hashlib.sha256(
                np.ascontiguousarray(value).tobytes()
            ).hexdigest(),
            "dtype": str(value.dtype),
            "shape": list(value.shape),
        }
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, dict):
        out = {}
        for key in sorted(value, key=str):
            out[str(key)] = canonical(value[key])
        return out
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__dataclass__": type(value).__name__, **fields}
    spec_dict = getattr(value, "spec_dict", None)
    if callable(spec_dict):
        return canonical(spec_dict())
    raise ConfigError(
        f"cannot build a stable cache key from {type(value).__name__!r}"
    )


def canonical_json(value: Any) -> str:
    """The canonical JSON text of a value (sorted keys, no whitespace)."""
    return json.dumps(canonical(value), sort_keys=True, separators=(",", ":"))


def stable_hash(*parts: Any) -> str:
    """A hex sha256 digest over the canonical form of the parts."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(canonical_json(part).encode())
        digest.update(b"\x00")
    return digest.hexdigest()
