"""Chunk Mapping Table (CMT) — the small SRAM holding per-chunk mappings.

Section 5.3: a two-level table.  The first level has one entry per chunk
and stores only an 8-bit *mapping index*; the second level stores the
actual 60-bit AMU configurations for (up to) 256 concurrently-live
mappings.  For a 128 GB socket with 2 MB chunks that is 64 Ki x 8 b +
256 x 60 b = 67.94 KB, versus 491 KB for a flat table — the storage
comparison this module reproduces analytically.

The OS programs the CMT through a memory-mapped driver interface; the
model counts those writes so the kernel substrate can be audited.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.amu import AddressMappingUnit
from repro.errors import CMTError

__all__ = [
    "ChunkMappingTable",
    "MappingNamespace",
    "cmt_storage_report",
    "partition_budget",
]

CMT_LOOKUP_LATENCY_NS = 6.0  # on-chip SRAM, vs >130 ns HBM access (Section 5.3)


@dataclass(frozen=True)
class MappingNamespace:
    """One tenant's slice of the global 256-mapping CMT budget.

    The second-level table is a hardware resource shared by every
    tenant (Section 7.4: the prototype shares one CMT globally); a
    namespace carves ``capacity`` slots out of it for one tenant, with
    ``base`` recording which contiguous region of the hardware table
    the service reserved.  Slot 0 (the boot identity) is shared by all
    tenants and never charged to any namespace, so bases start at 1.

    A namespace is a *quota*, enforced at intern time: a tenant is
    charged one slot for every distinct configuration it interns, so
    if every namespace respects its capacity and the capacities (plus
    the identity slot) sum to at most ``max_mappings``, the global
    table provably cannot overflow — cross-tenant deduplication only
    ever makes that bound looser.
    """

    tenant: str
    base: int
    capacity: int

    def __post_init__(self):
        if not self.tenant:
            raise CMTError("namespace tenant name must be non-empty")
        if self.base < 1:
            raise CMTError(
                "namespace base must be >= 1 (slot 0 is the shared identity)"
            )
        if self.capacity < 1:
            raise CMTError("namespace capacity must be >= 1")

    @property
    def end(self) -> int:
        """One past the last reserved slot."""
        return self.base + self.capacity

    def overlaps(self, other: "MappingNamespace") -> bool:
        """Whether two namespaces claim a common hardware slot."""
        return self.base < other.end and other.base < self.end

    def to_dict(self) -> dict:
        """A JSON-serialisable form."""
        return {
            "tenant": self.tenant,
            "base": self.base,
            "capacity": self.capacity,
        }


def partition_budget(
    quotas: dict[str, int], max_mappings: int = 256
) -> dict[str, MappingNamespace]:
    """Carve the global mapping budget into per-tenant namespaces.

    ``quotas`` maps tenant name to requested slot count; namespaces are
    assigned contiguously in iteration order, after the shared identity
    slot.  Raises :class:`~repro.errors.CMTError` when the requests do
    not fit the budget.
    """
    namespaces: dict[str, MappingNamespace] = {}
    base = 1  # slot 0: the shared boot identity
    for tenant, quota in quotas.items():
        if quota < 1:
            raise CMTError(f"tenant {tenant!r} quota must be >= 1")
        if base + quota > max_mappings:
            raise CMTError(
                f"mapping budget exhausted: tenant {tenant!r} needs {quota} "
                f"slots but only {max_mappings - base} of {max_mappings} "
                "remain"
            )
        namespaces[tenant] = MappingNamespace(tenant, base, quota)
        base += quota
    return namespaces


class ChunkMappingTable:
    """Two-level chunk-to-mapping table.

    Index 0 is pre-interned as the identity window permutation, so an
    unconfigured chunk behaves exactly like the fixed-mapping baseline.
    """

    def __init__(
        self,
        num_chunks: int,
        window_bits: int,
        max_mappings: int = 256,
    ):
        if num_chunks <= 0:
            raise CMTError("need at least one chunk")
        if max_mappings < 1:
            raise CMTError("need at least one mapping slot")
        self.num_chunks = num_chunks
        self.max_mappings = max_mappings
        self.amu = AddressMappingUnit(window_bits)
        self._chunk_table = np.zeros(num_chunks, dtype=np.uint16)
        self._configs: list[np.ndarray] = []
        self._intern: dict[tuple[int, ...], int] = {}
        self._namespaces: dict[str, MappingNamespace] = {}
        self._charges: dict[str, set[tuple[int, ...]]] = {}
        self.driver_writes = 0
        self.intern_mapping(np.arange(window_bits))  # index 0 = identity

    # -- namespaces: per-tenant slices of the mapping budget ---------------
    def register_namespace(self, namespace: MappingNamespace) -> None:
        """Reserve a tenant's slice of the second-level table.

        Rejects namespaces that fall outside the table or overlap an
        already-registered one — the registry's admission invariant.
        """
        if namespace.end > self.max_mappings:
            raise CMTError(
                f"namespace {namespace.tenant!r} ends at slot {namespace.end} "
                f"but the table holds {self.max_mappings} mappings"
            )
        existing = self._namespaces.get(namespace.tenant)
        if existing is not None and existing != namespace:
            raise CMTError(
                f"tenant {namespace.tenant!r} already holds a namespace"
            )
        for other in self._namespaces.values():
            if other.tenant != namespace.tenant and namespace.overlaps(other):
                raise CMTError(
                    f"namespace {namespace.tenant!r} overlaps {other.tenant!r}"
                )
        self._namespaces[namespace.tenant] = namespace
        self._charges.setdefault(namespace.tenant, set())

    def release_namespace(self, tenant: str) -> None:
        """Return a tenant's slice to the budget (its charges are dropped).

        Interned configurations stay in the table — hardware has no
        erase; a released slice merely becomes re-carvable.
        """
        self._namespaces.pop(tenant, None)
        self._charges.pop(tenant, None)

    @property
    def namespaces(self) -> dict[str, MappingNamespace]:
        """Registered namespaces by tenant name (a copy)."""
        return dict(self._namespaces)

    def namespace_usage(self, tenant: str) -> dict:
        """How much of a tenant's quota is charged."""
        namespace = self._namespaces.get(tenant)
        if namespace is None:
            raise CMTError(f"no namespace registered for tenant {tenant!r}")
        used = len(self._charges.get(tenant, ()))
        return {
            "tenant": tenant,
            "base": namespace.base,
            "capacity": namespace.capacity,
            "used": used,
            "free": namespace.capacity - used,
        }

    # -- second level: mapping configurations ----------------------------
    def intern_mapping(self, window_perm, namespace: str | None = None) -> int:
        """Store a window permutation, deduplicated; return its index.

        With ``namespace`` set, the intern is charged against that
        tenant's quota: each *distinct* configuration a tenant interns
        consumes one of its slots (the identity is shared and free;
        re-interning a configuration the tenant already holds is free).
        Raises :class:`~repro.errors.CMTError` once the quota is spent.
        """
        perm = self.amu.validate(window_perm)
        key = tuple(perm.tolist())
        if namespace is not None:
            ns = self._namespaces.get(namespace)
            if ns is None:
                raise CMTError(
                    f"no namespace registered for tenant {namespace!r}"
                )
            charges = self._charges[namespace]
            is_identity = key == tuple(range(perm.size))
            if not is_identity and key not in charges:
                if len(charges) >= ns.capacity:
                    raise CMTError(
                        f"tenant {namespace!r} mapping quota exhausted "
                        f"({ns.capacity} slots)"
                    )
                charges.add(key)
        if key in self._intern:
            return self._intern[key]
        if len(self._configs) >= self.max_mappings:
            raise CMTError(
                f"CMT mapping table full ({self.max_mappings} concurrent mappings)"
            )
        index = len(self._configs)
        # Store a private copy: the caller (and a shadow table interning
        # the same array) must not alias the SRAM contents.
        self._configs.append(perm.copy())
        self._intern[key] = index
        self.driver_writes += 1
        return index

    @property
    def live_mappings(self) -> int:
        """Number of interned mapping configurations (incl. identity)."""
        return len(self._configs)

    def config_of(self, mapping_index: int) -> np.ndarray:
        """The window permutation stored at a second-level entry."""
        if not 0 <= mapping_index < len(self._configs):
            raise CMTError(f"unknown mapping index {mapping_index}")
        return self._configs[mapping_index].copy()

    # -- first level: per-chunk indices -----------------------------------
    def set_chunk(self, chunk_no: int, mapping_index: int) -> None:
        """Driver write: bind a chunk to an interned mapping."""
        if not 0 <= chunk_no < self.num_chunks:
            raise CMTError(f"chunk {chunk_no} outside table")
        if not 0 <= mapping_index < len(self._configs):
            raise CMTError(f"mapping index {mapping_index} not interned")
        self._chunk_table[chunk_no] = mapping_index
        self.driver_writes += 1

    def mapping_index_of(self, chunk_no):
        """Look up mapping indices for chunk numbers (scalar or array)."""
        if isinstance(chunk_no, np.ndarray):
            if chunk_no.size and int(chunk_no.max()) >= self.num_chunks:
                raise CMTError("chunk number outside table")
            return self._chunk_table[chunk_no.astype(np.int64)]
        if not 0 <= int(chunk_no) < self.num_chunks:
            raise CMTError(f"chunk {chunk_no} outside table")
        return int(self._chunk_table[int(chunk_no)])

    def reset_chunk(self, chunk_no: int) -> None:
        """Return a chunk to the identity mapping (chunk freed)."""
        self.set_chunk(chunk_no, 0)

    # -- RAS: shadow compare, rollback and fault hooks ---------------------
    def diff(self, shadow: "ChunkMappingTable") -> dict:
        """Where this table's SRAM disagrees with a shadow copy.

        Returns ``{"entries": [chunk_no, ...], "configs": [index, ...]}``
        — the first-level entries and second-level configurations that
        differ.  Both tables must have the same shape; the shadow is
        expected to have seen the same driver writes.
        """
        if (
            shadow.num_chunks != self.num_chunks
            or shadow.live_mappings != self.live_mappings
        ):
            raise CMTError("shadow CMT shape does not match")
        entries = np.nonzero(self._chunk_table != shadow._chunk_table)[0]
        configs = [
            index
            for index in range(len(self._configs))
            if not np.array_equal(self._configs[index], shadow._configs[index])
        ]
        return {"entries": [int(c) for c in entries], "configs": configs}

    def restore_from(self, shadow: "ChunkMappingTable") -> int:
        """Roll corrupted SRAM back to a shadow copy's contents.

        Returns the number of repaired words (entries + configs); each
        counts as one driver write.  The intern map is rebuilt, since
        corruption may have invalidated its keys.
        """
        delta = self.diff(shadow)
        repaired = len(delta["entries"]) + len(delta["configs"])
        self._chunk_table = shadow._chunk_table.copy()
        self._configs = [config.copy() for config in shadow._configs]
        self._intern = {
            tuple(config.tolist()): index
            for index, config in enumerate(self._configs)
        }
        self.driver_writes += repaired
        return repaired

    def flip_entry_bit(self, chunk_no: int, bit: int) -> None:
        """Fault-injection hook: flip one bit of a first-level entry.

        Models an SRAM upset — no driver write is counted and the
        intern map is untouched.  The resulting index may be valid-but-
        wrong (silent rebinding) or out of range (caught by audits).
        """
        if not 0 <= chunk_no < self.num_chunks:
            raise CMTError(f"chunk {chunk_no} outside table")
        if not 0 <= bit < 16:
            raise CMTError(f"entry bit {bit} outside storage width")
        self._chunk_table[chunk_no] ^= np.uint16(1 << bit)

    def flip_config_bit(self, mapping_index: int, lane: int, bit: int) -> None:
        """Fault-injection hook: flip one bit of a second-level config.

        ``lane`` selects one column selector of the stored permutation.
        The corrupted value may stop being a permutation (caught by the
        window-permutation audit) or alias another one.  The intern map
        deliberately goes stale — hardware has no intern map; a
        subsequent :meth:`restore_from` rebuilds it.
        """
        if not 0 <= mapping_index < len(self._configs):
            raise CMTError(f"unknown mapping index {mapping_index}")
        perm = self._configs[mapping_index]
        if not 0 <= lane < perm.size:
            raise CMTError(f"config lane {lane} outside window")
        if not 0 <= bit < 16:
            raise CMTError(f"config bit {bit} outside selector width")
        perm[lane] ^= 1 << bit

    # -- storage accounting (Section 5.3) ----------------------------------
    @property
    def index_bits(self) -> int:
        """Width of a first-level entry (8 bits for 256 mappings)."""
        return max(1, (self.max_mappings - 1).bit_length())

    def storage_bits_two_level(self) -> int:
        """SRAM bits for the paper's two-level organisation."""
        return (
            self.num_chunks * self.index_bits
            + self.max_mappings * self.amu.config_bits
        )

    def storage_bits_flat(self) -> int:
        """SRAM bits for the naive one-table alternative."""
        return self.num_chunks * self.amu.config_bits

    @property
    def lookup_latency_ns(self) -> float:
        """On-chip SRAM lookup latency (Section 5.3: 6 ns)."""
        return CMT_LOOKUP_LATENCY_NS


def cmt_storage_report(
    memory_bytes: int = 128 * 1024**3,
    chunk_bytes: int = 2 * 1024**2,
    window_bits: int = 15,
    max_mappings: int = 256,
) -> dict[str, float]:
    """Reproduce the Section 5.3 storage math (67.94 KB vs 491 KB flat).

    Defaults describe the paper's sizing example: a 128 GB socket.
    """
    table = ChunkMappingTable(
        num_chunks=memory_bytes // chunk_bytes,
        window_bits=window_bits,
        max_mappings=max_mappings,
    )
    two_level = table.storage_bits_two_level()
    flat = table.storage_bits_flat()
    return {
        "num_chunks": table.num_chunks,
        "index_bits": table.index_bits,
        "config_bits": table.amu.config_bits,
        "two_level_kb": two_level / 8 / 1000,
        "flat_kb": flat / 8 / 1000,
        "saving_factor": flat / two_level,
        "lookup_latency_ns": table.lookup_latency_ns,
    }
