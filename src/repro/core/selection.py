"""End-to-end address-mapping selection (Section 6.2).

Given per-variable profiles, produce one AMU window permutation per
variable, using one of the paper's three strategies:

* **direct / per-application** (``SDM+BSM``): one bit-shuffle mapping
  for the whole application, chosen from the aggregate flip rates.
* **K-Means** (``SDM+BSM+ML``): cluster the major variables' bit-flip-
  rate vectors into *k* patterns; one mapping per cluster centroid.
* **DL-assisted K-Means** (``SDM+BSM+DL``): cluster learned LSTM
  embeddings instead; mappings still come from each cluster's average
  flip rates (step 3 of Section 6.2).

Each result records wall-clock profiling time, which is what Fig. 13
compares.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.bitfield import AddressLayout
from repro.core.bitshuffle import select_window_permutation
from repro.core.chunks import ChunkGeometry
from repro.errors import ProfilingError
from repro.ml.dlkmeans import AutoencoderConfig, DLAssistedKMeans
from repro.ml.kmeans import KMeans
from repro.profiling.profiler import VariableProfile, WorkloadProfile

__all__ = [
    "MappingSelection",
    "mapping_for_stride",
    "select_application_mapping",
    "select_mappings_kmeans",
    "select_mappings_dl",
]


def mapping_for_stride(
    stride_lines: int,
    layout: AddressLayout,
    geometry: ChunkGeometry,
) -> np.ndarray:
    """The programmer-directed path: a window permutation from a known
    stride, no profiling (Section 6.2's opening paragraph).

    A stride of ``s`` cache lines flips window bit ``log2(s)`` on every
    access and the bits above it down the carry chain; the synthetic
    flip-rate vector below encodes exactly that, so the regular
    bit-shuffle selector routes those bits to the channel field.
    """
    if stride_lines < 1:
        raise ProfilingError("stride must be at least one line")
    low, high = geometry.window_slice()
    hot = int(np.log2(stride_lines))
    rates = np.zeros(high - low)
    for position in range(high - low):
        distance = position - hot
        if distance >= 0:
            rates[position] = 2.0 ** (-distance)
    return select_window_permutation(rates, layout, geometry)


@dataclass
class MappingSelection:
    """Chosen window permutations and the variable-to-cluster binding."""

    method: str
    k: int
    window_perms: list[np.ndarray]
    variable_cluster: dict[int, int]  # variable id -> cluster index
    elapsed_seconds: float
    details: dict = field(default_factory=dict)

    def perm_for_variable(self, variable_id: int) -> np.ndarray | None:
        """The window permutation chosen for a variable, if any."""
        cluster = self.variable_cluster.get(variable_id)
        if cluster is None:
            return None
        return self.window_perms[cluster]

    @property
    def num_mappings(self) -> int:
        """Distinct mappings the selection produced."""
        return len(self.window_perms)


def _perm_from_rates(
    rates: np.ndarray, layout: AddressLayout, geometry: ChunkGeometry
) -> np.ndarray:
    return select_window_permutation(rates, layout, geometry)


def select_application_mapping(
    profile: WorkloadProfile,
    layout: AddressLayout,
    geometry: ChunkGeometry,
) -> MappingSelection:
    """One mapping for the whole application (the ``SDM+BSM`` policy)."""
    start = time.perf_counter()
    window = geometry.window_slice()
    addresses = (
        np.concatenate([p.addresses for p in profile.profiles])
        if profile.profiles
        else np.zeros(0, dtype=np.uint64)
    )
    if addresses.size == 0:
        raise ProfilingError("profile has no addresses")
    from repro.profiling.bfrv import window_flip_rates

    rates = window_flip_rates(addresses, window)
    perm = _perm_from_rates(rates, layout, geometry)
    variable_cluster = {p.variable_id: 0 for p in profile.profiles}
    return MappingSelection(
        method="application-bsm",
        k=1,
        window_perms=[perm],
        variable_cluster=variable_cluster,
        elapsed_seconds=time.perf_counter() - start,
    )


def _majors_or_fail(
    profile: WorkloadProfile, coverage: float
) -> list[VariableProfile]:
    majors = profile.major_variables(coverage)
    if not majors:
        raise ProfilingError("no major variables to cluster")
    return majors


def _cluster_mappings(
    majors: list[VariableProfile],
    labels: np.ndarray,
    k: int,
    layout: AddressLayout,
    geometry: ChunkGeometry,
) -> list[np.ndarray]:
    """Step 3: per cluster, average flip rates pick the mapping."""
    window = geometry.window_slice()
    perms: list[np.ndarray] = []
    for cluster in range(k):
        members = [m for m, label in zip(majors, labels) if label == cluster]
        if members:
            rates = np.mean(
                [m.window_flip_rates(window) for m in members], axis=0
            )
        else:
            rates = np.ones(window[1] - window[0])
        perms.append(_perm_from_rates(rates, layout, geometry))
    return perms


def select_mappings_kmeans(
    profile: WorkloadProfile,
    k: int,
    layout: AddressLayout,
    geometry: ChunkGeometry,
    seed: int = 0,
    coverage: float = 0.8,
) -> MappingSelection:
    """Cluster major variables on BFRVs with K-Means (``SDM+BSM+ML``)."""
    start = time.perf_counter()
    majors = _majors_or_fail(profile, coverage)
    window = geometry.window_slice()
    vectors = np.stack([m.window_flip_rates(window) for m in majors])
    effective_k = min(k, len(majors))
    result = KMeans(effective_k, seed=seed).fit(vectors)
    perms = _cluster_mappings(majors, result.labels, effective_k, layout, geometry)
    variable_cluster = {
        m.variable_id: int(label) for m, label in zip(majors, result.labels)
    }
    return MappingSelection(
        method="kmeans",
        k=effective_k,
        window_perms=perms,
        variable_cluster=variable_cluster,
        elapsed_seconds=time.perf_counter() - start,
        details={"inertia": result.inertia, "iterations": result.iterations},
    )


def select_mappings_dl(
    profile: WorkloadProfile,
    k: int,
    layout: AddressLayout,
    geometry: ChunkGeometry,
    config: AutoencoderConfig | None = None,
    coverage: float = 0.8,
) -> MappingSelection:
    """Cluster major variables on learned embeddings (``SDM+BSM+DL``)."""
    start = time.perf_counter()
    majors = _majors_or_fail(profile, coverage)
    window = geometry.window_slice()
    delta_traces = [m.delta_trace() for m in majors]
    effective_k = min(k, len(majors))
    clusterer = DLAssistedKMeans(effective_k, config=config)
    result = clusterer.fit(delta_traces, window=window)
    perms = _cluster_mappings(majors, result.labels, effective_k, layout, geometry)
    variable_cluster = {
        m.variable_id: int(label) for m, label in zip(majors, result.labels)
    }
    return MappingSelection(
        method="dl-kmeans",
        k=effective_k,
        window_perms=perms,
        variable_cluster=variable_cluster,
        elapsed_seconds=time.perf_counter() - start,
        details={
            "vocab_coverage": result.vocab_coverage,
            "final_loss": result.loss_history[-1] if result.loss_history else None,
        },
    )
