"""SDAM controller: the PA-to-HA stage of the memory controller.

Two translator implementations share one interface:

* :class:`GlobalMappingTranslator` — the hardware-only baselines
  (``BS+DM``, ``BS+BSM``, ``BS+HM``): a single boot-time mapping applied
  to every physical address.
* :class:`SDAMController` — the paper's contribution: per-chunk mappings
  selected through the CMT and applied by the AMU, with the chunk number
  passing through unchanged (Section 4's correctness rule).

Both translate whole numpy traces at once; the SDAM path groups the
trace by live mapping index so each distinct mapping is applied with one
vectorised pass.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.core.amu import AddressMappingUnit
from repro.core.chunks import ChunkGeometry
from repro.core.cmt import ChunkMappingTable
from repro.core.mapping import LinearMapping, PermutationMapping
from repro.errors import MappingError

__all__ = ["AddressTranslator", "GlobalMappingTranslator", "SDAMController"]


class AddressTranslator(Protocol):
    """Anything that can turn a PA trace into an HA trace."""

    def translate(self, pa: np.ndarray) -> np.ndarray:
        """Map physical addresses to hardware addresses."""
        ...  # pragma: no cover - protocol


class GlobalMappingTranslator:
    """A single fixed mapping for the whole physical address space."""

    def __init__(self, mapping: PermutationMapping | LinearMapping):
        self.mapping = mapping

    def translate(self, pa: np.ndarray) -> np.ndarray:
        """Apply the boot-time mapping to a PA trace."""
        return np.asarray(self.mapping.apply(np.asarray(pa, dtype=np.uint64)))

    def __repr__(self) -> str:
        return f"GlobalMappingTranslator({self.mapping!r})"


class SDAMController:
    """CMT + AMU on the memory path.

    The controller owns the chunk-mapping table.  Software (the kernel
    substrate) registers window permutations and binds chunks to them;
    the datapath then translates traces chunk-by-chunk.
    """

    def __init__(self, geometry: ChunkGeometry, max_mappings: int = 256):
        self.geometry = geometry
        self.amu = AddressMappingUnit(geometry.window_bits)
        self.cmt = ChunkMappingTable(
            num_chunks=geometry.num_chunks,
            window_bits=geometry.window_bits,
            max_mappings=max_mappings,
        )

    # -- software-facing control interface ---------------------------------
    def register_mapping(self, mapping) -> int:
        """Intern a mapping; accepts a window permutation or a full one.

        A full-width :class:`PermutationMapping` must leave bits outside
        the chunk-offset window untouched.
        """
        if isinstance(mapping, PermutationMapping):
            low, high = self.geometry.window_slice()
            if mapping.width < high:
                raise MappingError("mapping narrower than the chunk window")
            window_perm = mapping.window_permutation(low, high)
            if not mapping.restricted_window(low, high):
                raise MappingError(
                    "SDAM mappings must keep line-offset and chunk-number "
                    "bits in place"
                )
        else:
            window_perm = np.asarray(mapping, dtype=np.int64)
        return self.cmt.intern_mapping(window_perm)

    def assign_chunk(self, chunk_no: int, mapping_id: int) -> None:
        """Bind a chunk to an interned mapping (a CMT driver write)."""
        self.cmt.set_chunk(chunk_no, mapping_id)

    def release_chunk(self, chunk_no: int) -> None:
        """Return a freed chunk to the identity mapping."""
        self.cmt.reset_chunk(chunk_no)

    def full_mapping(self, mapping_id: int) -> PermutationMapping:
        """The full-width permutation a mapping id realises."""
        window_perm = self.cmt.config_of(mapping_id)
        return self.amu.full_mapping(window_perm, self.geometry)

    # -- datapath -----------------------------------------------------------
    def translate(self, pa: np.ndarray) -> np.ndarray:
        """PA -> HA for a whole trace, chunk by chunk through the CMT."""
        pa = np.asarray(pa, dtype=np.uint64)
        self.geometry.check_address(pa)
        chunk_no = self.geometry.chunk_number(pa)
        mapping_idx = self.cmt.mapping_index_of(np.asarray(chunk_no))
        ha = pa.copy()
        for idx in np.unique(mapping_idx):
            if idx == 0:
                continue  # identity: nothing to shuffle
            select = mapping_idx == idx
            mapping = self.full_mapping(int(idx))
            ha[select] = mapping.apply(pa[select])
        return ha

    def translate_scalar(self, pa: int) -> int:
        """Convenience single-address translation."""
        return int(self.translate(np.array([pa], dtype=np.uint64))[0])

    def __repr__(self) -> str:
        return (
            f"SDAMController({self.geometry!r}, "
            f"live_mappings={self.cmt.live_mappings})"
        )
