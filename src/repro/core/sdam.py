"""SDAM controller: the PA-to-HA stage of the memory controller.

Two translator implementations share one interface:

* :class:`GlobalMappingTranslator` — the hardware-only baselines
  (``BS+DM``, ``BS+BSM``, ``BS+HM``): a single boot-time mapping applied
  to every physical address.
* :class:`SDAMController` — the paper's contribution: per-chunk mappings
  selected through the CMT and applied by the AMU, with the chunk number
  passing through unchanged (Section 4's correctness rule).

Both translate whole numpy traces at once, and both expose the fused
datapath hook :meth:`translation_groups`: the trace partitioned into
(selector, :class:`~repro.core.bitmatrix.BitOperator`) groups, which the
memory side precomposes with its field extraction so a trace goes
PA -> (channel, bank, row, column) in one vectorised pass with no
intermediate hardware-address array (see ``repro.hbm.decode``).

The SDAM path short-circuits when only the boot identity mapping is
live, applies a single compiled operator when a trace touches one
mapping, and otherwise tabulates each live mapping's crossbar — the
chunk-offset window is small (15 bits by default), so a mapping's AMU
truth table fits in one small array and a mixed-mapping trace
translates with a single gather instead of one masked pass per mapping.
"""

from __future__ import annotations

from typing import Iterator, Protocol

import numpy as np

from repro.core.amu import AddressMappingUnit
from repro.core.bitmatrix import BitOperator
from repro.core.chunks import ChunkGeometry
from repro.core.cmt import ChunkMappingTable
from repro.core.mapping import LinearMapping, PermutationMapping
from repro.errors import MappingError

__all__ = ["AddressTranslator", "GlobalMappingTranslator", "SDAMController"]


class AddressTranslator(Protocol):
    """Anything that can turn a PA trace into an HA trace."""

    def translate(self, pa: np.ndarray) -> np.ndarray:
        """Map physical addresses to hardware addresses."""
        ...  # pragma: no cover - protocol

    def translation_groups(
        self, pa: np.ndarray
    ) -> Iterator[tuple[np.ndarray | None, BitOperator]]:
        """Partition a trace into (selector, operator) groups.

        A ``None`` selector means the operator covers the whole trace;
        otherwise the selector is a boolean mask over ``pa``.  Consumers
        fuse each group's operator with downstream bit math (decode)
        instead of materialising the hardware-address array.
        """
        ...  # pragma: no cover - protocol


class GlobalMappingTranslator:
    """A single fixed mapping for the whole physical address space."""

    def __init__(self, mapping: PermutationMapping | LinearMapping):
        self.mapping = mapping

    def translate(self, pa: np.ndarray) -> np.ndarray:
        """Apply the boot-time mapping to a PA trace."""
        if not isinstance(pa, np.ndarray) or pa.dtype != np.uint64:
            pa = np.asarray(pa, dtype=np.uint64)
        return self.mapping.apply(pa)

    def translate_scalar(self, pa: int) -> int:
        """Convenience single-address translation."""
        return int(self.mapping.apply(int(pa)))

    def translation_groups(
        self, pa: np.ndarray
    ) -> Iterator[tuple[np.ndarray | None, BitOperator]]:
        """One group: the boot-time mapping covers everything."""
        yield None, self.mapping.as_operator()

    def __repr__(self) -> str:
        return f"GlobalMappingTranslator({self.mapping!r})"


class SDAMController:
    """CMT + AMU on the memory path.

    The controller owns the chunk-mapping table.  Software (the kernel
    substrate) registers window permutations and binds chunks to them;
    the datapath then translates traces chunk-by-chunk.
    """

    #: Widest chunk-offset window the controller will tabulate.  Beyond
    #: this the truth tables stop fitting in cache (and memory: 256
    #: mappings x 2^bits x 4 B) and the per-mapping group loop wins.
    LUT_MAX_WINDOW_BITS = 16

    def __init__(
        self,
        geometry: ChunkGeometry,
        max_mappings: int = 256,
        shadow: bool = True,
    ):
        self.geometry = geometry
        self.amu = AddressMappingUnit(geometry.window_bits)
        self.cmt = ChunkMappingTable(
            num_chunks=geometry.num_chunks,
            window_bits=geometry.window_bits,
            max_mappings=max_mappings,
        )
        # Software's defensive copy of the CMT SRAM: every driver write
        # is mirrored here, never fault-injection hooks, so a RAS scrub
        # can diff the two and roll corruption back (Section 4's
        # correctness rule made self-checking).  Cheap — one extra
        # uint16 per chunk plus the interned configs.
        self.shadow_cmt: ChunkMappingTable | None = (
            ChunkMappingTable(
                num_chunks=geometry.num_chunks,
                window_bits=geometry.window_bits,
                max_mappings=max_mappings,
            )
            if shadow
            else None
        )
        # Full-width operators per mapping index.  CMT configurations are
        # immutable once interned (set_chunk rebinds chunks, never edits
        # a config) unless fault injection corrupts them — which must
        # call :meth:`invalidate_caches`.
        self._operators: dict[int, BitOperator] = {}
        # Crossbar truth tables, one row per interned mapping; rows are
        # appended as mappings arrive and never change afterwards.
        self._window_luts: np.ndarray | None = None
        # Fault-injection hook: mapping index -> the (valid but wrong)
        # window permutation the misprogrammed crossbar actually applies.
        self._misprogrammed: dict[int, np.ndarray] = {}

    # -- software-facing control interface ---------------------------------
    def register_namespace(self, namespace) -> None:
        """Reserve a tenant slice of the mapping budget (see CMT docs).

        The shadow table mirrors the reservation so its shape keeps
        matching the live SRAM under quota pressure.
        """
        self.cmt.register_namespace(namespace)
        if self.shadow_cmt is not None:
            self.shadow_cmt.register_namespace(namespace)

    def release_namespace(self, tenant: str) -> None:
        """Return a tenant's slice of the mapping budget."""
        self.cmt.release_namespace(tenant)
        if self.shadow_cmt is not None:
            self.shadow_cmt.release_namespace(tenant)

    def register_mapping(self, mapping, namespace: str | None = None) -> int:
        """Intern a mapping; accepts a window permutation or a full one.

        A full-width :class:`PermutationMapping` must leave bits outside
        the chunk-offset window untouched.  With ``namespace`` set the
        intern is charged against that tenant's registered quota.
        """
        if isinstance(mapping, PermutationMapping):
            low, high = self.geometry.window_slice()
            if mapping.width < high:
                raise MappingError("mapping narrower than the chunk window")
            window_perm = mapping.window_permutation(low, high)
            if not mapping.restricted_window(low, high):
                raise MappingError(
                    "SDAM mappings must keep line-offset and chunk-number "
                    "bits in place"
                )
        else:
            window_perm = np.asarray(mapping, dtype=np.int64)
        index = self.cmt.intern_mapping(window_perm, namespace=namespace)
        if self.shadow_cmt is not None:
            self.shadow_cmt.intern_mapping(window_perm, namespace=namespace)
        return index

    def assign_chunk(self, chunk_no: int, mapping_id: int) -> None:
        """Bind a chunk to an interned mapping (a CMT driver write)."""
        self.cmt.set_chunk(chunk_no, mapping_id)
        if self.shadow_cmt is not None:
            self.shadow_cmt.set_chunk(chunk_no, mapping_id)

    def release_chunk(self, chunk_no: int) -> None:
        """Return a freed chunk to the identity mapping."""
        self.cmt.reset_chunk(chunk_no)
        if self.shadow_cmt is not None:
            self.shadow_cmt.reset_chunk(chunk_no)

    def full_mapping(self, mapping_id: int) -> PermutationMapping:
        """The full-width permutation a mapping id realises."""
        window_perm = self.cmt.config_of(mapping_id)
        return self.amu.full_mapping(window_perm, self.geometry)

    def operator_of(self, mapping_id: int) -> BitOperator:
        """The full-width GF(2) operator a mapping id realises (cached).

        A misprogrammed crossbar (see :meth:`misprogram_crossbar`)
        substitutes its wrong-but-valid permutation here — the datapath
        faithfully applies what the broken hardware would.
        """
        operator = self._operators.get(mapping_id)
        if operator is None:
            wrong = self._misprogrammed.get(mapping_id)
            if wrong is not None:
                full = self.amu.full_mapping(wrong, self.geometry)
            else:
                full = self.full_mapping(mapping_id)
            operator = full.as_operator()
            self._operators[mapping_id] = operator
        return operator

    # -- RAS hooks -----------------------------------------------------------
    def invalidate_caches(self) -> None:
        """Drop derived translation state (operators, crossbar LUTs).

        Required after anything mutates CMT contents outside the driver
        interface — fault injection or a shadow rollback — since both
        caches assume interned configurations are immutable.
        """
        self._operators.clear()
        self._window_luts = None

    def misprogram_crossbar(self, mapping_id: int, wrong_perm) -> None:
        """Fault-injection hook: the AMU applies the wrong permutation.

        The CMT SRAM stays correct (a shadow compare sees nothing), but
        translations through ``mapping_id`` use ``wrong_perm`` — a
        *valid* window permutation, so every structural audit passes
        and only a translation spot check against the shadow-derived
        expectation can detect it.
        """
        perm = self.amu.validate(wrong_perm)
        if not 0 <= mapping_id < self.cmt.live_mappings:
            raise MappingError(f"unknown mapping index {mapping_id}")
        self._misprogrammed[mapping_id] = perm
        self.invalidate_caches()

    def reprogram_crossbar(self) -> int:
        """Repair hook: rewrite crossbar state from the CMT configs.

        Clears any misprogramming and rebuilds derived caches on
        demand.  Returns the number of entries that were wrong.
        """
        wrong = len(self._misprogrammed)
        self._misprogrammed.clear()
        self.invalidate_caches()
        return wrong

    def window_lut(self) -> np.ndarray | None:
        """Crossbar truth tables: ``lut[index, window] = shuffled window``.

        One row per live mapping (row 0 is the identity), materialising
        what the AMU crossbar computes combinationally in hardware.
        ``None`` when the window is too wide to tabulate
        (:attr:`LUT_MAX_WINDOW_BITS`).  Rows are appended lazily as
        mappings are interned; existing rows are immutable, so callers
        may hold a reference across driver writes.
        """
        window_bits = self.geometry.window_bits
        if window_bits > self.LUT_MAX_WINDOW_BITS:
            return None
        live = self.cmt.live_mappings
        if self._window_luts is None or self._window_luts.shape[0] < live:
            luts = np.empty((live, 1 << window_bits), dtype=np.uint32)
            start = 0
            if self._window_luts is not None:
                start = self._window_luts.shape[0]
                luts[:start] = self._window_luts
            values = np.arange(1 << window_bits, dtype=np.uint64)
            for index in range(start, live):
                config = self._misprogrammed.get(index)
                if config is None:
                    config = self.cmt.config_of(index)
                operator = self.amu.window_operator(config)
                luts[index] = operator.apply(values).astype(np.uint32)
            self._window_luts = luts
        return self._window_luts

    # -- datapath -----------------------------------------------------------
    def _mapping_indices(self, pa: np.ndarray) -> np.ndarray:
        chunk_no = self.geometry.chunk_number(pa)
        return self.cmt.mapping_index_of(np.asarray(chunk_no))

    def translation_groups(
        self, pa: np.ndarray
    ) -> Iterator[tuple[np.ndarray | None, BitOperator]]:
        """Partition a PA trace by live mapping index.

        Single-mapping fast path: when only one mapping can be (or is)
        involved, one whole-trace group comes back and callers skip the
        per-group masking entirely.
        """
        if not isinstance(pa, np.ndarray) or pa.dtype != np.uint64:
            pa = np.asarray(pa, dtype=np.uint64)
        self.geometry.check_address(pa)
        width = self.geometry.address_bits
        if self.cmt.live_mappings == 1 or pa.size == 0:
            # Only the boot identity is interned: nothing can shuffle.
            yield None, BitOperator.identity(width)
            return
        mapping_idx = self._mapping_indices(pa)
        first = int(mapping_idx.flat[0])
        if not np.any(mapping_idx != first):
            yield None, self.operator_of(first)
            return
        for idx in np.unique(mapping_idx):
            yield mapping_idx == idx, self.operator_of(int(idx))

    def translate(self, pa: np.ndarray) -> np.ndarray:
        """PA -> HA for a whole trace, chunk by chunk through the CMT.

        A trace under one mapping goes through that mapping's compiled
        operator; a mixed-mapping trace goes through the crossbar truth
        tables — one CMT gather, one LUT gather — with the masked
        per-mapping group loop kept as the wide-window fallback.
        """
        if not isinstance(pa, np.ndarray) or pa.dtype != np.uint64:
            pa = np.asarray(pa, dtype=np.uint64)
        self.geometry.check_address(pa)
        if self.cmt.live_mappings == 1 or pa.size == 0:
            return pa.copy()
        mapping_idx = self._mapping_indices(pa)
        first = int(mapping_idx.flat[0])
        if not np.any(mapping_idx != first):
            operator = self.operator_of(first)
            return pa.copy() if operator.is_identity() else operator.apply(pa)
        lut = self.window_lut()
        if lut is None:  # window too wide to tabulate: masked group loop
            ha = pa.copy()
            for idx in np.unique(mapping_idx):
                operator = self.operator_of(int(idx))
                if operator.is_identity():
                    continue
                select = mapping_idx == idx
                ha[select] = operator.apply(pa[select])
            return ha
        low, _high = self.geometry.window_slice()
        window_bits = self.geometry.window_bits
        window = (pa >> np.uint64(low)) & np.uint64((1 << window_bits) - 1)
        rows = mapping_idx.astype(np.int64) << np.int64(window_bits)
        shuffled = lut.reshape(-1)[rows | window.astype(np.int64)]
        keep = np.uint64(~(((1 << window_bits) - 1) << low) & (2**64 - 1))
        return (pa & keep) | (shuffled.astype(np.uint64) << np.uint64(low))

    def translate_scalar(self, pa: int) -> int:
        """Convenience single-address translation."""
        return int(self.translate(np.array([pa], dtype=np.uint64))[0])

    def __repr__(self) -> str:
        return (
            f"SDAMController({self.geometry!r}, "
            f"live_mappings={self.cmt.live_mappings})"
        )
