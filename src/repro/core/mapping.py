"""Physical-address to hardware-address (PA-to-HA) mappings.

The paper's memory controller transforms a flat physical address into the
3D hierarchical hardware address of channels/banks/rows (Section 2.2).
Two families of invertible mapping are modelled:

* :class:`PermutationMapping` — the *bit-shuffle* family (Akin et al.,
  and the paper's AMU): HA bit ``i`` is a copy of one PA bit.  Exactly
  the mapping class the AMU crossbar can realise.
* :class:`LinearMapping` — the *hashing* family (Liu et al., the
  ``BS+HM`` baseline): each HA bit is the XOR of a set of PA bits, i.e.
  an invertible linear transform over GF(2).

Both are thin, validated views over one substrate — the
:class:`~repro.core.bitmatrix.BitOperator` GF(2) algebra — so they share
``apply`` / ``inverse`` / ``as_operator`` and a rigorous invertibility
check, the property Section 4 requires for functional correctness ("one
PA can map to only one HA or vice versa").  ``apply`` runs the
operator's compiled bit program: the identity is one vector pass, a
typical shuffle a handful, instead of one pass per address bit.
"""

from __future__ import annotations

import numpy as np

from repro.core.bitfield import AddressLayout
from repro.core.bitmatrix import BitOperator, gf2_inverse
from repro.errors import MappingError

__all__ = [
    "PermutationMapping",
    "LinearMapping",
    "identity_mapping",
    "mapping_from_field_sources",
]


class PermutationMapping:
    """A bit permutation: HA bit ``i`` equals PA bit ``source[i]``.

    ``source`` must be a permutation of ``range(width)``.  Application
    lowers to the operator algebra's compiled program: all bits moving
    the same distance travel in one shift/mask pass.
    """

    def __init__(self, source: "list[int] | np.ndarray"):
        source_arr = np.asarray(source, dtype=np.int64)
        if source_arr.ndim != 1:
            raise MappingError("source must be a 1-D sequence of bit indices")
        width = source_arr.size
        if width == 0:
            raise MappingError("mapping must cover at least one bit")
        if sorted(source_arr.tolist()) != list(range(width)):
            raise MappingError(
                "source is not a permutation of bit indices "
                f"0..{width - 1}: {source_arr.tolist()}"
            )
        self._source = source_arr
        self._width = width
        self._operator = BitOperator.from_permutation(source_arr)

    @property
    def width(self) -> int:
        """Number of address bits the mapping covers."""
        return self._width

    @property
    def source(self) -> np.ndarray:
        """Copy of the permutation vector (HA bit -> PA bit)."""
        return self._source.copy()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PermutationMapping):
            return NotImplemented
        return np.array_equal(self._source, other._source)

    def __hash__(self) -> int:
        return hash(tuple(self._source.tolist()))

    def __repr__(self) -> str:
        return f"PermutationMapping({self._source.tolist()})"

    def is_identity(self) -> bool:
        """True when every HA bit equals its PA bit."""
        return bool(np.array_equal(self._source, np.arange(self._width)))

    def apply(self, pa):
        """Map physical address(es) to hardware address(es)."""
        return self._operator.apply(pa)

    def as_operator(self) -> BitOperator:
        """The mapping as a GF(2) bit operator (shared, do not mutate)."""
        return self._operator

    def inverse(self) -> "PermutationMapping":
        """Return the HA-to-PA mapping."""
        inv = np.empty(self._width, dtype=np.int64)
        inv[self._source] = np.arange(self._width)
        return PermutationMapping(inv)

    def compose(self, inner: "PermutationMapping") -> "PermutationMapping":
        """Return the mapping equivalent to ``self(inner(pa))``."""
        if inner.width != self._width:
            raise MappingError("cannot compose mappings of different widths")
        return PermutationMapping(inner._source[self._source])

    def restricted_window(self, low: int, high: int) -> bool:
        """True if the permutation only moves bits inside ``[low, high)``.

        SDAM requires the chunk number (bits >= chunk shift) and the
        byte-in-line offset (bits < line shift) to pass through unchanged.
        """
        idx = np.arange(self._width)
        outside = (idx < low) | (idx >= high)
        return bool(np.array_equal(self._source[outside], idx[outside]))

    def window_permutation(self, low: int, high: int) -> np.ndarray:
        """Extract the permutation of bits in ``[low, high)``, 0-based.

        Raises :class:`MappingError` if the mapping moves bits across the
        window boundary.
        """
        if not self.restricted_window(low, high):
            raise MappingError(
                f"mapping moves bits outside window [{low}, {high})"
            )
        return self._source[low:high] - low

    def as_matrix(self) -> np.ndarray:
        """Return the equivalent GF(2) matrix (rows = HA bits)."""
        return self._operator.matrix

    def to_linear(self) -> "LinearMapping":
        """The same mapping as a GF(2) linear transform."""
        return LinearMapping(self.as_matrix())


class LinearMapping:
    """An invertible GF(2) linear transform: HA = M · PA (bit vectors).

    ``matrix[i, j] == 1`` means PA bit ``j`` contributes (by XOR) to HA
    bit ``i``.  Construction verifies invertibility; a singular matrix —
    one that would alias two PAs onto one HA — is rejected, enforcing the
    Section 4 correctness guarantee.
    """

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=np.uint8) & 1
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise MappingError("matrix must be square")
        self._matrix = matrix
        self._inverse_matrix = gf2_inverse(matrix)  # raises if singular
        self._width = matrix.shape[0]
        self._operator = BitOperator(matrix)

    @property
    def width(self) -> int:
        """Number of address bits the transform covers."""
        return self._width

    @property
    def matrix(self) -> np.ndarray:
        """Copy of the GF(2) matrix (rows = HA bits)."""
        return self._matrix.copy()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinearMapping):
            return NotImplemented
        return np.array_equal(self._matrix, other._matrix)

    def __hash__(self) -> int:
        return hash(self._matrix.tobytes())

    def __repr__(self) -> str:
        terms = int(self._matrix.sum())
        return f"LinearMapping(width={self._width}, xor_terms={terms})"

    def apply(self, pa):
        """Map physical address(es) to hardware address(es)."""
        scalar = np.isscalar(pa) or isinstance(pa, int)
        if scalar:
            return self._operator.apply(pa)
        pa_arr = np.atleast_1d(np.asarray(pa, dtype=np.uint64))
        return self._operator.apply(pa_arr).reshape(np.shape(pa))

    def as_operator(self) -> BitOperator:
        """The transform as a GF(2) bit operator (shared, do not mutate)."""
        return self._operator

    def inverse(self) -> "LinearMapping":
        """The HA-to-PA transform (precomputed at construction)."""
        return LinearMapping(self._inverse_matrix)

    def is_identity(self) -> bool:
        """True when the matrix is the identity."""
        return bool(np.array_equal(self._matrix, np.eye(self._width, dtype=np.uint8)))

    def as_matrix(self) -> np.ndarray:
        """Alias of :attr:`matrix` (shared mapping interface)."""
        return self.matrix


def identity_mapping(width: int) -> PermutationMapping:
    """The boot-time default (``BS+DM``): HA bit i = PA bit i."""
    return PermutationMapping(np.arange(width))


def mapping_from_field_sources(
    layout: AddressLayout, sources: dict[str, list[int]]
) -> PermutationMapping:
    """Build a permutation by stating which PA bits feed each HA field.

    ``sources[name]`` lists PA bit positions, LSB of the field first.
    Fields absent from ``sources`` keep their identity bits only if those
    bits are not claimed elsewhere; remaining PA bits fill remaining HA
    positions in ascending order.

    This is the constructor the bit-shuffle selector uses: "put the five
    highest-flipping PA bits into the channel field".
    """
    width = layout.width
    source = np.full(width, -1, dtype=np.int64)
    used: set[int] = set()
    for name, bits in sources.items():
        field = layout[name]
        if len(bits) != field.width:
            raise MappingError(
                f"field {name!r} needs {field.width} source bits, got {len(bits)}"
            )
        for offset, pa_bit in enumerate(bits):
            if not 0 <= pa_bit < width:
                raise MappingError(f"source bit {pa_bit} outside address width")
            if pa_bit in used:
                raise MappingError(f"PA bit {pa_bit} assigned twice")
            used.add(pa_bit)
            source[field.shift + offset] = pa_bit
    remaining = [bit for bit in range(width) if bit not in used]
    holes = np.nonzero(source < 0)[0]
    if len(remaining) != len(holes):  # pragma: no cover - internal invariant
        raise MappingError("field sources do not tile the address")
    source[holes] = remaining
    return PermutationMapping(source)
