"""Hashing-based address mapping (the ``BS+HM`` baseline).

Following Liu et al. ("Get out of the valley") and Zhang et al.'s
permutation-based interleaving: each channel-select bit is the XOR of
its identity bit with several higher address bits, concentrating entropy
from a wide bit range into the channel field.  The construction keeps
the transform linear and invertible over GF(2), so PA-to-HA stays
one-to-one without any table.

The default fold reaches a bounded distance up the address ("a number of
address bits", Section 7.3), so most strides spread well but a few
patterns still collapse — the behaviour Fig. 11(b) attributes to HM.
"""

from __future__ import annotations

from repro.core.bitfield import AddressLayout
from repro.core.bitmatrix import BitOperator
from repro.core.mapping import LinearMapping
from repro.errors import MappingError

__all__ = ["hash_mapping", "default_hash_mapping"]


def hash_mapping(
    layout: AddressLayout,
    fold_sources: dict[int, list[int]],
) -> LinearMapping:
    """Build a hashing mapping from explicit XOR source sets.

    ``fold_sources[channel_bit_index]`` lists the *extra* PA bit
    positions XORed into that channel bit (its identity bit is always
    included).  Bits used as fold sources keep their identity positions
    too, which is what makes the matrix invertible.  The fold is
    expressed as identity-plus-XOR-terms in the
    :class:`~repro.core.bitmatrix.BitOperator` algebra, so it compiles
    to one pass for the identity part plus one per fold source.
    """
    if "channel" not in layout:
        raise MappingError("layout has no channel field to hash into")
    channel = layout["channel"]
    terms: dict[int, list[int]] = {}
    for channel_bit, extras in fold_sources.items():
        if not 0 <= channel_bit < channel.width:
            raise MappingError(
                f"channel bit {channel_bit} outside 0..{channel.width - 1}"
            )
        row = channel.shift + channel_bit
        for pa_bit in extras:
            if not 0 <= pa_bit < layout.width:
                raise MappingError(f"fold source bit {pa_bit} out of range")
            if channel.shift <= pa_bit < channel.end:
                raise MappingError(
                    "folding channel bits into each other risks singularity"
                )
            terms.setdefault(row, []).append(pa_bit)
    operator = BitOperator.from_xor_terms(layout.width, terms)
    return LinearMapping(operator.matrix)


def default_hash_mapping(
    layout: AddressLayout,
    reach_bits: int = 20,
    stride_step: int | None = None,
) -> LinearMapping:
    """The default entropy-harvesting hash used by the ``BS+HM`` system.

    Channel bit *i* (at position ``p``) XORs in bits ``p + k*step`` for
    all ``k >= 1`` with ``p + k*step`` below ``channel.shift +
    reach_bits``.  With the canonical layout (channel at bits 6..10,
    step 5) every address bit up to the reach is folded into exactly one
    channel bit, so any power-of-two stride whose flipping bits stay
    below the reach still rotates through all channels.  Strides whose
    activity lives above the reach defeat the hash — the residual
    weakness the paper observes.
    """
    channel = layout["channel"]
    step = stride_step if stride_step is not None else channel.width
    limit = min(layout.width, channel.shift + reach_bits)
    fold_sources: dict[int, list[int]] = {}
    for channel_bit in range(channel.width):
        position = channel.shift + channel_bit
        extras = []
        bit = position + step
        while bit < limit:
            extras.append(bit)
            bit += step
        fold_sources[channel_bit] = extras
    return hash_mapping(layout, fold_sources)
