"""Bit-shuffle mapping selection from bit-flip-rate profiles (BSM).

Following Akin et al. and Section 6.2 step (3) of the paper: given a
bit-flip-rate vector over the address bits of a trace, the bits that
flip most are routed to the channel field (they change between nearby
accesses, so they spread consecutive requests across channels), the next
most active feed the column field (row-buffer locality), and the calmest
bits become bank and row indices.

Two entry points:

* :func:`select_window_permutation` — for SDAM: permute only the
  chunk-offset window; returns the AMU configuration.
* :func:`select_global_mapping` — for the ``BS+BSM`` baseline: one
  whole-address permutation chosen from a workload-mix profile.
"""

from __future__ import annotations

import numpy as np

from repro.core.bitfield import AddressLayout
from repro.core.chunks import ChunkGeometry
from repro.core.mapping import PermutationMapping
from repro.errors import MappingError

__all__ = [
    "rank_bits_by_flip_rate",
    "select_window_permutation",
    "select_global_mapping",
]

# HA fields filled from the hottest PA bits down: channel selects get
# the hottest bits (spread temporally-adjacent requests across
# channels), columns the next (row-buffer locality).  The *bank* field
# then takes the highest-position leftover bits: within a chunk those
# distinguish co-resident allocations, so concurrently-accessed
# variables that share a mapping land in different banks instead of
# thrashing one row buffer.  Rows absorb the rest (the coldest bits).
FIELD_PRIORITY = ("channel", "column")
POSITIONAL_FIELDS = ("bank", "row")


def rank_bits_by_flip_rate(flip_rates: np.ndarray) -> np.ndarray:
    """Bit indices sorted hottest-first; ties broken toward lower bits.

    Lower bits win ties because they correspond to finer-grained
    interleaving, which can only help channel spreading.
    """
    flip_rates = np.asarray(flip_rates, dtype=np.float64)
    order = np.lexsort((np.arange(flip_rates.size), -flip_rates))
    return order


def _assign_fields(
    layout: AddressLayout,
    ranked_bits: np.ndarray,
    window_low: int,
    window_high: int,
    bank_by_position: bool = True,
) -> np.ndarray:
    """Fill window HA positions: hot bits to channel/column first.

    With ``bank_by_position`` (the chunked SDAM case) banks take the
    highest-position leftovers — those distinguish co-resident
    allocations, separating concurrent variables into different banks.
    Without it (whole-address mappings, where the top bits barely vary)
    banks and rows simply continue in flip-rate order.
    """
    source = np.arange(layout.width, dtype=np.int64)
    ranked = [int(b) for b in ranked_bits if window_low <= int(b) < window_high]
    if len(ranked) != window_high - window_low:
        raise MappingError("ranked bits do not cover the permutation window")
    positions_by_field: dict[str, list[int]] = {}
    for name in FIELD_PRIORITY + POSITIONAL_FIELDS:
        if name not in layout:
            continue
        positions_by_field[name] = [
            position
            for position in layout[name].bit_positions()
            if window_low <= position < window_high
        ]
    cursor = 0
    for name in FIELD_PRIORITY:
        for position in positions_by_field.get(name, []):
            source[position] = ranked[cursor]
            cursor += 1
    leftovers = ranked[cursor:]
    remaining = sorted(leftovers, reverse=True) if bank_by_position else list(leftovers)
    for name in POSITIONAL_FIELDS:
        for position in positions_by_field.get(name, []):
            source[position] = remaining.pop(0)
    # Window positions outside any known field (none in the canonical
    # layout) take whatever is left.
    for position in range(window_low, window_high):
        claimed = any(
            position in positions
            for positions in positions_by_field.values()
        )
        if not claimed:
            source[position] = remaining.pop(0)
    return source


def select_window_permutation(
    window_flip_rates: np.ndarray,
    layout: AddressLayout,
    geometry: ChunkGeometry,
) -> np.ndarray:
    """Choose the AMU window permutation for one access pattern.

    ``window_flip_rates`` has one entry per chunk-offset window bit
    (bit 0 of the vector = the lowest shuffleable address bit).
    Returns the window-relative permutation (HA window bit -> PA window
    bit) ready for :meth:`ChunkMappingTable.intern_mapping`.
    """
    low, high = geometry.window_slice()
    rates = np.asarray(window_flip_rates, dtype=np.float64)
    if rates.size != high - low:
        raise MappingError(
            f"expected {high - low} window flip rates, got {rates.size}"
        )
    full = np.zeros(layout.width, dtype=np.float64)
    full[low:high] = rates
    ranked = rank_bits_by_flip_rate(full)
    source = _assign_fields(layout, ranked, low, high)
    return source[low:high] - low


def select_global_mapping(
    flip_rates: np.ndarray,
    layout: AddressLayout,
    line_bits: int = 6,
) -> PermutationMapping:
    """Choose one whole-address bit-shuffle (the ``BS+BSM`` baseline).

    All bits above the byte-in-line offset may move.  ``flip_rates`` has
    one entry per address bit (entries below ``line_bits`` are ignored).
    """
    rates = np.asarray(flip_rates, dtype=np.float64)
    if rates.size != layout.width:
        raise MappingError(
            f"expected {layout.width} flip rates, got {rates.size}"
        )
    ranked = rank_bits_by_flip_rate(rates)
    source = _assign_fields(
        layout, ranked, line_bits, layout.width, bank_by_position=False
    )
    return PermutationMapping(source)
