"""SDAM core: address mappings, chunks, AMU, CMT and the controller.

This package is the paper's primary contribution — everything the
modified memory controller and its software-visible control plane need.
"""

from repro.core.amu import AddressMappingUnit, amu_area_report
from repro.core.bitfield import AddressLayout, BitField
from repro.core.bitmatrix import BitOperator, BitProjection, gf2_inverse, gf2_matmul
from repro.core.bitshuffle import (
    rank_bits_by_flip_rate,
    select_global_mapping,
    select_window_permutation,
)
from repro.core.chunks import ChunkGeometry
from repro.core.cmt import (
    ChunkMappingTable,
    MappingNamespace,
    cmt_storage_report,
    partition_budget,
)
from repro.core.hashing import default_hash_mapping, hash_mapping
from repro.core.mapping import (
    LinearMapping,
    PermutationMapping,
    identity_mapping,
    mapping_from_field_sources,
)
from repro.core.security import GuardPlan, plan_guard_rows, verify_isolation
from repro.core.selection import (
    MappingSelection,
    mapping_for_stride,
    select_application_mapping,
    select_mappings_dl,
    select_mappings_kmeans,
)
from repro.core.sdam import (
    AddressTranslator,
    GlobalMappingTranslator,
    SDAMController,
)
from repro.core.verification import (
    VerificationReport,
    audit_controller,
    verify_mapping,
)

__all__ = [
    "AddressLayout",
    "AddressMappingUnit",
    "AddressTranslator",
    "BitField",
    "BitOperator",
    "BitProjection",
    "ChunkGeometry",
    "ChunkMappingTable",
    "GlobalMappingTranslator",
    "GuardPlan",
    "LinearMapping",
    "MappingNamespace",
    "MappingSelection",
    "PermutationMapping",
    "SDAMController",
    "VerificationReport",
    "amu_area_report",
    "audit_controller",
    "cmt_storage_report",
    "default_hash_mapping",
    "gf2_inverse",
    "gf2_matmul",
    "hash_mapping",
    "identity_mapping",
    "mapping_for_stride",
    "mapping_from_field_sources",
    "partition_budget",
    "plan_guard_rows",
    "rank_bits_by_flip_rate",
    "select_application_mapping",
    "select_global_mapping",
    "select_mappings_dl",
    "select_mappings_kmeans",
    "select_window_permutation",
    "verify_isolation",
    "verify_mapping",
]
