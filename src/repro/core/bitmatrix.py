"""GF(2) bit-operator algebra — the one substrate for address math.

Every mapping the paper evaluates (direct, Xilinx-style shuffles, BSM
permutations, XOR/hash folds, SDAM's per-chunk window permutations) and
the controller's final field extraction are *bit-linear* transforms over
GF(2): output bit ``i`` is the XOR of a fixed set of input bits.  This
module gives that observation teeth:

* :class:`BitOperator` — a square, invertible-checkable GF(2) matrix
  with ``compose``, ``invert``, equality and bijectivity checks;
* :class:`BitProjection` — a rectangular operator (a row slice of a
  :class:`BitOperator`), which is exactly what "extract the channel
  field of the mapped address" is.

Both compile to a small vectorised *bit program* ahead of time:

* rows with a single source bit are grouped **by shift distance** — all
  output bits whose source sits ``delta`` positions away are moved with
  one ``(x >> delta) & mask`` pass, so the identity costs one
  instruction and a typical BSM permutation a handful, instead of one
  pass per bit;
* rows with multiple source bits (the hash/XOR family) are evaluated
  column-wise: each contributing input bit broadcasts into the rows it
  feeds with one multiply-XOR pass, so a sparse fold costs ~#fold-terms
  passes rather than #rows popcounts.

Composing a mapping operator with a field projection therefore *fuses*
PA→HA translation and HA→(channel, bank, row, column) decode into one
pass with no intermediate hardware-address array — the hot path of
every sweep cell.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MappingError

__all__ = ["BitOperator", "BitProjection", "gf2_inverse", "gf2_matmul"]


def gf2_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(2) (XOR-accumulated AND)."""
    if a.shape[1] != b.shape[0]:
        raise MappingError(
            f"cannot multiply GF(2) matrices {a.shape} x {b.shape}"
        )
    return (a.astype(np.uint8) @ b.astype(np.uint8)) & 1


def gf2_inverse(matrix: np.ndarray) -> np.ndarray:
    """Invert a square GF(2) matrix; raise MappingError if singular."""
    n = matrix.shape[0]
    work = matrix.astype(np.uint8).copy()
    inverse = np.eye(n, dtype=np.uint8)
    for col in range(n):
        pivot_rows = np.nonzero(work[col:, col])[0]
        if pivot_rows.size == 0:
            raise MappingError("GF(2) matrix is singular (mapping not 1-to-1)")
        pivot = col + int(pivot_rows[0])
        if pivot != col:
            work[[col, pivot]] = work[[pivot, col]]
            inverse[[col, pivot]] = inverse[[pivot, col]]
        other = np.nonzero(work[:, col])[0]
        other = other[other != col]
        work[other] ^= work[col]
        inverse[other] ^= inverse[col]
    return inverse


class _BitProgram:
    """A compiled GF(2) matrix application: shift/mask + broadcast-XOR ops.

    ``shift_ops`` move all single-source rows sharing one source-to-
    destination distance at once; ``xor_ops`` broadcast one input bit
    into every multi-source row it feeds.  The two groups touch disjoint
    output bits, so both accumulate into one result word.
    """

    __slots__ = ("shift_ops", "xor_ops", "in_width", "out_width")

    def __init__(self, matrix: np.ndarray):
        out_width, in_width = matrix.shape
        if in_width > 64 or out_width > 64:
            raise MappingError("bit operators are limited to 64-bit words")
        self.in_width = in_width
        self.out_width = out_width
        single_by_delta: dict[int, int] = {}
        multi_rows: list[int] = []
        for row in range(out_width):
            sources = np.nonzero(matrix[row])[0]
            if sources.size == 1:
                delta = int(sources[0]) - row
                single_by_delta[delta] = single_by_delta.get(delta, 0) | (
                    1 << row
                )
            elif sources.size > 1:
                multi_rows.append(row)
        self.shift_ops = [
            (delta, np.uint64(mask))
            for delta, mask in sorted(single_by_delta.items())
        ]
        xor_by_source: dict[int, int] = {}
        for row in multi_rows:
            for src in np.nonzero(matrix[row])[0]:
                src = int(src)
                xor_by_source[src] = xor_by_source.get(src, 0) | (1 << row)
        self.xor_ops = [
            (np.uint64(src), np.uint64(mask))
            for src, mask in sorted(xor_by_source.items())
        ]

    def run(self, value: np.ndarray) -> np.ndarray:
        """Apply the program to a uint64 array (any shape)."""
        out = np.zeros_like(value)
        for delta, mask in self.shift_ops:
            if delta >= 0:
                out |= (value >> np.uint64(delta)) & mask
            else:
                out |= (value << np.uint64(-delta)) & mask
        one = np.uint64(1)
        for src, mask in self.xor_ops:
            out ^= ((value >> src) & one) * mask
        return out

    @property
    def num_ops(self) -> int:
        """Vector passes per application (the cost model tests assert on)."""
        return len(self.shift_ops) + len(self.xor_ops)


class _BitLinear:
    """Shared behaviour of square operators and rectangular projections."""

    _matrix: np.ndarray
    _program: _BitProgram

    @property
    def matrix(self) -> np.ndarray:
        """Copy of the GF(2) matrix (rows = output bits)."""
        return self._matrix.copy()

    @property
    def in_width(self) -> int:
        """Input word width in bits."""
        return self._program.in_width

    @property
    def out_width(self) -> int:
        """Output word width in bits."""
        return self._program.out_width

    @property
    def num_ops(self) -> int:
        """Compiled vector passes per application."""
        return self._program.num_ops

    def apply(self, value):
        """Apply to scalar or array input; scalars come back as ``int``."""
        if np.isscalar(value) or isinstance(value, int):
            arr = np.asarray([value], dtype=np.uint64)
            return int(self._program.run(arr)[0])
        arr = np.asarray(value)
        if arr.dtype != np.uint64:
            arr = arr.astype(np.uint64)
        return self._program.run(arr)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _BitLinear):
            return NotImplemented
        return self._matrix.shape == other._matrix.shape and bool(
            np.array_equal(self._matrix, other._matrix)
        )

    def __hash__(self) -> int:
        return hash((self._matrix.shape, self._matrix.tobytes()))


class BitProjection(_BitLinear):
    """A rectangular GF(2) operator: ``out_width`` bits of a wider word.

    The fused decode path is built from these: *"channel bits of the
    mapped address"* is the mapping operator with only the channel rows
    kept, re-based to bit 0.
    """

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=np.uint8) & 1
        if matrix.ndim != 2:
            raise MappingError("projection matrix must be 2-D")
        self._matrix = matrix
        self._program = _BitProgram(matrix)

    def __repr__(self) -> str:
        return (
            f"BitProjection({self.out_width}x{self.in_width} bits, "
            f"{self.num_ops} ops)"
        )


class BitOperator(_BitLinear):
    """A square GF(2) bit-linear operator over ``width``-bit words.

    ``matrix[i, j] == 1`` means input bit ``j`` contributes (by XOR) to
    output bit ``i``.  Construction does *not* require invertibility —
    use :meth:`is_bijective` / :meth:`invert` where the Section 4
    guarantee matters; the mapping classes enforce it at their level.
    """

    def __init__(self, matrix: np.ndarray):
        matrix = np.asarray(matrix, dtype=np.uint8) & 1
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise MappingError("operator matrix must be square")
        self._matrix = matrix
        self._program = _BitProgram(matrix)

    # -- constructors ------------------------------------------------------
    @classmethod
    def identity(cls, width: int) -> "BitOperator":
        """The do-nothing operator."""
        if width <= 0:
            raise MappingError("operator width must be positive")
        return cls(np.eye(width, dtype=np.uint8))

    @classmethod
    def from_permutation(cls, source) -> "BitOperator":
        """Operator for a bit permutation: out bit ``i`` = in bit
        ``source[i]``."""
        source = np.asarray(source, dtype=np.int64)
        width = source.size
        if sorted(source.tolist()) != list(range(width)):
            raise MappingError(
                f"source is not a permutation of 0..{width - 1}: "
                f"{source.tolist()}"
            )
        matrix = np.zeros((width, width), dtype=np.uint8)
        matrix[np.arange(width), source] = 1
        return cls(matrix)

    @classmethod
    def from_xor_terms(
        cls, width: int, terms: dict[int, list[int]]
    ) -> "BitOperator":
        """Identity plus XOR folds: out bit ``i`` also XORs in
        ``terms[i]``."""
        matrix = np.eye(width, dtype=np.uint8)
        for row, extras in terms.items():
            if not 0 <= row < width:
                raise MappingError(f"fold target bit {row} out of range")
            for src in extras:
                if not 0 <= src < width:
                    raise MappingError(f"fold source bit {src} out of range")
                matrix[row, src] ^= 1
        return cls(matrix)

    @property
    def width(self) -> int:
        """Word width in bits (square operator)."""
        return self._program.in_width

    def __repr__(self) -> str:
        kind = "perm" if self.is_permutation() else "linear"
        return (
            f"BitOperator(width={self.width}, {kind}, {self.num_ops} ops)"
        )

    # -- algebra -----------------------------------------------------------
    def compose(self, inner: "BitOperator") -> "BitOperator":
        """The operator equivalent to ``self(inner(x))``."""
        if inner.width != self.width:
            raise MappingError("cannot compose operators of different widths")
        return BitOperator(gf2_matmul(self._matrix, inner._matrix))

    def invert(self) -> "BitOperator":
        """The inverse operator; raises MappingError if singular."""
        return BitOperator(gf2_inverse(self._matrix))

    def project(self, shift: int, width: int) -> BitProjection:
        """Rows ``[shift, shift + width)`` re-based to output bit 0.

        ``op.project(f.shift, f.width).apply(pa)`` is the value of field
        ``f`` of the *mapped* address — translation and field extraction
        in one compiled program.
        """
        if width <= 0:
            raise MappingError("projection width must be positive")
        if not 0 <= shift <= self.width - width:
            raise MappingError(
                f"projection [{shift}, {shift + width}) outside "
                f"{self.width}-bit operator"
            )
        return BitProjection(self._matrix[shift : shift + width])

    # -- predicates --------------------------------------------------------
    def is_identity(self) -> bool:
        """True when the matrix is the identity."""
        return bool(
            np.array_equal(self._matrix, np.eye(self.width, dtype=np.uint8))
        )

    def is_permutation(self) -> bool:
        """True when every output bit copies exactly one input bit."""
        return bool(
            (self._matrix.sum(axis=1) == 1).all()
            and (self._matrix.sum(axis=0) == 1).all()
        )

    def is_bijective(self) -> bool:
        """True when the operator is invertible (no PA/HA aliasing)."""
        try:
            gf2_inverse(self._matrix)
        except MappingError:
            return False
        return True

    def permutation_source(self) -> np.ndarray:
        """The ``source`` vector (out bit -> in bit); raises if not a
        permutation."""
        if not self.is_permutation():
            raise MappingError("operator is not a bit permutation")
        return np.nonzero(self._matrix)[1].astype(np.int64)
