"""Address bit-field algebra.

The memory controller views a hardware address (HA) as a concatenation of
named bit fields — byte-in-line offset, channel, column, bank and row.
:class:`BitField` describes one field, :class:`AddressLayout` a complete
layout, in LSB-to-MSB order.  All extract/insert helpers are vectorised
over numpy ``uint64`` arrays so whole traces can be decoded at once.

The canonical HBM2 layout used throughout the reproduction (Section 3 of
DESIGN.md) is ``line(6) | channel(5) | column(2) | bank(3) | row(17)``:
with the identity mapping, consecutive cache lines interleave across the
32 channels, exactly like the boot-time channel-interleaved mapping the
paper uses as its ``BS+DM`` baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

__all__ = ["BitField", "AddressLayout", "extract_bits", "insert_bits"]


def extract_bits(value: np.ndarray | int, shift: int, width: int):
    """Return ``width`` bits of ``value`` starting at bit ``shift``."""
    mask = (1 << width) - 1
    if isinstance(value, np.ndarray):
        return (value >> np.uint64(shift)) & np.uint64(mask)
    return (int(value) >> shift) & mask


def insert_bits(field: np.ndarray | int, shift: int, width: int):
    """Return ``field`` (assumed < 2**width) shifted into bit position."""
    mask = (1 << width) - 1
    if isinstance(field, np.ndarray):
        return (field & np.uint64(mask)) << np.uint64(shift)
    return (int(field) & mask) << shift


@dataclass(frozen=True)
class BitField:
    """One named contiguous bit field inside an address."""

    name: str
    shift: int
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ConfigError(f"field {self.name!r} must have positive width")
        if self.shift < 0:
            raise ConfigError(f"field {self.name!r} has negative shift")

    @property
    def end(self) -> int:
        """First bit position above the field."""
        return self.shift + self.width

    @property
    def mask(self) -> int:
        """Bit mask selecting this field within an address."""
        return ((1 << self.width) - 1) << self.shift

    def extract(self, value):
        """Pull this field out of an address (scalar or array)."""
        return extract_bits(value, self.shift, self.width)

    def insert(self, field_value):
        """Place a field value at this field's position."""
        return insert_bits(field_value, self.shift, self.width)

    def bit_positions(self) -> range:
        """Bit positions occupied by the field, LSB first."""
        return range(self.shift, self.end)


class AddressLayout:
    """An ordered, gap-free partition of an address into named fields.

    Fields are given LSB-first.  The layout validates that fields tile the
    address exactly: no overlap, no hole.
    """

    def __init__(self, fields: list[tuple[str, int]]):
        """Build a layout from ``(name, width)`` pairs, LSB first."""
        if not fields:
            raise ConfigError("layout needs at least one field")
        self._fields: dict[str, BitField] = {}
        self._order: list[str] = []
        shift = 0
        for name, width in fields:
            if name in self._fields:
                raise ConfigError(f"duplicate field {name!r}")
            self._fields[name] = BitField(name, shift, width)
            self._order.append(name)
            shift += width
        self._width = shift

    @property
    def width(self) -> int:
        """Total address width in bits."""
        return self._width

    @property
    def field_names(self) -> list[str]:
        """Field names, LSB-first."""
        return list(self._order)

    def __contains__(self, name: str) -> bool:
        return name in self._fields

    def __getitem__(self, name: str) -> BitField:
        try:
            return self._fields[name]
        except KeyError:
            raise ConfigError(f"layout has no field {name!r}") from None

    def __iter__(self):
        return (self._fields[name] for name in self._order)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AddressLayout):
            return NotImplemented
        return [(f.name, f.width) for f in self] == [
            (f.name, f.width) for f in other
        ]

    def __repr__(self) -> str:
        parts = " | ".join(f"{f.name}({f.width})" for f in self)
        return f"AddressLayout<{parts}>"

    def decode(self, address) -> dict[str, np.ndarray | int]:
        """Split an address (scalar or array) into a dict of field values."""
        return {name: self._fields[name].extract(address) for name in self._order}

    def encode(self, **field_values) -> np.ndarray | int:
        """Assemble an address from named field values.

        Missing fields default to zero; unknown names raise
        :class:`~repro.errors.ConfigError`.
        """
        for name in field_values:
            if name not in self._fields:
                raise ConfigError(f"layout has no field {name!r}")
        parts = [
            self._fields[name].insert(value) for name, value in field_values.items()
        ]
        total = parts[0]
        for part in parts[1:]:
            total = total | part
        return total

    def field_of_bit(self, bit: int) -> BitField:
        """Return the field containing absolute bit position ``bit``."""
        for field in self:
            if field.shift <= bit < field.end:
                return field
        raise ConfigError(f"bit {bit} outside {self._width}-bit layout")
