"""Adaptive-vs-static campaign on a phase-shifting workload.

The experiment behind ``python -m repro adapt``: run the
:class:`~repro.workloads.synthetic.PhaseShiftWorkload` — whose phases
are chosen so that *no* single window permutation serves the whole
trace — once on an adaptive machine (the
:class:`~repro.online.controller.AdaptiveController` watching the
external trace in windows and migrating live) and once under every
relevant static mapping: the boot identity, the paper's offline
profile-then-select mapping, and each mapping the controller itself
adopted, frozen for the whole run.

Both sides are scored identically: the external PA trace is served
window by window through the fast HBM model under whatever mapping is
programmed when the window arrives, and the adaptive side additionally
pays its full migration + reprogram overhead.  The trace is treated as
the post-cache external stream (the controller sits at the memory
controller, below the LLC), so no cache filtering is applied.

A second, stationary trace (the streaming phase for the whole run) is
fed to a fresh controller as the no-thrash control: it must perform
zero remaps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.amu import AddressMappingUnit
from repro.core.bitshuffle import select_window_permutation
from repro.core.chunks import ChunkGeometry
from repro.core.keys import stable_hash
from repro.core.sdam import SDAMController
from repro.errors import CampaignInterrupted, ConfigError
from repro.hbm.config import HBMConfig, hbm2_config
from repro.hbm.backend import create_backend
from repro.hbm.guard import DEFAULT_GUARD_SAMPLE, GuardedBackend, TierFactory
from repro.mem.kernel import Kernel
from repro.mem.malloc import MappingAwareAllocator
from repro.online.controller import AdaptiveController
from repro.profiling.bfrv import window_flip_rates
from repro.workloads.base import Workload
from repro.workloads.synthetic import PhaseShiftWorkload

__all__ = ["AdaptiveCampaignResult", "run_adaptive_campaign"]


@dataclass
class AdaptiveCampaignResult:
    """Everything one adaptive campaign produced."""

    workload: str
    seed: int
    quick: bool
    window_accesses: int
    windows: int
    adaptive_service_ns: float
    overhead_ns: float
    static_ns: dict[str, float]
    best_static: str
    remaps: int
    failed_remaps: int
    declines: int
    stationary_remaps: int
    traffic: dict = field(default_factory=dict)
    journal: list = field(default_factory=list)
    elapsed_seconds: float = 0.0
    resumed: bool = False

    @property
    def adaptive_total_ns(self) -> float:
        """Adaptive service time with all remap overhead charged."""
        return self.adaptive_service_ns + self.overhead_ns

    @property
    def best_static_ns(self) -> float:
        """Aggregate service time of the best static single mapping."""
        return self.static_ns[self.best_static]

    @property
    def speedup(self) -> float:
        """Best static over adaptive (overhead included)."""
        if self.adaptive_total_ns <= 0:
            return 0.0
        return self.best_static_ns / self.adaptive_total_ns

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.workload}: adaptive {self.adaptive_total_ns / 1e3:.1f} us "
            f"(overhead {self.overhead_ns / 1e3:.1f} us, "
            f"{self.remaps} remaps) vs best static "
            f"[{self.best_static}] {self.best_static_ns / 1e3:.1f} us "
            f"-> speedup {self.speedup:.2f}x"
        )

    def to_dict(self) -> dict:
        """A JSON-serialisable form."""
        return {
            "workload": self.workload,
            "seed": self.seed,
            "quick": self.quick,
            "window_accesses": self.window_accesses,
            "windows": self.windows,
            "adaptive_service_ns": self.adaptive_service_ns,
            "overhead_ns": self.overhead_ns,
            "adaptive_total_ns": self.adaptive_total_ns,
            "static_ns": {k: float(v) for k, v in self.static_ns.items()},
            "best_static": self.best_static,
            "best_static_ns": self.best_static_ns,
            "speedup": self.speedup,
            "remaps": self.remaps,
            "failed_remaps": self.failed_remaps,
            "declines": self.declines,
            "stationary_remaps": self.stationary_remaps,
            "traffic": dict(self.traffic),
            "journal": [dict(entry) for entry in self.journal],
            "elapsed_seconds": self.elapsed_seconds,
            "resumed": self.resumed,
        }

    def fingerprint(self) -> dict:
        """:meth:`to_dict` with wall-clock and provenance fields zeroed.

        Two campaigns with the same seed are bit-identical on this —
        the determinism contract the tests assert.  ``resumed`` is
        execution provenance, not computed content: a
        killed-and-resumed campaign fingerprints identically to an
        uninterrupted one.
        """
        data = self.to_dict()
        data["elapsed_seconds"] = 0.0
        data["resumed"] = False
        return data


def _build_stack(
    workload: Workload,
    geometry: ChunkGeometry,
    seed: int,
) -> tuple[Kernel, np.ndarray]:
    """Boot an SDAM kernel, allocate the workload, return its PA trace."""
    sdam = SDAMController(geometry)
    kernel = Kernel(geometry, sdam=sdam)
    space = kernel.spawn()
    allocator = MappingAwareAllocator(kernel, space)
    base = {
        spec.name: allocator.malloc(spec.size_bytes, mapping_id=0, tag=spec.name)
        for spec in workload.variables()
    }
    trace = workload.trace(base, input_seed=seed)[0]
    return kernel, space.translate_trace(trace.va)


def _windows(pa: np.ndarray, window_accesses: int):
    for start in range(0, pa.size, window_accesses):
        yield pa[start : start + window_accesses]


def _serve_static(
    pa: np.ndarray,
    perm,
    geometry: ChunkGeometry,
    model,
    window_accesses: int,
) -> float:
    """Aggregate per-window service time under one frozen mapping."""
    amu = AddressMappingUnit(geometry.window_bits)
    ha = amu.full_mapping(perm, geometry).apply(pa)
    return sum(
        float(model.simulate(window).makespan_ns)
        for window in _windows(ha, window_accesses)
    )


def _campaign_key(
    seed, quick, backend, window_accesses, workload, hbm, geometry
) -> str:
    """Bind a checkpoint to the exact campaign parameters."""
    return stable_hash(
        "adaptive-campaign",
        seed,
        bool(quick),
        backend,
        int(window_accesses),
        workload.name,
        hbm.name,
        hbm.total_bytes,
        hbm.num_channels,
        hbm.banks_per_channel,
        hbm.row_bytes,
        geometry.total_bytes,
        geometry.chunk_bytes,
    )


def run_adaptive_campaign(
    seed: int = 0,
    quick: bool = False,
    config: HBMConfig | None = None,
    geometry: ChunkGeometry | None = None,
    window_accesses: int = 2048,
    workload: Workload | None = None,
    controller_kwargs: dict | None = None,
    backend: str = "fast",
    guard: bool = False,
    guard_sample: float | None = None,
    guard_faults=None,
    checkpoint_path=None,
    resume: bool = False,
    checkpoint_every: int = 8,
    stop_after_window: int | None = None,
) -> AdaptiveCampaignResult:
    """Run the seeded adaptive-vs-static campaign.

    ``quick`` shrinks the trace and the buffer (one chunk instead of
    two) for smoke runs; the experiment's structure is unchanged.
    ``backend`` selects the memory fidelity tier the windows (adaptive
    and static alike) are scored through, and the default policy's
    benefit probes with it; ``guard=True`` wraps that tier in the
    cross-tier divergence guard.

    With ``checkpoint_path`` the campaign persists its kernel,
    controller and service accumulators every ``checkpoint_every``
    windows; ``resume=True`` continues a killed campaign from that
    file with a fingerprint bit-identical to an uninterrupted run.
    ``stop_after_window`` (the test/CI kill model) checkpoints and
    raises :class:`~repro.errors.CampaignInterrupted` once that many
    windows have been served.
    """
    started = time.perf_counter()
    hbm = config or hbm2_config()
    geometry = geometry or ChunkGeometry(total_bytes=hbm.total_bytes)
    if workload is None:
        workload = (
            PhaseShiftWorkload(
                buffer_bytes=2 * 1024 * 1024, accesses_per_phase=49152
            )
            if quick
            else PhaseShiftWorkload(
                buffer_bytes=4 * 1024 * 1024, accesses_per_phase=98304
            )
        )
    if stop_after_window is not None and checkpoint_path is None:
        raise ConfigError("stop_after_window requires a checkpoint_path")
    key = _campaign_key(
        seed, quick, backend, window_accesses, workload, hbm, geometry
    )
    controller_kwargs = dict(controller_kwargs or {})
    controller_kwargs.setdefault("backend", backend)

    # -- adaptive machine ---------------------------------------------------
    resumed = False
    if resume:
        from repro.system.checkpoint import load_checkpoint

        cursor, state = load_checkpoint(checkpoint_path, "adaptive", key)
        kernel = state["kernel"]
        controller = state["controller"]
        model = state["model"]
        pa = state["pa"]
        adaptive_service = state["adaptive_service"]
        windows = state["windows"]
        adopted = state["adopted"]
        resumed = True
    else:
        model = create_backend(backend, hbm, max_inflight=64)
        if guard and backend != "event":
            model = GuardedBackend(
                model,
                primary_factory=TierFactory(backend, hbm, max_inflight=64),
                reference_factory=TierFactory(
                    "event", hbm, max_inflight=64
                ),
                primary_name=backend,
                sample=(
                    guard_sample
                    if guard_sample is not None
                    else DEFAULT_GUARD_SAMPLE
                ),
                mode="demote",
                faults=guard_faults,
                seed=seed,
            )
        kernel, pa = _build_stack(workload, geometry, seed)
        controller = AdaptiveController(
            kernel, mapping_id=0, hbm=hbm, **controller_kwargs
        )
        adaptive_service = 0.0
        windows = 0
        adopted: list[np.ndarray] = []
        cursor = 0

    starts = list(range(0, int(pa.size), window_accesses))

    def _persist(next_index: int) -> None:
        from repro.system.checkpoint import save_checkpoint

        save_checkpoint(
            checkpoint_path,
            "adaptive",
            key,
            next_index,
            {
                "kernel": kernel,
                "controller": controller,
                "model": model,
                "pa": pa,
                "adaptive_service": adaptive_service,
                "windows": windows,
                "adopted": adopted,
            },
        )

    if checkpoint_path is not None and not resume:
        _persist(0)
    for window_index in range(cursor, len(starts)):
        start = starts[window_index]
        window = pa[start : start + window_accesses]
        windows += 1
        ha = kernel.sdam.translate(window)
        adaptive_service += float(model.simulate(ha).makespan_ns)
        entry = controller.observe(window)
        if entry is not None and entry["kind"] == "remap":
            index = kernel.hardware_index_of(controller.mapping_id)
            adopted.append(kernel.sdam.cmt.config_of(index))
        completed = window_index + 1
        if checkpoint_path is not None and (
            completed % max(1, checkpoint_every) == 0
            or completed == len(starts)
        ):
            _persist(completed)
        if stop_after_window is not None and completed >= stop_after_window:
            raise CampaignInterrupted(
                f"adaptive campaign stopped after window {completed}/"
                f"{len(starts)} (checkpoint saved)",
                checkpoint_path=str(checkpoint_path),
            )

    # -- static baselines ---------------------------------------------------
    low, high = geometry.window_slice()
    identity = np.arange(high - low, dtype=np.int64)
    offline = select_window_permutation(
        window_flip_rates(pa, (low, high)), hbm.layout(), geometry
    )
    candidates: dict[str, np.ndarray] = {
        "identity": identity,
        "offline-bfrv": offline,
    }
    for perm in adopted:
        key = "adaptive-perm-" + "".join(f"{int(b):x}" for b in perm)
        candidates.setdefault(key, perm)
    static_ns = {
        label: _serve_static(pa, perm, geometry, model, window_accesses)
        for label, perm in candidates.items()
    }
    best_static = min(static_ns, key=lambda label: static_ns[label])

    # -- stationary control: the no-thrash guarantee ------------------------
    stationary = PhaseShiftWorkload(
        buffer_bytes=workload.buffer_bytes
        if isinstance(workload, PhaseShiftWorkload)
        else 2 * 1024 * 1024,
        accesses_per_phase=window_accesses * 8,
        phases=("stream",),
    )
    stat_kernel, stat_pa = _build_stack(stationary, geometry, seed)
    stat_controller = AdaptiveController(
        stat_kernel, mapping_id=0, hbm=hbm, **controller_kwargs
    )
    for window in _windows(stat_pa, window_accesses):
        stat_controller.observe(window)

    declines = sum(
        1 for entry in controller.journal if entry["kind"] == "decline"
    )
    return AdaptiveCampaignResult(
        workload=workload.name,
        seed=seed,
        quick=quick,
        window_accesses=window_accesses,
        windows=windows,
        adaptive_service_ns=adaptive_service,
        overhead_ns=float(controller.traffic.overhead_ns),
        static_ns=static_ns,
        best_static=best_static,
        remaps=controller.traffic.remaps,
        failed_remaps=controller.traffic.failed_remaps,
        declines=declines,
        stationary_remaps=stat_controller.traffic.remaps,
        traffic=controller.traffic.to_dict(),
        journal=[dict(entry) for entry in controller.journal],
        elapsed_seconds=time.perf_counter() - started,
        resumed=resumed,
    )
