"""Online adaptive remapping: profile, detect, decide, migrate — live.

The offline pipeline selects mappings once from a profiling run; this
package closes the loop at runtime.  A streaming estimator
(:class:`StreamingBFRV`) keeps decayed bit-flip statistics over the
external trace, a :class:`PhaseDetector` flags when they diverge from
the vector that justified the current mapping, a :class:`RemapPolicy`
prices the switch against live-migration cost, and the
:class:`AdaptiveController` executes approved remaps through the
existing CMT/AMU/migration machinery.  :func:`run_adaptive_campaign`
is the seeded adaptive-vs-static experiment behind
``python -m repro adapt``.
"""

from repro.online.campaign import AdaptiveCampaignResult, run_adaptive_campaign
from repro.online.controller import AdaptiveController
from repro.online.phase import PhaseDetector, PhaseEvent, bfrv_distance
from repro.online.policy import RemapDecision, RemapPolicy
from repro.online.stream import StreamingBFRV, VariableActivity

__all__ = [
    "AdaptiveCampaignResult",
    "AdaptiveController",
    "PhaseDetector",
    "PhaseEvent",
    "RemapDecision",
    "RemapPolicy",
    "StreamingBFRV",
    "VariableActivity",
    "bfrv_distance",
    "run_adaptive_campaign",
]
