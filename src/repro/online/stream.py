"""Streaming access-pattern estimators for online mapping adaptation.

The offline pipeline (Section 6.2) profiles a whole run, then selects
mappings once.  The online controller instead watches the external
memory trace *as it happens*, in windows, and needs the same bit-flip
statistics incrementally:

* :class:`StreamingBFRV` — an exponentially-decayed bit-flip-rate
  vector.  Each window's XOR-delta flip counts fold into decayed
  accumulators; with ``decay=1.0`` the accumulated counts over
  concatenated windows are exactly the batch counts, so the streamed
  rate is **bit-exact** with :func:`repro.profiling.bfrv.
  bit_flip_rate_vector` on the full trace (tested property).  The
  boundary pair between the last address of one window and the first
  of the next is counted, which is what makes the equivalence hold for
  any window split.
* :class:`VariableActivity` — decayed per-variable reference counts and
  page-granular footprints, the online analogue of the profiler's
  major-variable statistics.

Degenerate windows (fewer than two addresses, or constant addresses)
never raise — they are counted and flagged, matching the hardened
batch estimator.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProfilingError
from repro.profiling.bfrv import (
    DEGENERATE_CONSTANT,
    DEGENERATE_SHORT,
    flip_counts,
)

__all__ = ["StreamingBFRV", "VariableActivity"]


class StreamingBFRV:
    """Exponentially-decayed bit-flip-rate vector over trace windows.

    Per window, per-bit flip counts and pair counts are folded in as

        counts = decay * counts + window_flip_counts
        pairs  = decay * pairs  + window_pairs

    and the current estimate is ``counts / pairs``.  ``decay=1.0``
    degenerates to the batch estimator over everything seen so far;
    smaller decays forget old phases faster (a decay of ``d`` halves a
    window's weight every ``log(0.5)/log(d)`` windows).
    """

    def __init__(
        self,
        num_bits: int,
        bit_offset: int = 0,
        decay: float = 0.5,
    ):
        if num_bits <= 0:
            raise ProfilingError("num_bits must be positive")
        if not 0.0 < decay <= 1.0:
            raise ProfilingError("decay must be in (0, 1]")
        self.num_bits = num_bits
        self.bit_offset = bit_offset
        self.decay = decay
        self._counts = np.zeros(num_bits, dtype=np.float64)
        self._pairs = 0.0
        self._last: np.uint64 | None = None
        self.windows_seen = 0
        self.degenerate_windows = 0
        #: Degeneracy of the most recent window (None when it carried
        #: measurable flips), mirroring the batch ``flags`` protocol.
        self.last_degenerate: str | None = None

    def update(self, addresses: np.ndarray) -> np.ndarray:
        """Fold one trace window in; returns the updated rate vector.

        The pair between the previous window's last address and this
        window's first address is included, so concatenating windows
        loses no information relative to the batch estimator.
        """
        addresses = np.asarray(addresses, dtype=np.uint64).ravel()
        self.windows_seen += 1
        self._counts *= self.decay
        self._pairs *= self.decay
        stream = addresses
        if self._last is not None and addresses.size:
            stream = np.concatenate(
                [np.array([self._last], dtype=np.uint64), addresses]
            )
        if addresses.size:
            self._last = addresses[-1]
        if stream.size < 2:
            self.last_degenerate = DEGENERATE_SHORT
            self.degenerate_windows += 1
            return self.rates
        diffs = stream[1:] ^ stream[:-1]
        # Constant windows still contribute pairs (the batch denominator
        # counts them); the flag just records that nothing flipped.
        if not diffs.any():
            self.last_degenerate = DEGENERATE_CONSTANT
            self.degenerate_windows += 1
        else:
            self.last_degenerate = None
            self._counts += flip_counts(diffs, self.num_bits, self.bit_offset)
        self._pairs += float(diffs.size)
        return self.rates

    @property
    def rates(self) -> np.ndarray:
        """The current decayed flip-rate estimate (zeros before data)."""
        if self._pairs <= 0.0:
            return np.zeros(self.num_bits)
        return self._counts / self._pairs

    @property
    def pairs_weight(self) -> float:
        """Decayed number of consecutive pairs backing the estimate."""
        return self._pairs

    def reset(self, carry_last: bool = True) -> None:
        """Forget all statistics (optionally keeping the boundary address)."""
        self._counts[:] = 0.0
        self._pairs = 0.0
        if not carry_last:
            self._last = None

    def __repr__(self) -> str:
        return (
            f"StreamingBFRV(bits={self.num_bits}+{self.bit_offset}, "
            f"decay={self.decay}, windows={self.windows_seen})"
        )


class VariableActivity:
    """Decayed per-variable reference counts and page footprints.

    The online stand-in for the profiler's major-variable analysis:
    which variables dominate the recent external traffic, and how many
    distinct pages each touched.  Footprints are per-window distinct
    page counts folded with the same decay as references — an
    inexpensive working-set proxy, not an exact union over time.
    """

    def __init__(self, page_bits: int = 12, decay: float = 0.5):
        if not 0.0 < decay <= 1.0:
            raise ProfilingError("decay must be in (0, 1]")
        self.page_bits = page_bits
        self.decay = decay
        self.references: dict[int, float] = {}
        self.footprint_pages: dict[int, float] = {}
        self.windows_seen = 0

    def update(self, addresses: np.ndarray, variable: np.ndarray) -> None:
        """Fold one window's tagged accesses in."""
        addresses = np.asarray(addresses, dtype=np.uint64).ravel()
        variable = np.asarray(variable, dtype=np.int64).ravel()
        if addresses.size != variable.size:
            raise ProfilingError("addresses and variable tags disagree")
        self.windows_seen += 1
        for table in (self.references, self.footprint_pages):
            for key in table:
                table[key] *= self.decay
        if addresses.size == 0:
            return
        pages = addresses >> np.uint64(self.page_bits)
        for var in np.unique(variable):
            mask = variable == var
            var = int(var)
            self.references[var] = self.references.get(var, 0.0) + float(
                mask.sum()
            )
            self.footprint_pages[var] = self.footprint_pages.get(
                var, 0.0
            ) + float(np.unique(pages[mask]).size)

    def majors(self, coverage: float = 0.8) -> list[int]:
        """Variables covering ``coverage`` of decayed references."""
        if not 0 < coverage <= 1:
            raise ProfilingError("coverage must be in (0, 1]")
        total = sum(self.references.values())
        ranked = sorted(
            self.references.items(), key=lambda item: (-item[1], item[0])
        )
        majors: list[int] = []
        accumulated = 0.0
        for var, refs in ranked:
            if accumulated >= coverage * total:
                break
            majors.append(var)
            accumulated += refs
        return majors

    def to_dict(self) -> dict:
        """JSON-friendly snapshot of the decayed counters."""
        return {
            "windows_seen": self.windows_seen,
            "references": {
                str(var): float(refs)
                for var, refs in sorted(self.references.items())
            },
            "footprint_pages": {
                str(var): float(pages)
                for var, pages in sorted(self.footprint_pages.items())
            },
        }
