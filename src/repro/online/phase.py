"""Phase-change detection over streaming bit-flip-rate vectors.

A mapping is justified by the BFRV it was selected from.  The detector
keeps that *reference* vector and compares each new decayed estimate
against it; when the distance stays above a trigger threshold for a
configurable number of consecutive windows (persistence — one noisy
window never fires), the workload has entered a new phase and the
controller should reconsider its mapping.

Hysteresis is built in twice over: the persistence requirement on the
way up, and the rule that the reference only moves when the *caller*
accepts the new phase (after a remap, or after an explicit decline) —
so a stationary trace, whose estimate never leaves the reference's
neighbourhood, can never fire at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ProfilingError

__all__ = ["PhaseEvent", "PhaseDetector", "bfrv_distance"]


def bfrv_distance(a: np.ndarray, b: np.ndarray, metric: str = "l1") -> float:
    """Distance between two flip-rate vectors.

    ``l1`` is the mean absolute per-bit difference (scale-free in the
    number of bits, bounded by 1).  ``cosine`` is ``1 - cos(a, b)`` —
    shape-sensitive but magnitude-blind; two zero vectors are at
    distance 0, a zero vector against a non-zero one at distance 1.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ProfilingError("flip-rate vectors have different shapes")
    if metric == "l1":
        return float(np.abs(a - b).mean())
    if metric == "cosine":
        norm_a = float(np.linalg.norm(a))
        norm_b = float(np.linalg.norm(b))
        if norm_a == 0.0 and norm_b == 0.0:
            return 0.0
        if norm_a == 0.0 or norm_b == 0.0:
            return 1.0
        return 1.0 - float(np.dot(a, b)) / (norm_a * norm_b)
    raise ProfilingError(f"unknown BFRV distance metric {metric!r}")


@dataclass(frozen=True)
class PhaseEvent:
    """One detected phase change."""

    window: int  # detector window index at which the change fired
    distance: float  # distance from the reference when it fired
    streak: int  # consecutive over-threshold windows behind it
    metric: str


class PhaseDetector:
    """Flags when the decayed BFRV diverges from the mapping's reference.

    Parameters
    ----------
    threshold:
        Trigger distance.  Must be exceeded on ``persistence``
        consecutive windows to fire.
    persistence:
        Consecutive over-threshold windows required (the hysteresis
        against one-window noise).
    metric:
        ``"l1"`` (default) or ``"cosine"`` — see :func:`bfrv_distance`.
    """

    def __init__(
        self,
        threshold: float = 0.08,
        persistence: int = 2,
        metric: str = "l1",
    ):
        if threshold <= 0:
            raise ProfilingError("threshold must be positive")
        if persistence < 1:
            raise ProfilingError("persistence must be >= 1")
        bfrv_distance(np.zeros(1), np.zeros(1), metric)  # validate early
        self.threshold = threshold
        self.persistence = persistence
        self.metric = metric
        self._reference: np.ndarray | None = None
        self._streak = 0
        self.windows_seen = 0
        self.last_distance = 0.0
        self.events: list[PhaseEvent] = []

    @property
    def reference(self) -> np.ndarray | None:
        """The BFRV that justified the current mapping (a copy)."""
        return None if self._reference is None else self._reference.copy()

    def set_reference(self, rates: np.ndarray) -> None:
        """Re-anchor on the BFRV that now justifies the current regime."""
        self._reference = np.asarray(rates, dtype=np.float64).copy()
        self._streak = 0

    def observe(self, rates: np.ndarray) -> PhaseEvent | None:
        """Fold one window's estimate in; returns an event when firing.

        The first observation becomes the reference.  After an event
        the caller decides what to do and must re-anchor with
        :meth:`set_reference`; until then the detector keeps firing at
        most every ``persistence`` windows.
        """
        self.windows_seen += 1
        if self._reference is None:
            self.set_reference(rates)
            self.last_distance = 0.0
            return None
        self.last_distance = bfrv_distance(rates, self._reference, self.metric)
        if self.last_distance <= self.threshold:
            self._streak = 0
            return None
        self._streak += 1
        if self._streak < self.persistence:
            return None
        event = PhaseEvent(
            window=self.windows_seen,
            distance=self.last_distance,
            streak=self._streak,
            metric=self.metric,
        )
        self.events.append(event)
        self._streak = 0
        return event

    def __repr__(self) -> str:
        return (
            f"PhaseDetector(threshold={self.threshold}, "
            f"persistence={self.persistence}, metric={self.metric!r}, "
            f"events={len(self.events)})"
        )
