"""Cost/benefit pricing of a live remap.

A detected phase change does not automatically justify a remap: moving
a mapping group's live data costs real device time (every allocated
line is read through the old mapping and rewritten through the new
one), plus the CMT writes and the AMU crossbar reprogram.  The policy
prices that against the projected service-time gain of the candidate
permutation and only approves when the gain clearly amortises.

The benefit estimate is *measured, not guessed*: the recent window's
PA trace is replayed through the fast window model under both the
current and the candidate full-width mappings, and the per-window
makespan difference is projected over a configurable horizon.  The
migration estimate prices the copy as a balanced two-transfer-per-line
stream plus fixed per-chunk CMT-write and per-remap AMU-reprogram
costs.  Cooldown and per-chunk remap budgets guard against thrash even
when the detector fires legitimately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.amu import AddressMappingUnit
from repro.core.chunks import ChunkGeometry
from repro.errors import ProfilingError
from repro.hbm.config import HBMConfig
from repro.hbm.backend import create_backend

__all__ = ["RemapDecision", "RemapPolicy", "CMT_WRITE_NS", "AMU_REPROGRAM_NS"]

#: Modeled cost of one CMT driver write (Table 3's lookup-class SRAM).
CMT_WRITE_NS = 10.0
#: Modeled cost of rewriting the AMU crossbar configuration lanes.
AMU_REPROGRAM_NS = 200.0


@dataclass(frozen=True)
class RemapDecision:
    """The policy's verdict on one phase-change event."""

    remap: bool
    reason: str  # approved | cooldown | same-mapping | insufficient-gain
    #          | chunk-budget | degenerate-profile
    gain_ns_per_window: float = 0.0
    projected_gain_ns: float = 0.0
    migration_cost_ns: float = 0.0
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """A JSON-serialisable form."""
        return {
            "remap": self.remap,
            "reason": self.reason,
            "gain_ns_per_window": self.gain_ns_per_window,
            "projected_gain_ns": self.projected_gain_ns,
            "migration_cost_ns": self.migration_cost_ns,
            "details": dict(self.details),
        }


class RemapPolicy:
    """Prices a candidate remap against its projected benefit.

    Parameters
    ----------
    horizon_windows:
        How many future windows the new phase is assumed to last; the
        per-window gain is projected over this horizon.
    benefit_margin:
        Safety factor: the projected gain must exceed
        ``benefit_margin * migration_cost`` to approve.
    cooldown_windows:
        Minimum windows between approved remaps (thrash guard).
    max_remaps_per_chunk:
        Lifetime migration budget per chunk; a group containing a chunk
        over budget declines further remaps.
    probe_accesses:
        Cap on the replayed window length for the benefit probe.
    backend:
        Memory fidelity tier the benefit probes replay through (a
        registered backend name; ``"fast"`` by default).
    """

    def __init__(
        self,
        hbm: HBMConfig,
        geometry: ChunkGeometry,
        horizon_windows: int = 8,
        benefit_margin: float = 1.2,
        cooldown_windows: int = 4,
        max_remaps_per_chunk: int = 8,
        probe_accesses: int = 4096,
        max_inflight: int = 64,
        backend: str = "fast",
    ):
        if horizon_windows < 1:
            raise ProfilingError("horizon_windows must be >= 1")
        if cooldown_windows < 0:
            raise ProfilingError("cooldown_windows must be >= 0")
        self.hbm = hbm
        self.geometry = geometry
        self.horizon_windows = horizon_windows
        self.benefit_margin = benefit_margin
        self.cooldown_windows = cooldown_windows
        self.max_remaps_per_chunk = max_remaps_per_chunk
        self.probe_accesses = probe_accesses
        self.backend = backend
        self._model = create_backend(backend, hbm, max_inflight=max_inflight)
        self._amu = AddressMappingUnit(geometry.window_bits)

    # -- pieces -------------------------------------------------------------
    def probe_window_ns(self, pa: np.ndarray, window_perm) -> float:
        """Simulated makespan of a PA window under one window mapping."""
        pa = np.asarray(pa, dtype=np.uint64)
        if pa.size > self.probe_accesses:
            pa = pa[-self.probe_accesses :]
        mapping = self._amu.full_mapping(window_perm, self.geometry)
        return float(self._model.simulate(mapping.apply(pa)).makespan_ns)

    def migration_estimate_ns(self, live_lines: int, chunks: int) -> float:
        """Priced copy traffic + control-plane reprogram for one remap.

        The copy is two line transfers per live line, optimistically
        spread over every channel (the migrator interleaves reads under
        the old mapping with writes under the new one).
        """
        copy_ns = (
            2.0
            * live_lines
            * self.hbm.effective_t_burst_ns
            / self.hbm.num_channels
        )
        return copy_ns + chunks * CMT_WRITE_NS + AMU_REPROGRAM_NS

    # -- the verdict --------------------------------------------------------
    def evaluate(
        self,
        window_pa: np.ndarray,
        candidate_perm,
        current_perm,
        *,
        windows_since_remap: int,
        live_lines: int,
        chunks: int,
        chunk_remap_counts: dict[int, int] | None = None,
        degenerate: bool = False,
    ) -> RemapDecision:
        """Approve or decline a remap for one phase-change event."""
        candidate = np.asarray(candidate_perm, dtype=np.int64)
        current = np.asarray(current_perm, dtype=np.int64)
        if degenerate:
            return RemapDecision(False, "degenerate-profile")
        if np.array_equal(candidate, current):
            return RemapDecision(False, "same-mapping")
        if windows_since_remap < self.cooldown_windows:
            return RemapDecision(
                False,
                "cooldown",
                details={
                    "windows_since_remap": windows_since_remap,
                    "cooldown_windows": self.cooldown_windows,
                },
            )
        over_budget = [
            chunk_no
            for chunk_no, count in (chunk_remap_counts or {}).items()
            if count >= self.max_remaps_per_chunk
        ]
        if over_budget:
            return RemapDecision(
                False, "chunk-budget", details={"chunks": sorted(over_budget)}
            )
        current_ns = self.probe_window_ns(window_pa, current)
        candidate_ns = self.probe_window_ns(window_pa, candidate)
        gain = current_ns - candidate_ns
        projected = gain * self.horizon_windows
        cost = self.migration_estimate_ns(live_lines, chunks)
        details = {
            "current_window_ns": current_ns,
            "candidate_window_ns": candidate_ns,
            "horizon_windows": self.horizon_windows,
            "live_lines": live_lines,
            "chunks": chunks,
        }
        if gain <= 0 or projected <= self.benefit_margin * cost:
            return RemapDecision(
                False,
                "insufficient-gain",
                gain_ns_per_window=gain,
                projected_gain_ns=projected,
                migration_cost_ns=cost,
                details=details,
            )
        return RemapDecision(
            True,
            "approved",
            gain_ns_per_window=gain,
            projected_gain_ns=projected,
            migration_cost_ns=cost,
            details=details,
        )
