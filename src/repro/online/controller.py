"""The adaptive remapping controller: detect, decide, migrate — live.

Closes the online loop over the existing software-defined machinery:

1. **Detect** — every external-trace window feeds the decayed
   :class:`~repro.online.stream.StreamingBFRV`; the
   :class:`~repro.online.phase.PhaseDetector` compares the estimate
   against the BFRV that justified the current mapping.
2. **Decide** — on a phase event, a candidate window permutation is
   selected from the fresh estimate
   (:func:`~repro.core.bitshuffle.select_window_permutation`) and the
   :class:`~repro.online.policy.RemapPolicy` prices the switch.
3. **Migrate** — approved remaps register the candidate through the
   ordinary ``add_addr_map`` syscall path (the CMT interns duplicates,
   so returning to an earlier phase reuses its hardware index), then
   move every live chunk of the adapted group with
   :class:`~repro.mem.migration.ChunkMigrator` and reprogram the AMU
   crossbar.  A failure mid-group rolls the already-moved chunks back —
   the group is never left split across mappings.

Every transition is journalled (phase events, declines with the
policy's reason, remaps with their migration reports, failures with the
triggering fault) and all traffic is accounted in a
:class:`~repro.hbm.stats.RemapTraffic`.
"""

from __future__ import annotations

import numpy as np

from repro.core.bitshuffle import select_window_permutation
from repro.errors import ProfilingError, ReproError
from repro.hbm.config import HBMConfig, hbm2_config
from repro.hbm.stats import RemapTraffic
from repro.mem.kernel import Kernel
from repro.mem.migration import ChunkMigrator
from repro.online.phase import PhaseDetector
from repro.online.policy import (
    AMU_REPROGRAM_NS,
    CMT_WRITE_NS,
    RemapDecision,
    RemapPolicy,
)
from repro.online.stream import StreamingBFRV

__all__ = ["AdaptiveController"]


class AdaptiveController:
    """Drives online mapping adaptation for one chunk group.

    Parameters
    ----------
    kernel:
        An SDAM-enabled kernel whose chunks the controller may remap.
    mapping_id:
        The software mapping id whose chunk group is adapted.  It moves
        with the group: after a remap the controller follows the group
        to its new id.
    hbm:
        Device model used for migration costs and policy probes.
    decay, threshold, persistence:
        Estimator and detector tuning (see
        :class:`~repro.online.stream.StreamingBFRV` and
        :class:`~repro.online.phase.PhaseDetector`).
    policy:
        A :class:`~repro.online.policy.RemapPolicy`; built with
        defaults when omitted.
    backend:
        Memory fidelity tier for the default policy's benefit probes
        (ignored when an explicit ``policy`` is passed).
    on_copy:
        Optional ``(pa_lines, read_has, write_has)`` hook forwarded to
        every chunk migration — the RAS layer moves modeled device
        contents through it, and tests inject mid-copy faults.
    """

    def __init__(
        self,
        kernel: Kernel,
        mapping_id: int = 0,
        hbm: HBMConfig | None = None,
        decay: float = 0.3,
        threshold: float = 0.08,
        persistence: int = 2,
        metric: str = "l1",
        policy: RemapPolicy | None = None,
        on_copy=None,
        backend: str = "fast",
    ):
        if kernel.sdam is None:
            raise ProfilingError("adaptive remapping requires an SDAM kernel")
        self.kernel = kernel
        self.geometry = kernel.geometry
        self.hbm = hbm or hbm2_config()
        self.layout = self.hbm.layout()
        self.mapping_id = mapping_id
        low, high = self.geometry.window_slice()
        self.estimator = StreamingBFRV(
            num_bits=high - low, bit_offset=low, decay=decay
        )
        self.detector = PhaseDetector(
            threshold=threshold, persistence=persistence, metric=metric
        )
        self.policy = policy or RemapPolicy(
            self.hbm, self.geometry, backend=backend
        )
        self.migrator = ChunkMigrator(kernel, self.hbm)
        self.traffic = RemapTraffic()
        self.on_copy = on_copy
        self.journal: list[dict] = []
        self.windows_seen = 0
        self._windows_since_remap = 10**9  # no cooldown before first remap
        self._chunk_remap_counts: dict[int, int] = {}

    # -- introspection ------------------------------------------------------
    @property
    def current_perm(self) -> np.ndarray:
        """Window permutation currently programmed for the group."""
        index = self.kernel.hardware_index_of(self.mapping_id)
        return self.kernel.sdam.cmt.config_of(index)

    def _group_chunks(self) -> list[int]:
        group = self.kernel.physical.group(self.mapping_id)
        return sorted(chunk.number for chunk in group.chunks)

    def _live_lines(self) -> int:
        geometry = self.geometry
        lines_per_page = geometry.page_bytes // geometry.line_bytes
        total = 0
        for chunk_no in self._group_chunks():
            chunk = self.kernel.physical.chunk(chunk_no)
            total += len(chunk.live_page_offsets()) * lines_per_page
        return total

    def _journal(self, kind: str, **fields) -> dict:
        entry = {"window": self.windows_seen, "kind": kind, **fields}
        self.journal.append(entry)
        return entry

    # -- the loop body ------------------------------------------------------
    def observe(self, pa_window: np.ndarray) -> dict | None:
        """Fold one external-trace window in; remap when justified.

        Returns the journal entry for whatever the window triggered
        (``decline`` / ``remap`` / ``remap-failed``), or None when the
        phase was stable.
        """
        self.windows_seen += 1
        self._windows_since_remap += 1
        rates = self.estimator.update(pa_window)
        event = self.detector.observe(rates)
        if event is None:
            return None
        candidate = select_window_permutation(
            rates, self.layout, self.geometry
        )
        decision = self.policy.evaluate(
            pa_window,
            candidate,
            self.current_perm,
            windows_since_remap=self._windows_since_remap,
            live_lines=self._live_lines(),
            chunks=len(self._group_chunks()),
            chunk_remap_counts=self._chunk_remap_counts,
            degenerate=self.estimator.last_degenerate is not None,
        )
        if not decision.remap:
            # Accept the new phase as the current regime (unless we only
            # declined because of cooldown — then keep watching): without
            # re-anchoring, a long-lived phase we chose not to serve
            # would re-fire the detector forever.
            if decision.reason != "cooldown":
                self.detector.set_reference(rates)
            return self._journal(
                "decline",
                distance=event.distance,
                decision=decision.to_dict(),
            )
        return self._execute_remap(event, rates, candidate, decision)

    # -- remap execution ----------------------------------------------------
    def _execute_remap(
        self, event, rates: np.ndarray, candidate, decision: RemapDecision
    ) -> dict:
        sdam = self.kernel.sdam
        old_id = self.mapping_id
        new_id = self.kernel.add_addr_map(candidate)
        chunks = self._group_chunks()
        migrated: list = []
        try:
            for chunk_no in chunks:
                report = self.migrator.migrate_chunk(
                    chunk_no, new_id, on_copy=self.on_copy
                )
                migrated.append(report)
        except (ReproError, OSError) as fault:
            # migrate_chunk already rolled the failing chunk back; undo
            # the chunks that had moved so the group stays whole.
            # Programming errors propagate — a half-migrated group is
            # the honest state when the controller itself is buggy.
            for report in reversed(migrated):
                undo = self.migrator.migrate_chunk(report.chunk_no, old_id)
                self.traffic.rollback_migrations += 1
                self.traffic.record_migration(
                    undo, line_bytes=self.geometry.line_bytes
                )
            self.traffic.failed_remaps += 1
            return self._journal(
                "remap-failed",
                old_mapping=old_id,
                new_mapping=new_id,
                fault=str(fault),
                chunks_attempted=len(chunks),
                chunks_rolled_back=len(migrated),
                decision=decision.to_dict(),
            )
        # Commit: reprogram the crossbar configuration lanes and account.
        sdam.reprogram_crossbar()
        self.mapping_id = new_id
        self.traffic.remaps += 1
        self.traffic.cmt_writes += len(chunks)
        self.traffic.amu_reprograms += 1
        self.traffic.reprogram_ns += (
            len(chunks) * CMT_WRITE_NS + AMU_REPROGRAM_NS
        )
        for report in migrated:
            self.traffic.record_migration(
                report, line_bytes=self.geometry.line_bytes
            )
            self._chunk_remap_counts[report.chunk_no] = (
                self._chunk_remap_counts.get(report.chunk_no, 0) + 1
            )
        self._windows_since_remap = 0
        self.detector.set_reference(rates)
        return self._journal(
            "remap",
            old_mapping=old_id,
            new_mapping=new_id,
            distance=event.distance,
            chunks=[r.chunk_no for r in migrated],
            lines_copied=sum(r.lines_copied for r in migrated),
            migration_ns=sum(r.cost_ns for r in migrated),
            decision=decision.to_dict(),
        )

    # -- reporting ----------------------------------------------------------
    @property
    def remap_count(self) -> int:
        """Committed remaps so far."""
        return self.traffic.remaps

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.windows_seen} windows, {self.traffic.remaps} remaps "
            f"({self.traffic.failed_remaps} failed), "
            f"overhead {self.traffic.overhead_ns / 1e3:.1f} us"
        )

    def to_dict(self) -> dict:
        """JSON-friendly state snapshot (journal included)."""
        return {
            "windows_seen": self.windows_seen,
            "mapping_id": self.mapping_id,
            "remaps": self.traffic.remaps,
            "traffic": self.traffic.to_dict(),
            "journal": [dict(entry) for entry in self.journal],
        }
