"""Streaming-estimator microbenchmark (``python -m repro bench --online``).

The online controller needs per-window bit-flip statistics.  The naive
way is to re-run the batch estimator over the whole trace seen so far
at every window boundary — O(n) work per window, O(n^2) per run.  The
:class:`~repro.online.stream.StreamingBFRV` folds each window into
decayed integer accumulators instead — O(window) per window — and with
``decay=1.0`` is bit-exact with the batch estimator (asserted here
before anything is timed, same contract as the translation bench).

The report (``BENCH_online.json``) records, per trace shape, the
windowed batch-recompute time against the streaming fold, so future
PRs inherit a perf trajectory for the online path.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.hbm.config import HBMConfig, hbm2_config
from repro.online.stream import StreamingBFRV
from repro.profiling.bfrv import bit_flip_rate_vector

__all__ = ["run_benchmark", "write_report", "DEFAULT_REPORT_PATH"]

DEFAULT_REPORT_PATH = "BENCH_online.json"
SCENARIOS = ("stream", "random", "phase-mix")

WINDOW_BITS = 15
BIT_OFFSET = 6


def _trace(scenario: str, accesses: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    line = 64
    span = 1 << 26  # 64 MiB of line-aligned addresses
    if scenario == "stream":
        return (
            np.arange(accesses, dtype=np.uint64) * np.uint64(line)
        ) % np.uint64(span)
    if scenario == "random":
        return rng.integers(
            0, span // line, accesses, dtype=np.uint64
        ) * np.uint64(line)
    if scenario == "phase-mix":
        half = accesses // 2
        stride = (
            np.arange(half, dtype=np.uint64) * np.uint64(line)
        ) % np.uint64(span)
        tiled = rng.integers(
            0, span // (32 * line), accesses - half, dtype=np.uint64
        ) * np.uint64(32 * line)
        return np.concatenate([stride, tiled])
    raise ValueError(f"unknown bench scenario {scenario!r}")


def _windows(trace: np.ndarray, window: int):
    for start in range(0, trace.size, window):
        yield start, trace[start : start + window]


def _batch_recompute(trace: np.ndarray, window: int) -> np.ndarray:
    """The naive online loop: full batch recompute at every boundary."""
    rates = np.zeros(WINDOW_BITS)
    for start, chunk in _windows(trace, window):
        rates = bit_flip_rate_vector(
            trace[: start + chunk.size], WINDOW_BITS, BIT_OFFSET
        )
    return rates


def _streaming(trace: np.ndarray, window: int, decay: float) -> np.ndarray:
    estimator = StreamingBFRV(WINDOW_BITS, BIT_OFFSET, decay=decay)
    rates = estimator.rates
    for _start, chunk in _windows(trace, window):
        rates = estimator.update(chunk)
    return rates


def _time_ns(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter_ns()
        fn()
        best = min(best, time.perf_counter_ns() - start)
    return float(best)


def run_benchmark(
    accesses: int = 262_144,
    seed: int = 0,
    repeats: int = 3,
    window: int = 2048,
    decay: float = 0.3,
    config: HBMConfig | None = None,
    scenarios: tuple[str, ...] = SCENARIOS,
) -> dict:
    """Time windowed batch recompute vs the streaming fold.

    The headline number is ``summary_speedup_geomean.streaming`` — how
    much cheaper the streaming estimator makes per-window statistics,
    geomean over trace shapes.  ``config`` is accepted for CLI symmetry
    with the translation bench (the estimator is device-independent).
    """
    del config  # device-independent; kept for a uniform bench CLI
    cells: dict[str, dict] = {}
    for scenario in scenarios:
        trace = _trace(scenario, accesses, seed)

        # Bit-exactness first; only a correct estimator gets timed.
        batch = bit_flip_rate_vector(trace, WINDOW_BITS, BIT_OFFSET)
        streamed = _streaming(trace, window, decay=1.0)
        if not np.array_equal(batch, streamed):
            raise AssertionError(
                f"{scenario}: streaming decay=1.0 diverges from batch"
            )

        baseline_ns = _time_ns(
            lambda: _batch_recompute(trace, window), repeats
        )
        streaming_ns = _time_ns(
            lambda: _streaming(trace, window, decay), repeats
        )
        cells[scenario] = {
            "baseline_ns": baseline_ns,
            "streaming_ns": streaming_ns,
            "speedup": baseline_ns / streaming_ns
            if streaming_ns
            else float("inf"),
            "baseline_maccesses_per_s": accesses * 1e3 / baseline_ns,
            "streaming_maccesses_per_s": accesses * 1e3 / streaming_ns,
        }
    summary = {
        "streaming": float(
            np.exp(
                np.mean([np.log(cells[s]["speedup"]) for s in scenarios])
            )
        )
    }
    return {
        "schema": 1,
        "benchmark": "online-streaming-bfrv",
        "accesses": int(accesses),
        "seed": int(seed),
        "repeats": int(repeats),
        "window": int(window),
        "decay": float(decay),
        "unix_time": time.time(),
        "cells": cells,
        "summary_speedup_geomean": summary,
    }


def write_report(report: dict, path: "str | Path") -> Path:
    """Write the benchmark report as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path
