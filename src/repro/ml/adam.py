"""Adam optimiser (Kingma & Ba) over named numpy parameter dicts."""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError

__all__ = ["Adam"]


class Adam:
    """Adam with bias correction; lr 0.001 matches Table 2."""

    def __init__(
        self,
        params: dict[str, np.ndarray],
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        clip: float = 5.0,
    ):
        if lr <= 0:
            raise TrainingError("learning rate must be positive")
        self.params = params
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.clip = clip
        self._m = {name: np.zeros_like(p) for name, p in params.items()}
        self._v = {name: np.zeros_like(p) for name, p in params.items()}
        self.steps = 0

    def step(self, grads: dict[str, np.ndarray]) -> None:
        """Apply one update from a gradient dict (missing keys skipped)."""
        self.steps += 1
        t = self.steps
        for name, grad in grads.items():
            if name not in self.params:
                raise TrainingError(f"gradient for unknown parameter {name!r}")
            if self.clip > 0:
                norm = float(np.sqrt((grad * grad).sum()))
                if norm > self.clip:
                    grad = grad * (self.clip / norm)
            m = self._m[name]
            v = self._v[name]
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad * grad
            m_hat = m / (1 - self.beta1**t)
            v_hat = v / (1 - self.beta2**t)
            self.params[name] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
