"""Embedding layers for the (delta, VID) input pairs (Fig. 9).

The address delta is a categorical value (the XOR of two consecutive
addresses); a vocabulary keeps the most frequent deltas and buckets the
rest into an out-of-vocabulary id, as learned-prefetching work does.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.errors import TrainingError

__all__ = ["Embedding", "DeltaVocabulary"]


class Embedding:
    """A lookup table with sparse gradient accumulation."""

    def __init__(
        self,
        vocab_size: int,
        dim: int,
        params: dict[str, np.ndarray],
        prefix: str,
        rng: np.random.Generator,
    ):
        if vocab_size < 1 or dim < 1:
            raise TrainingError("vocab size and dim must be positive")
        self.vocab_size = vocab_size
        self.dim = dim
        self.prefix = prefix
        params[f"{prefix}.table"] = rng.normal(0, 0.1, (vocab_size, dim))
        self.params = params

    def forward(self, ids: np.ndarray) -> np.ndarray:
        """Look up / compute the layer's forward pass."""
        ids = np.asarray(ids)
        if ids.size and (ids.min() < 0 or ids.max() >= self.vocab_size):
            raise TrainingError("embedding id out of range")
        return self.params[f"{self.prefix}.table"][ids]

    def backward(
        self, ids: np.ndarray, d_vectors: np.ndarray, grads: dict[str, np.ndarray]
    ) -> None:
        """Accumulate gradients for the layer's backward pass."""
        key = f"{self.prefix}.table"
        grads.setdefault(key, np.zeros_like(self.params[key]))
        flat_ids = np.asarray(ids).reshape(-1)
        flat_grad = d_vectors.reshape(-1, self.dim)
        np.add.at(grads[key], flat_ids, flat_grad)


class DeltaVocabulary:
    """Top-K address deltas -> dense ids; everything else -> OOV (id 0)."""

    OOV = 0

    def __init__(self, max_size: int = 256):
        if max_size < 2:
            raise TrainingError("vocabulary needs room for OOV plus one delta")
        self.max_size = max_size
        self._ids: dict[int, int] = {}

    def fit(self, deltas: np.ndarray) -> "DeltaVocabulary":
        """Fit to the given data; returns self or the result."""
        counts = Counter(np.asarray(deltas, dtype=np.uint64).tolist())
        most_common = counts.most_common(self.max_size - 1)
        self._ids = {
            delta: index + 1 for index, (delta, _count) in enumerate(most_common)
        }
        return self

    @property
    def size(self) -> int:
        """Heap length in bytes."""
        return len(self._ids) + 1

    def encode(self, deltas: np.ndarray) -> np.ndarray:
        """Map raw values to vocabulary ids (OOV for unknown)."""
        ids = np.fromiter(
            (self._ids.get(int(d), self.OOV) for d in np.asarray(deltas)),
            dtype=np.int64,
            count=len(deltas),
        )
        return ids

    def coverage(self, deltas: np.ndarray) -> float:
        """Fraction of deltas that map to a real (non-OOV) id."""
        if len(deltas) == 0:
            return 0.0
        ids = self.encode(deltas)
        return float((ids != self.OOV).mean())
