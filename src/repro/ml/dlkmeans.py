"""DL-assisted K-Means: the embedding LSTM autoencoder of Section 6.2.

The model (Fig. 9): each access is a (delta, VID) pair; delta and VID
are separately embedded, concatenated, and fed to an LSTM encoder whose
final hidden state is the sequence *embedding*.  A decoder LSTM
reconstructs the delta bit-vectors from the embedding; training first
minimises the reconstruction loss (Eq. 3), then continues jointly with
``L_total = L_reconstruct + lambda * L_cluster`` pulling embeddings
toward their K-Means centroids — the clustering-friendly-representation
trick the paper adopts from the deep-clustering literature.

Defaults are laptop-sized; ``paper_hyperparameters()`` returns the
Table 2 values for a full-scale run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import TrainingError
from repro.ml.adam import Adam
from repro.ml.embedding import DeltaVocabulary, Embedding
from repro.ml.kmeans import KMeans
from repro.ml.lstm import LSTMLayer, sigmoid

__all__ = [
    "AutoencoderConfig",
    "EmbeddingAutoencoder",
    "DLAssistedKMeans",
    "DLClusterResult",
    "paper_hyperparameters",
]


@dataclass(frozen=True)
class AutoencoderConfig:
    """Model + training sizes (Table 2, scaled down by default)."""

    sequence_length: int = 32  # Table 2
    delta_embed_dim: int = 16
    vid_embed_dim: int = 4
    hidden_dim: int = 32
    delta_vocab: int = 256
    pretrain_steps: int = 120
    joint_steps: int = 60
    batch_size: int = 32
    learning_rate: float = 0.001  # Table 2
    cluster_weight: float = 0.01  # Table 2's lambda
    centroid_refresh: int = 20
    seed: int = 0


def paper_hyperparameters() -> AutoencoderConfig:
    """The Table 2 configuration (256-dim, 500k steps)."""
    return AutoencoderConfig(
        sequence_length=32,
        delta_embed_dim=128,
        vid_embed_dim=128,
        hidden_dim=256,
        pretrain_steps=400_000,
        joint_steps=100_000,
        learning_rate=0.001,
        cluster_weight=0.01,
    )


class EmbeddingAutoencoder:
    """The Fig. 9 network: embeddings -> encoder LSTM -> decoder LSTM."""

    def __init__(
        self,
        delta_vocab_size: int,
        num_variables: int,
        target_bits: int,
        config: AutoencoderConfig,
    ):
        if target_bits < 1:
            raise TrainingError("need at least one target bit")
        self.config = config
        self.target_bits = target_bits
        rng = np.random.default_rng(config.seed)
        self.params: dict[str, np.ndarray] = {}
        self.delta_embedding = Embedding(
            delta_vocab_size, config.delta_embed_dim, self.params, "delta", rng
        )
        self.vid_embedding = Embedding(
            max(1, num_variables), config.vid_embed_dim, self.params, "vid", rng
        )
        input_dim = config.delta_embed_dim + config.vid_embed_dim
        self.encoder = LSTMLayer(
            input_dim, config.hidden_dim, self.params, "enc", rng
        )
        self.decoder = LSTMLayer(
            config.hidden_dim, config.hidden_dim, self.params, "dec", rng
        )
        scale = 1.0 / np.sqrt(config.hidden_dim)
        self.params["out.W"] = rng.normal(
            0, scale, (config.hidden_dim, target_bits)
        )
        self.params["out.b"] = np.zeros(target_bits)

    def forward(self, delta_ids: np.ndarray, vid_ids: np.ndarray):
        """Compute embeddings and reconstructions.

        Returns ``(z, reconstruction, cache)`` with ``z`` of shape
        (batch, hidden) and ``reconstruction`` (batch, time, bits).
        """
        delta_vectors = self.delta_embedding.forward(delta_ids)
        vid_vectors = self.vid_embedding.forward(vid_ids)
        x = np.concatenate([delta_vectors, vid_vectors], axis=2)
        _enc_out, z, enc_caches = self.encoder.forward(x)
        batch, steps = delta_ids.shape
        decoder_input = np.repeat(z[:, None, :], steps, axis=1)
        dec_out, _h, dec_caches = self.decoder.forward(decoder_input)
        logits = dec_out @ self.params["out.W"] + self.params["out.b"]
        reconstruction = sigmoid(logits)
        cache = (delta_ids, vid_ids, enc_caches, dec_caches, dec_out, reconstruction)
        return z, reconstruction, cache

    def embed(self, delta_ids: np.ndarray, vid_ids: np.ndarray) -> np.ndarray:
        """Embeddings only (no decoder pass needed for inference)."""
        delta_vectors = self.delta_embedding.forward(delta_ids)
        vid_vectors = self.vid_embedding.forward(vid_ids)
        x = np.concatenate([delta_vectors, vid_vectors], axis=2)
        _out, z, _caches = self.encoder.forward(x)
        return z

    @staticmethod
    def reconstruction_loss(
        reconstruction: np.ndarray, targets: np.ndarray
    ) -> float:
        """Mean L1 over delta bits (Eq. 3, normalised)."""
        return float(np.abs(reconstruction - targets).mean())

    def backward(
        self,
        cache,
        targets: np.ndarray,
        dz_extra: np.ndarray | None = None,
    ) -> dict[str, np.ndarray]:
        """Gradients of L1 reconstruction loss (+ optional dL/dz term)."""
        delta_ids, vid_ids, enc_caches, dec_caches, dec_out, recon = cache
        grads: dict[str, np.ndarray] = {}
        n = recon.size
        d_recon = np.sign(recon - targets) / n
        d_logits = d_recon * recon * (1 - recon)
        flat_dec = dec_out.reshape(-1, dec_out.shape[2])
        flat_dlogits = d_logits.reshape(-1, d_logits.shape[2])
        grads["out.W"] = flat_dec.T @ flat_dlogits
        grads["out.b"] = flat_dlogits.sum(axis=0)
        d_dec_out = d_logits @ self.params["out.W"].T
        d_dec_in, _dh0 = self.decoder.backward(d_dec_out, None, dec_caches, grads)
        dz = d_dec_in.sum(axis=1)
        if dz_extra is not None:
            dz = dz + dz_extra
        dx, _dh0 = self.encoder.backward(None, dz, enc_caches, grads)
        split = self.config.delta_embed_dim
        self.delta_embedding.backward(delta_ids, dx[:, :, :split], grads)
        self.vid_embedding.backward(vid_ids, dx[:, :, split:], grads)
        return grads


@dataclass
class DLClusterResult:
    """Outcome of the DL-assisted clustering pipeline."""

    labels: np.ndarray  # cluster id per input variable (profile order)
    embeddings: np.ndarray  # (num_variables, hidden)
    centroids: np.ndarray
    loss_history: list[float] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    vocab_coverage: float = 0.0


class DLAssistedKMeans:
    """End-to-end DL-assisted clustering over per-variable delta traces."""

    def __init__(self, k: int, config: AutoencoderConfig | None = None):
        if k < 1:
            raise TrainingError("k must be >= 1")
        self.k = k
        self.config = config or AutoencoderConfig()

    # -- dataset construction ------------------------------------------------
    def _build_dataset(
        self,
        delta_traces: list[np.ndarray],
        window: tuple[int, int],
    ):
        """Chop per-variable delta traces into fixed-length sequences."""
        length = self.config.sequence_length
        low, high = window
        bits = high - low
        all_deltas = (
            np.concatenate([d for d in delta_traces if d.size])
            if any(d.size for d in delta_traces)
            else np.zeros(0, dtype=np.uint64)
        )
        vocab = DeltaVocabulary(self.config.delta_vocab).fit(all_deltas)
        sequences: list[tuple[int, np.ndarray, np.ndarray]] = []
        for variable_index, deltas in enumerate(delta_traces):
            if deltas.size == 0:
                continue
            if deltas.size < length:  # pad short traces by tiling
                reps = -(-length // deltas.size)
                deltas = np.tile(deltas, reps)
            usable = (deltas.size // length) * length
            ids = vocab.encode(deltas[:usable]).reshape(-1, length)
            shifts = np.arange(low, high, dtype=np.uint64)
            bit_targets = (
                (deltas[:usable, None] >> shifts) & np.uint64(1)
            ).astype(np.float64)
            bit_targets = bit_targets.reshape(-1, length, bits)
            for row in range(ids.shape[0]):
                sequences.append((variable_index, ids[row], bit_targets[row]))
        if not sequences:
            raise TrainingError("no delta sequences to train on")
        return vocab, sequences

    @staticmethod
    def _batch(sequences, indices):
        variable_index = np.array([sequences[i][0] for i in indices])
        delta_ids = np.stack([sequences[i][1] for i in indices])
        targets = np.stack([sequences[i][2] for i in indices])
        vid_ids = np.repeat(
            variable_index[:, None], delta_ids.shape[1], axis=1
        )
        return variable_index, delta_ids, vid_ids, targets

    def _variable_embeddings(
        self, model: EmbeddingAutoencoder, sequences, num_variables: int
    ) -> np.ndarray:
        sums = np.zeros((num_variables, self.config.hidden_dim))
        counts = np.zeros(num_variables)
        batch = self.config.batch_size
        for start in range(0, len(sequences), batch):
            indices = range(start, min(start + batch, len(sequences)))
            variable_index, delta_ids, vid_ids, _targets = self._batch(
                sequences, list(indices)
            )
            z = model.embed(delta_ids, vid_ids)
            np.add.at(sums, variable_index, z)
            np.add.at(counts, variable_index, 1)
        counts[counts == 0] = 1
        return sums / counts[:, None]

    # -- training -------------------------------------------------------------
    def fit(
        self,
        delta_traces: list[np.ndarray],
        window: tuple[int, int] = (6, 21),
    ) -> DLClusterResult:
        """Cluster variables given their delta traces.

        ``delta_traces[i]`` is the XOR-delta trace of variable ``i``;
        the returned labels align with that list.
        """
        start_time = time.perf_counter()
        num_variables = len(delta_traces)
        if num_variables == 0:
            raise TrainingError("no variables to cluster")
        config = self.config
        vocab, sequences = self._build_dataset(delta_traces, window)
        model = EmbeddingAutoencoder(
            delta_vocab_size=vocab.size,
            num_variables=num_variables,
            target_bits=window[1] - window[0],
            config=config,
        )
        optimizer = Adam(model.params, lr=config.learning_rate)
        rng = np.random.default_rng(config.seed)
        history: list[float] = []

        def training_step(dz_fn=None) -> float:
            """One minibatch update; returns the loss."""
            indices = rng.integers(0, len(sequences), config.batch_size)
            variable_index, delta_ids, vid_ids, targets = self._batch(
                sequences, indices.tolist()
            )
            z, reconstruction, cache = model.forward(delta_ids, vid_ids)
            loss = model.reconstruction_loss(reconstruction, targets)
            dz_extra = None
            if dz_fn is not None:
                dz_extra, cluster_loss = dz_fn(z)
                loss += cluster_loss
            grads = model.backward(cache, targets, dz_extra=dz_extra)
            optimizer.step(grads)
            return loss

        # Phase 1: pure reconstruction pre-training (Eq. 3).
        for _step in range(config.pretrain_steps):
            history.append(training_step())

        # Phase 2: joint reconstruction + clustering loss.
        effective_k = min(self.k, num_variables)
        embeddings = self._variable_embeddings(model, sequences, num_variables)
        centroids = KMeans(effective_k, seed=config.seed).fit(embeddings).centroids

        def cluster_gradient(z: np.ndarray):
            """dL/dz and loss of the clustering term."""
            assignment = KMeans.assign(z, centroids)
            residual = z - centroids[assignment]
            loss = config.cluster_weight * float((residual**2).mean())
            dz = 2 * config.cluster_weight * residual / z.size
            return dz, loss

        for step in range(config.joint_steps):
            history.append(training_step(cluster_gradient))
            if (step + 1) % config.centroid_refresh == 0:
                embeddings = self._variable_embeddings(
                    model, sequences, num_variables
                )
                centroids = (
                    KMeans(effective_k, seed=config.seed).fit(embeddings).centroids
                )

        embeddings = self._variable_embeddings(model, sequences, num_variables)
        final = KMeans(effective_k, seed=config.seed).fit(embeddings)
        all_deltas = (
            np.concatenate([d for d in delta_traces if d.size])
            if any(d.size for d in delta_traces)
            else np.zeros(0, dtype=np.uint64)
        )
        return DLClusterResult(
            labels=final.labels,
            embeddings=embeddings,
            centroids=final.centroids,
            loss_history=history,
            elapsed_seconds=time.perf_counter() - start_time,
            vocab_coverage=vocab.coverage(all_deltas),
        )
