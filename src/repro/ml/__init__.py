"""Machine-learning substrate: K-Means and the DL-assisted pipeline."""

from repro.ml.adam import Adam
from repro.ml.dlkmeans import (
    AutoencoderConfig,
    DLAssistedKMeans,
    DLClusterResult,
    EmbeddingAutoencoder,
    paper_hyperparameters,
)
from repro.ml.embedding import DeltaVocabulary, Embedding
from repro.ml.kmeans import KMeans, KMeansResult
from repro.ml.lstm import LSTMCell, LSTMLayer, sigmoid

__all__ = [
    "Adam",
    "AutoencoderConfig",
    "DLAssistedKMeans",
    "DLClusterResult",
    "DeltaVocabulary",
    "Embedding",
    "EmbeddingAutoencoder",
    "KMeans",
    "KMeansResult",
    "LSTMCell",
    "LSTMLayer",
    "paper_hyperparameters",
    "sigmoid",
]
