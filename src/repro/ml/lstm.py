"""LSTM cell and sequence layers, forward and backward, in numpy.

The building block of the Section 6.2 embedding autoencoder (Fig. 9).
Written from scratch with full BPTT; the gradients are verified against
numerical differentiation in ``tests/ml/test_lstm.py``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError

__all__ = ["LSTMCell", "LSTMLayer", "sigmoid"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically-stable logistic function."""
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


class LSTMCell:
    """One LSTM cell; parameters live in a shared named dict."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        params: dict[str, np.ndarray],
        prefix: str,
        rng: np.random.Generator,
    ):
        if input_dim < 1 or hidden_dim < 1:
            raise TrainingError("dimensions must be positive")
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.prefix = prefix
        scale_x = 1.0 / np.sqrt(input_dim)
        scale_h = 1.0 / np.sqrt(hidden_dim)
        params[f"{prefix}.Wx"] = rng.normal(0, scale_x, (input_dim, 4 * hidden_dim))
        params[f"{prefix}.Wh"] = rng.normal(0, scale_h, (hidden_dim, 4 * hidden_dim))
        bias = np.zeros(4 * hidden_dim)
        bias[hidden_dim : 2 * hidden_dim] = 1.0  # forget-gate bias trick
        params[f"{prefix}.b"] = bias
        self.params = params

    def forward(self, x: np.ndarray, h: np.ndarray, c: np.ndarray):
        """One step; returns ``(h_next, c_next, cache)``."""
        p = self.params
        gates = x @ p[f"{self.prefix}.Wx"] + h @ p[f"{self.prefix}.Wh"]
        gates += p[f"{self.prefix}.b"]
        hd = self.hidden_dim
        i = sigmoid(gates[:, :hd])
        f = sigmoid(gates[:, hd : 2 * hd])
        g = np.tanh(gates[:, 2 * hd : 3 * hd])
        o = sigmoid(gates[:, 3 * hd :])
        c_next = f * c + i * g
        tanh_c = np.tanh(c_next)
        h_next = o * tanh_c
        cache = (x, h, c, i, f, g, o, tanh_c)
        return h_next, c_next, cache

    def backward(
        self,
        dh_next: np.ndarray,
        dc_next: np.ndarray,
        cache,
        grads: dict[str, np.ndarray],
    ):
        """One step of BPTT; returns ``(dx, dh_prev, dc_prev)``.

        Parameter gradients accumulate into ``grads``.
        """
        x, h, c, i, f, g, o, tanh_c = cache
        p = self.params
        do = dh_next * tanh_c
        dc = dc_next + dh_next * o * (1 - tanh_c * tanh_c)
        di = dc * g
        df = dc * c
        dg = dc * i
        dc_prev = dc * f
        d_gates = np.concatenate(
            [
                di * i * (1 - i),
                df * f * (1 - f),
                dg * (1 - g * g),
                do * o * (1 - o),
            ],
            axis=1,
        )
        key_wx, key_wh, key_b = (
            f"{self.prefix}.Wx",
            f"{self.prefix}.Wh",
            f"{self.prefix}.b",
        )
        grads.setdefault(key_wx, np.zeros_like(p[key_wx]))
        grads.setdefault(key_wh, np.zeros_like(p[key_wh]))
        grads.setdefault(key_b, np.zeros_like(p[key_b]))
        grads[key_wx] += x.T @ d_gates
        grads[key_wh] += h.T @ d_gates
        grads[key_b] += d_gates.sum(axis=0)
        dx = d_gates @ p[key_wx].T
        dh_prev = d_gates @ p[key_wh].T
        return dx, dh_prev, dc_prev


class LSTMLayer:
    """Unrolled LSTM over a (batch, time, feature) tensor."""

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        params: dict[str, np.ndarray],
        prefix: str,
        rng: np.random.Generator,
    ):
        self.cell = LSTMCell(input_dim, hidden_dim, params, prefix, rng)
        self.hidden_dim = hidden_dim

    def forward(self, x: np.ndarray, h0: np.ndarray | None = None):
        """Run the sequence; returns ``(outputs, h_last, caches)``.

        ``outputs`` is (batch, time, hidden).
        """
        batch, steps, _features = x.shape
        h = np.zeros((batch, self.hidden_dim)) if h0 is None else h0
        c = np.zeros((batch, self.hidden_dim))
        outputs = np.empty((batch, steps, self.hidden_dim))
        caches = []
        for t in range(steps):
            h, c, cache = self.cell.forward(x[:, t, :], h, c)
            outputs[:, t, :] = h
            caches.append(cache)
        return outputs, h, caches

    def backward(
        self,
        d_outputs: np.ndarray | None,
        dh_last: np.ndarray | None,
        caches,
        grads: dict[str, np.ndarray],
    ):
        """BPTT; returns ``(dx, dh0)``.

        ``d_outputs`` is the per-step gradient (may be None), ``dh_last``
        an extra gradient on the final hidden state (may be None).
        """
        steps = len(caches)
        batch = caches[0][0].shape[0]
        input_dim = caches[0][0].shape[1]
        dx = np.zeros((batch, steps, input_dim))
        dh = np.zeros((batch, self.hidden_dim))
        dc = np.zeros((batch, self.hidden_dim))
        if dh_last is not None:
            dh += dh_last
        for t in range(steps - 1, -1, -1):
            if d_outputs is not None:
                dh += d_outputs[:, t, :]
            dx[:, t, :], dh, dc = self.cell.backward(dh, dc, caches[t], grads)
        return dx, dh
