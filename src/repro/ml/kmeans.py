"""Lloyd's K-Means with k-means++ seeding (Equation 2).

The fast mapping-selection path (Section 6.2): cluster per-variable
bit-flip-rate vectors, then derive one address mapping per cluster
centroid.  Implemented from scratch on numpy — no scikit-learn.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TrainingError

__all__ = ["KMeans", "KMeansResult"]


@dataclass(frozen=True)
class KMeansResult:
    """Fit outcome: assignments, centroids and the clustering loss."""

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    iterations: int

    @property
    def k(self) -> int:
        """Number of clusters."""
        return self.centroids.shape[0]


class KMeans:
    """Standard Lloyd iteration; deterministic given the seed."""

    def __init__(
        self,
        k: int,
        max_iter: int = 100,
        tol: float = 1e-6,
        seed: int = 0,
        n_init: int = 4,
    ):
        if k < 1:
            raise TrainingError("k must be >= 1")
        self.k = k
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.n_init = n_init

    # -- internals -------------------------------------------------------
    @staticmethod
    def _squared_distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        diff = points[:, None, :] - centroids[None, :, :]
        return np.einsum("nkd,nkd->nk", diff, diff)

    def _init_plusplus(self, points: np.ndarray, rng: np.random.Generator):
        n = points.shape[0]
        centroids = np.empty((self.k, points.shape[1]))
        centroids[0] = points[rng.integers(n)]
        closest = ((points - centroids[0]) ** 2).sum(axis=1)
        for index in range(1, self.k):
            total = closest.sum()
            if total <= 0:
                centroids[index] = points[rng.integers(n)]
            else:
                probabilities = closest / total
                choice = rng.choice(n, p=probabilities)
                centroids[index] = points[choice]
            distance = ((points - centroids[index]) ** 2).sum(axis=1)
            closest = np.minimum(closest, distance)
        return centroids

    def _run_once(self, points: np.ndarray, rng: np.random.Generator) -> KMeansResult:
        centroids = self._init_plusplus(points, rng)
        labels = np.zeros(points.shape[0], dtype=np.int64)
        inertia = np.inf
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            distances = self._squared_distances(points, centroids)
            labels = distances.argmin(axis=1)
            new_inertia = float(distances[np.arange(len(labels)), labels].sum())
            for cluster in range(self.k):
                members = points[labels == cluster]
                if members.size:
                    centroids[cluster] = members.mean(axis=0)
                else:
                    # Reseed an empty cluster at the farthest point.
                    farthest = distances.min(axis=1).argmax()
                    centroids[cluster] = points[farthest]
            if inertia - new_inertia < self.tol * max(inertia, 1.0):
                inertia = new_inertia
                break
            inertia = new_inertia
        return KMeansResult(
            labels=labels,
            centroids=centroids,
            inertia=inertia,
            iterations=iteration,
        )

    # -- public API -------------------------------------------------------
    def fit(self, points: np.ndarray) -> KMeansResult:
        """Cluster row vectors; returns the best of ``n_init`` restarts."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise TrainingError("need a non-empty 2-D array of points")
        if points.shape[0] < self.k:
            raise TrainingError(
                f"cannot form {self.k} clusters from {points.shape[0]} points"
            )
        rng = np.random.default_rng(self.seed)
        best: KMeansResult | None = None
        for _restart in range(self.n_init):
            result = self._run_once(points, rng)
            if best is None or result.inertia < best.inertia:
                best = result
        assert best is not None
        return best

    @staticmethod
    def assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        """Nearest-centroid labels for new points."""
        distances = KMeans._squared_distances(
            np.asarray(points, dtype=np.float64), centroids
        )
        return distances.argmin(axis=1)
