"""3D-memory simulator substrate: device configs and two fidelity tiers."""

from repro.hbm.config import HBMConfig, ddr4_config, hbm2_config
from repro.hbm.decode import DecodedTrace, decode_trace
from repro.hbm.device import HBMDevice
from repro.hbm.fastmodel import WindowModel, row_hit_mask
from repro.hbm.stats import RunStats

__all__ = [
    "DecodedTrace",
    "HBMConfig",
    "HBMDevice",
    "RunStats",
    "WindowModel",
    "ddr4_config",
    "decode_trace",
    "hbm2_config",
    "row_hit_mask",
]
