"""3D-memory simulator substrate: device configs, fused decode and
pluggable backends (two built-in fidelity tiers)."""

from repro.hbm.backend import (
    MemoryBackend,
    available_backends,
    create_backend,
    register_backend,
)
from repro.hbm.config import HBMConfig, ddr4_config, hbm2_config
from repro.hbm.decode import (
    DecodedTrace,
    DecodePlan,
    decode_trace,
    decode_translated,
)
from repro.hbm.device import HBMDevice
from repro.hbm.fastmodel import WindowModel, row_hit_mask
from repro.hbm.stats import DeviceHealth, RunStats

__all__ = [
    "DecodedTrace",
    "DecodePlan",
    "DeviceHealth",
    "HBMConfig",
    "HBMDevice",
    "MemoryBackend",
    "RunStats",
    "WindowModel",
    "available_backends",
    "create_backend",
    "ddr4_config",
    "decode_trace",
    "decode_translated",
    "hbm2_config",
    "register_backend",
    "row_hit_mask",
]
