"""3D-memory simulator substrate: device configs, fused decode and
pluggable backends (three built-in fidelity tiers)."""

from repro.hbm.backend import (
    MemoryBackend,
    available_backends,
    create_backend,
    register_backend,
)
from repro.hbm.config import HBMConfig, ddr4_config, hbm2_config
from repro.hbm.decode import (
    DecodedTrace,
    DecodePlan,
    concat_decoded,
    decode_trace,
    decode_translated,
    iter_decoded_chunks,
)
from repro.hbm.device import HBMDevice
from repro.hbm.fastmodel import WindowModel, row_hit_mask
from repro.hbm.guard import GuardedBackend, TierFactory
from repro.hbm.plancache import PlanCache, default_plan_cache
from repro.hbm.stats import BackendHealth, DeviceHealth, RunStats
from repro.hbm.vectormodel import VectorModel

__all__ = [
    "BackendHealth",
    "DecodedTrace",
    "DecodePlan",
    "DeviceHealth",
    "GuardedBackend",
    "HBMConfig",
    "HBMDevice",
    "MemoryBackend",
    "PlanCache",
    "RunStats",
    "TierFactory",
    "VectorModel",
    "WindowModel",
    "available_backends",
    "concat_decoded",
    "create_backend",
    "ddr4_config",
    "decode_trace",
    "decode_translated",
    "default_plan_cache",
    "hbm2_config",
    "iter_decoded_chunks",
    "register_backend",
    "row_hit_mask",
]
