"""Shared immutable plan cache: compiled bit-programs, paid for once.

Compiled :class:`~repro.hbm.decode.DecodePlan`\\s (an address-mapping
operator precomposed with the config's field projections) are pure
functions of ``(config, operator)`` — immutable once built, safe to
share between any number of concurrent tenants.  This module provides
the explicit cache that holds them: :class:`PlanCache` replaces the
old module-level ``functools.lru_cache`` in :mod:`repro.hbm.decode`
with an object that is

* **explicit** — the service layer creates one per deployment and
  hands it to every tenant through
  :class:`~repro.service.tenant.SharedArtifacts`, so compile cost is
  paid once per distinct mapping, not once per tenant;
* **thread-safe** — tenants run concurrently; lookups and builds are
  serialised under one lock (plans compile in microseconds, so
  building under the lock also guarantees a plan is never compiled
  twice);
* **stats-exposing** — hits/misses/evictions are first-class, so an
  isolation campaign can *prove* the sharing happened
  (``stats()["hits"] > 0`` across tenants) instead of assuming it.

Entries are evicted least-recently-used beyond ``maxsize``.  Cached
values must be treated as immutable by every consumer — the cache
hands out the same object to everyone.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable

from repro.errors import ConfigError

__all__ = ["PlanCache", "default_plan_cache"]

#: Default capacity: comfortably holds every live mapping of a full
#: 256-entry CMT for a couple of device configurations.
DEFAULT_MAXSIZE = 512


class PlanCache:
    """A thread-safe, stats-exposing LRU cache for immutable artifacts.

    Generic over the value type: keys are any hashable (for decode
    plans, the ``(config, operator)`` pair) and values are built by
    the ``build`` callable passed to :meth:`get`.  The cache never
    copies values — callers share one immutable object.
    """

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE):
        if maxsize < 1:
            raise ConfigError("PlanCache maxsize must be >= 1")
        self.maxsize = maxsize
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- the cache ----------------------------------------------------------
    def get(self, key: Hashable, build: Callable[[], object]) -> object:
        """Return the cached value for ``key``, building it on a miss.

        ``build`` runs under the cache lock: concurrent tenants asking
        for the same plan get one compile and one shared object, never
        a duplicate.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._hits += 1
                self._entries.move_to_end(key)
                return entry
            self._misses += 1
            value = build()
            self._entries[key] = value
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
            return value

    def clear(self) -> None:
        """Drop every entry (counters keep accumulating)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    # -- stats --------------------------------------------------------------
    @property
    def hits(self) -> int:
        """Lookups served from the cache."""
        return self._hits

    @property
    def misses(self) -> int:
        """Lookups that had to compile."""
        return self._misses

    @property
    def evictions(self) -> int:
        """Entries dropped to stay within ``maxsize``."""
        return self._evictions

    @property
    def hit_rate(self) -> float:
        """Hits over all lookups (0.0 before the first lookup)."""
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    def stats(self) -> dict:
        """A JSON-serialisable snapshot of the cache counters."""
        with self._lock:
            return {
                "size": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": self.hit_rate,
            }

    def __repr__(self) -> str:
        return (
            f"PlanCache(size={len(self)}, maxsize={self.maxsize}, "
            f"hits={self._hits}, misses={self._misses})"
        )


#: The process-wide default cache, used whenever a caller does not pass
#: an explicit one (the single-tenant :class:`~repro.system.machine.
#: Machine` path).  The service layer builds its own instance per
#: deployment so tenants of one service share plans with each other
#: without cross-talk between services.
_DEFAULT_CACHE = PlanCache()


def default_plan_cache() -> PlanCache:
    """The process-wide default :class:`PlanCache`."""
    return _DEFAULT_CACHE
