"""Vectorised + sharded HBM device model — the ``"vector"`` fidelity tier.

The event-driven :class:`~repro.hbm.device.HBMDevice` is the reference
model, but its per-request heapq/deque loop is pure Python: after the
GF(2) datapath refactor it dominates end-to-end ``evaluate`` time.
:class:`VectorModel` replaces the event loop with numpy scans over
sorted ``(channel, bank)`` request runs while keeping the same timing
vocabulary (per-bank row-buffer state, per-channel data-bus
serialisation, a global in-flight window), so it stays cycle-calibrated
to the event tier (``tests/hbm/test_calibration.py`` asserts declared
per-scenario tolerances on all six paper systems).

How one channel's substream is evaluated
----------------------------------------

Channels are independent (the paper's CLP argument), so each channel's
requests form a private substream, processed sequentially in fixed
blocks of ``block_accesses`` requests:

* **Row hits** — a stable sort by bank turns the block into per-bank
  runs.  A request hits when its row already occurred in the same
  FR-FCFS batch (``frfcfs_window`` consecutive same-bank requests — the
  scheduler's reorder credit) or when it continues the bank's open row,
  carried across blocks.  This is the event scheduler's behaviour
  without the queue dynamics.
* **Timing** — the event recurrence ``done_i = max(bank_ready + cost_i,
  bus_free + t_burst)`` is a longest path through a DAG with per-bank
  edges (weight = hit/miss cost) and per-channel bus edges (weight =
  ``t_burst``).  Pure bank chains close in one segmented ``cumsum``;
  pure bus chains close in one ``maximum.accumulate`` (subtract the
  ramp ``(rank+1)*t_burst``, cummax, add it back).  Alternating
  bank/bus critical paths are resolved by iterating the two closures to
  a fixed point — monotone, bounded by the exact longest path, and in
  practice converged within a handful of rounds.
* **Admission** — the global ``max_inflight`` window is modelled as a
  Little's-law floor (``total service cost / max_inflight``) applied
  after the per-channel reduction, not as per-request arrival times.
  The window rarely moves the *makespan* (a saturated channel dominates
  it either way); it mostly shapes idle-channel lag, which the
  calibration tolerances absorb.

Because every channel is evaluated independently and blocks are formed
per channel at a fixed size, the result is **bit-identical** however the
input is chunked (``tests/hbm/test_vectormodel.py`` holds a hypothesis
property over arbitrary chunkings) and however the channels are sharded
across worker processes (``workers=N``): shards own disjoint channel
ranges, return partial :class:`~repro.hbm.stats.RunStats`, and the
deterministic :meth:`RunStats.merge <repro.hbm.stats.RunStats.merge>`
reduction runs in fixed channel order.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Iterable, Iterator

import numpy as np

from repro.errors import (
    BackendExecutionError,
    ReproError,
    SimulationError,
    WorkerCrashError,
)
from repro.faults.sites import (
    BACKEND_SHARD_CRASH,
    BACKEND_SHARD_STALL,
    BACKEND_SHARD_STATS,
)
from repro.hbm.config import HBMConfig
from repro.hbm.decode import DecodedTrace, decode_trace
from repro.hbm.stats import BackendHealth, RunStats

__all__ = ["VectorModel"]

#: Wall-clock budget per shard dispatch round.  Real shards finish in
#: milliseconds-to-seconds; a worker that blows this budget is treated
#: as stalled, the pool is abandoned, and the shard re-runs in-process.
DEFAULT_SHARD_TIMEOUT = 120.0

#: Per-channel block size: large enough to amortise numpy call overhead,
#: small enough that streaming never holds more than a block per channel.
DEFAULT_BLOCK_ACCESSES = 16384

#: Cap on bank/bus closure rounds per block.  Each round resolves one
#: more bank/bus alternation on the critical path; real traces converge
#: in well under ten.
MAX_RELAX_ROUNDS = 64


class _ChannelLane:
    """Sequential block evaluator for one channel's request substream.

    Carries the cross-block device state: per-bank open rows and ready
    times, the channel data-bus horizon, and the served/hit/busy
    counters.  ``feed`` buffers requests and flushes complete blocks;
    ``finish`` flushes the tail.  Block boundaries depend only on this
    lane's own request count, which is what makes results invariant to
    input chunking and channel sharding.
    """

    def __init__(
        self,
        config: HBMConfig,
        frfcfs_window: int,
        block_accesses: int,
    ):
        banks = config.banks_per_channel
        self.t_burst = config.effective_t_burst_ns
        self.t_miss = config.effective_t_row_miss_ns
        self.window = max(1, frfcfs_window)
        self.block = block_accesses
        self.open_row = np.full(banks, -1, dtype=np.int64)
        self.bank_ready = np.zeros(banks, dtype=np.float64)
        self.bus_free = 0.0  # also the last completion (bus serialises)
        self.busy_ns = 0.0
        self.served = 0
        self.hits = 0
        self.misses = 0
        self._parts: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._buffered = 0

    # -- streaming ----------------------------------------------------------
    def feed(
        self, bank: np.ndarray, row: np.ndarray, forced: np.ndarray
    ) -> None:
        """Append one chunk's worth of this channel's requests."""
        if bank.size == 0:
            return
        self._parts.append((bank, row, forced))
        self._buffered += bank.size
        while self._buffered >= self.block:
            self._flush_block(*self._take(self.block))

    def finish(self) -> None:
        """Flush the final partial block."""
        if self._buffered:
            self._flush_block(*self._take(self._buffered))

    def _take(self, n: int):
        """Pop exactly ``n`` buffered requests (splitting a part)."""
        banks, rows, forceds = [], [], []
        need = n
        while need:
            bank, row, forced = self._parts[0]
            if bank.size <= need:
                self._parts.pop(0)
                banks.append(bank)
                rows.append(row)
                forceds.append(forced)
                need -= bank.size
            else:
                banks.append(bank[:need])
                rows.append(row[:need])
                forceds.append(forced[:need])
                self._parts[0] = (bank[need:], row[need:], forced[need:])
                need = 0
        self._buffered -= n
        if len(banks) == 1:
            return banks[0], rows[0], forceds[0]
        return (
            np.concatenate(banks),
            np.concatenate(rows),
            np.concatenate(forceds),
        )

    # -- one block ----------------------------------------------------------
    def _flush_block(
        self, bank: np.ndarray, row: np.ndarray, forced: np.ndarray
    ) -> None:
        m = bank.size
        order = np.argsort(bank, kind="stable")  # per-bank runs, trace order
        b_s = bank[order]
        r_s = row[order]
        new_seg = np.empty(m, dtype=bool)
        new_seg[0] = True
        new_seg[1:] = b_s[1:] != b_s[:-1]
        positions = np.arange(m)
        seg_start = np.maximum.accumulate(np.where(new_seg, positions, 0))
        rank = positions - seg_start
        batch = rank // self.window

        # Hit rule, clause 1: the row already occurred in this (bank,
        # batch) — FR-FCFS serves same-row requests in the lookahead
        # window back to back, so only the first of the group misses.
        lex = np.lexsort((positions, r_s, batch, b_s))
        dup = np.zeros(m, dtype=bool)
        dup[1:] = (
            (b_s[lex][1:] == b_s[lex][:-1])
            & (batch[lex][1:] == batch[lex][:-1])
            & (r_s[lex][1:] == r_s[lex][:-1])
        )
        hit_s = np.zeros(m, dtype=bool)
        hit_s[lex] = dup
        # Clause 2: the row continues the bank's open row (carried across
        # batches and blocks).  Inside a batch this is subsumed by
        # clause 1, so applying it everywhere is harmless.
        prev_row = np.empty(m, dtype=np.int64)
        prev_row[~new_seg] = r_s[np.nonzero(~new_seg)[0] - 1]
        prev_row[new_seg] = self.open_row[b_s[new_seg]]
        hit_s |= r_s == prev_row
        hit_s &= ~forced[order]  # ECC retries pay the full miss cost
        cost_s = np.where(hit_s, self.t_burst, self.t_miss)

        # Timing: longest path over bank edges (cost) and bus edges
        # (t_burst).  Work in trace order; precompute the in-bank
        # predecessor of every request.
        prev_sorted = np.full(m, -1, dtype=np.int64)
        prev_sorted[~new_seg] = order[np.nonzero(~new_seg)[0] - 1]
        prev_idx = np.empty(m, dtype=np.int64)
        prev_idx[order] = prev_sorted
        first = prev_idx < 0
        safe_prev = np.maximum(prev_idx, 0)
        cost = np.empty(m, dtype=np.float64)
        cost[order] = cost_s
        base = np.zeros(m, dtype=np.float64)
        base[first] = self.bank_ready[bank[first]]

        # Init with the pure bank-chain closure: carried ready time plus
        # the cumulative cost of this block's earlier requests per bank.
        cum = np.cumsum(cost_s)
        chain_s = cum - (cum[seg_start] - cost_s[seg_start])
        chain_s += self.bank_ready[b_s]
        done = np.empty(m, dtype=np.float64)
        done[order] = chain_s

        ramp = (positions + 1.0) * self.t_burst
        for _ in range(MAX_RELAX_ROUNDS):
            cand = np.where(first, base, done[safe_prev]) + cost
            shifted = cand - ramp
            shifted[0] = max(shifted[0], self.bus_free)
            relaxed = np.maximum.accumulate(shifted) + ramp
            if np.array_equal(relaxed, done):
                break
            done = relaxed

        # Channel busy time: union of [bank_start, done] intervals, the
        # same formula the event channel accumulates.
        start = np.where(first, base, done[safe_prev])
        prev_done = np.empty(m, dtype=np.float64)
        prev_done[0] = self.bus_free
        prev_done[1:] = done[:-1]
        self.busy_ns += float(np.sum(done - np.maximum(start, prev_done)))

        # Carry state forward: last completion per bank, its open row,
        # and the bus horizon (``done`` is non-decreasing).
        seg_end = np.empty(m, dtype=bool)
        seg_end[:-1] = new_seg[1:]
        seg_end[-1] = True
        touched = b_s[seg_end]
        self.bank_ready[touched] = done[order[seg_end]]
        self.open_row[touched] = r_s[seg_end]
        self.bus_free = float(done[-1])
        block_hits = int(np.count_nonzero(hit_s))
        self.hits += block_hits
        self.misses += m - block_hits
        self.served += m


def _run_lanes(
    config: HBMConfig,
    frfcfs_window: int,
    block_accesses: int,
    channel_ids: np.ndarray,
    stream: Iterable[tuple[DecodedTrace, np.ndarray | None]],
) -> RunStats:
    """Evaluate ``channel_ids``'s substreams; return partial RunStats.

    The returned stats cover only the given channels (other slots stay
    zero) and carry the raw per-channel chain makespan — the caller
    applies the global in-flight floor after merging shards.
    """
    num_channels = config.num_channels
    lanes = {
        int(c): _ChannelLane(config, frfcfs_window, block_accesses)
        for c in channel_ids
    }
    lo = int(channel_ids.min()) if channel_ids.size else 0
    hi = int(channel_ids.max()) + 1 if channel_ids.size else 0
    for decoded, forced in stream:
        m = len(decoded)
        if m == 0:
            continue
        channel = np.asarray(decoded.channel)
        order = np.argsort(channel, kind="stable")
        channel_s = channel[order]
        bank_s = np.asarray(decoded.bank)[order]
        row_s = np.asarray(decoded.row)[order]
        if forced is None:
            forced_s = np.zeros(m, dtype=bool)
        else:
            forced_s = np.asarray(forced, dtype=bool)[order]
        bounds = np.searchsorted(channel_s, np.arange(lo, hi + 1))
        for c in range(lo, hi):
            lane = lanes.get(c)
            if lane is None:
                continue
            left, right = bounds[c - lo], bounds[c - lo + 1]
            if left < right:
                lane.feed(
                    bank_s[left:right],
                    row_s[left:right],
                    forced_s[left:right],
                )
    per_channel_requests = np.zeros(num_channels, dtype=np.int64)
    per_channel_busy = np.zeros(num_channels, dtype=np.float64)
    requests = hits = misses = 0
    makespan = 0.0
    for c in sorted(lanes):
        lane = lanes[c]
        lane.finish()
        per_channel_requests[c] = lane.served
        per_channel_busy[c] = lane.busy_ns
        requests += lane.served
        hits += lane.hits
        misses += lane.misses
        makespan = max(makespan, lane.bus_free)
    return RunStats(
        requests=requests,
        bytes_moved=requests * config.line_bytes,
        makespan_ns=makespan,
        row_hits=hits,
        row_misses=misses,
        num_channels=num_channels,
        per_channel_requests=per_channel_requests,
        per_channel_busy_ns=per_channel_busy,
    )


def _shard_task(args) -> RunStats:
    """Worker entry: evaluate one contiguous channel range."""
    (config, frfcfs_window, block, channel_ids, channel, bank, row, forced) = args
    decoded = DecodedTrace(
        channel=channel,
        bank=bank,
        row=row,
        column=np.zeros(channel.size, dtype=np.int64),
        global_bank=np.zeros(channel.size, dtype=np.int64),
    )
    return _run_lanes(
        config, frfcfs_window, block, channel_ids, [(decoded, forced)]
    )


class VectorModel:
    """Vectorised multi-channel memory device (the ``"vector"`` tier).

    ``workers > 1`` shards the independent channels across a process
    pool; results are bit-identical to the serial path because every
    channel's evaluation depends only on its own substream and the
    shard reduction merges partial stats in fixed channel order.

    Sharded execution is *supervised*: shards are submitted
    individually, bounded by ``shard_timeout``, retried with backoff
    under ``retry`` (a :class:`~repro.system.runner.RetryPolicy`), and
    degraded shard-by-shard to in-process evaluation when the pool is
    broken, a worker stalls, or retries are exhausted.  Every rung of
    that ladder is recorded in ``last_health`` (a
    :class:`~repro.hbm.stats.BackendHealth`) — nothing degrades
    silently.  ``faults`` accepts a
    :class:`~repro.faults.FaultPlan` whose ``backend.shard.*`` sites
    deterministically exercise each recovery path.
    """

    def __init__(
        self,
        config: HBMConfig,
        max_inflight: int = 64,
        frfcfs_window: int = 8,
        block_accesses: int = DEFAULT_BLOCK_ACCESSES,
        workers: int = 0,
        shard_timeout: float = DEFAULT_SHARD_TIMEOUT,
        retry=None,
        faults=None,
    ):
        if max_inflight < 1:
            raise SimulationError("max_inflight must be >= 1")
        if block_accesses < 1:
            raise SimulationError("block_accesses must be >= 1")
        if shard_timeout <= 0:
            raise SimulationError("shard_timeout must be > 0")
        self.config = config
        self.max_inflight = max_inflight
        self.frfcfs_window = frfcfs_window
        self.block_accesses = block_accesses
        self.workers = workers
        self.shard_timeout = shard_timeout
        self.retry = retry
        self.faults = faults
        self.last_health: BackendHealth | None = None

    # -- entry points -------------------------------------------------------
    def simulate(self, ha: np.ndarray) -> RunStats:
        """Run a hardware-address trace (decode, then simulate)."""
        ha = np.asarray(ha, dtype=np.uint64)
        return self.simulate_decoded(decode_trace(ha, self.config))

    def simulate_decoded(
        self,
        decoded: DecodedTrace | Iterable[DecodedTrace],
        forced_miss: np.ndarray | None = None,
    ) -> RunStats:
        """Run a decoded request stream — whole or chunked.

        ``decoded`` may be a single :class:`DecodedTrace` or any
        iterable of them (the chunked streaming path: decoded traces
        never materialise beyond one chunk plus one block per channel).
        ``forced_miss`` (whole-trace form only) marks ECC retries that
        pay the full miss cost.
        """
        if isinstance(decoded, DecodedTrace):
            stream: Iterator = iter([(decoded, forced_miss)])
        else:
            if forced_miss is not None:
                raise SimulationError(
                    "forced_miss requires a whole DecodedTrace, not chunks"
                )
            stream = ((chunk, None) for chunk in decoded)
        self.last_health = BackendHealth(
            backend="vector", workers=int(self.workers or 0)
        )
        if self.workers and self.workers > 1:
            merged = self._simulate_sharded(stream)
        else:
            merged = _run_lanes(
                self.config,
                self.frfcfs_window,
                self.block_accesses,
                np.arange(self.config.num_channels),
                stream,
            )
        return self._finalize(merged)

    # -- pieces -------------------------------------------------------------
    def _finalize(self, merged: RunStats) -> RunStats:
        """Apply the global in-flight window as a Little's-law floor."""
        if merged.requests == 0:
            return merged
        total_cost = (
            merged.row_hits * self.config.effective_t_burst_ns
            + merged.row_misses * self.config.effective_t_row_miss_ns
        )
        floor = total_cost / self.max_inflight
        if floor > merged.makespan_ns:
            merged = replace(merged, makespan_ns=floor)
        return merged

    def _simulate_sharded(self, stream) -> RunStats:
        """Fan channel ranges out to a process pool and merge in order."""
        num_channels = self.config.num_channels
        shards = min(self.workers, num_channels)
        ranges = np.array_split(np.arange(num_channels), shards)
        # Collect each shard's substream (channel-partitioned arrays);
        # the full decoded trace still never materialises in one array.
        parts: list[list[tuple[np.ndarray, ...]]] = [[] for _ in ranges]
        for decoded, forced in stream:
            m = len(decoded)
            if m == 0:
                continue
            channel = np.asarray(decoded.channel)
            order = np.argsort(channel, kind="stable")
            channel_s = channel[order]
            bank_s = np.asarray(decoded.bank)[order]
            row_s = np.asarray(decoded.row)[order]
            if forced is None:
                forced_s = np.zeros(m, dtype=bool)
            else:
                forced_s = np.asarray(forced, dtype=bool)[order]
            edges = [int(r[0]) for r in ranges] + [num_channels]
            bounds = np.searchsorted(channel_s, edges)
            for index in range(shards):
                left, right = bounds[index], bounds[index + 1]
                if left < right:
                    parts[index].append(
                        (
                            channel_s[left:right],
                            bank_s[left:right],
                            row_s[left:right],
                            forced_s[left:right],
                        )
                    )
        tasks = []
        for index, channel_ids in enumerate(ranges):
            chunks = parts[index]
            if chunks:
                arrays = [
                    np.concatenate([chunk[f] for chunk in chunks])
                    for f in range(4)
                ]
            else:
                arrays = [
                    np.zeros(0, dtype=np.int64),
                    np.zeros(0, dtype=np.int64),
                    np.zeros(0, dtype=np.int64),
                    np.zeros(0, dtype=bool),
                ]
            tasks.append(
                (
                    self.config,
                    self.frfcfs_window,
                    self.block_accesses,
                    channel_ids,
                    *arrays,
                )
            )
        results = self._map_shards(tasks)
        merged = results[0]
        for partial in results[1:]:
            merged = merged.merge(partial)
        return merged

    # -- shard supervision ---------------------------------------------------
    def _retry_policy(self):
        """The supervisor's retry policy (default: the runner's)."""
        if self.retry is not None:
            return self.retry
        # Lazy import: repro.system.runner transitively imports this
        # module through the backend registry.
        from repro.system.runner import RetryPolicy

        return RetryPolicy()

    def _shard_fault(self, site: str, index: int, attempt: int):
        """The injected-fault spec for one shard event, if any fires."""
        if self.faults is None:
            return None
        return self.faults.should_fire(site, f"shard{index}", attempt)

    @staticmethod
    def _validate_shard(task, stats: RunStats) -> str | None:
        """Merge-time sanity check on one shard's partial stats.

        Returns a rejection reason, or ``None`` when the partial is
        internally consistent with the substream the shard was given.
        A rejected partial is never merged — the shard is re-run.
        """
        config, _, _, _, channel, _, _, _ = task
        expected = int(channel.size)
        if stats.requests != expected:
            return (
                f"shard reported {stats.requests} requests for a "
                f"{expected}-request substream"
            )
        if stats.num_channels != config.num_channels:
            return (
                f"shard reported {stats.num_channels} channels, "
                f"expected {config.num_channels}"
            )
        if stats.row_hits + stats.row_misses != stats.requests:
            return (
                f"hits ({stats.row_hits}) + misses ({stats.row_misses}) "
                f"!= requests ({stats.requests})"
            )
        if int(stats.per_channel_requests.sum()) != expected:
            return "per-channel request counts do not sum to the substream"
        if not np.isfinite(stats.makespan_ns) or stats.makespan_ns < 0:
            return f"non-finite or negative makespan {stats.makespan_ns!r}"
        return None

    def _check_shard_result(
        self, index: int, task, stats: RunStats, attempt: int, health
    ) -> RunStats:
        """Apply injected crash/corrupt faults, then validate.

        Raises :class:`WorkerCrashError` when the result must be
        discarded (the shard is then re-dispatched by the caller).
        """
        crash = self._shard_fault(BACKEND_SHARD_CRASH, index, attempt)
        if crash is not None:
            raise WorkerCrashError(
                f"{crash.message} [{BACKEND_SHARD_CRASH} shard{index}]"
            )
        corrupt = self._shard_fault(BACKEND_SHARD_STATS, index, attempt)
        if corrupt is not None:
            # Model a worker returning garbled partials: an off-by-one
            # request count that the merge-time validation must catch.
            stats = replace(stats, requests=stats.requests + 1)
        problem = self._validate_shard(task, stats)
        if problem is not None:
            health.record(
                "shard-stats-rejected", problem, shard=index, attempt=attempt
            )
            raise WorkerCrashError(
                f"shard {index} returned corrupted stats: {problem}"
            )
        return stats

    def _run_shard_inline(
        self, index: int, task, attempt: int, health, retry
    ) -> RunStats:
        """Serial fallback: evaluate one shard in-process, supervised.

        The last rung of the degradation ladder — still retried under
        the policy, and still validated.  A failure that survives every
        attempt raises :class:`BackendExecutionError` carrying the full
        health record.
        """
        while True:
            try:
                stall = self._shard_fault(BACKEND_SHARD_STALL, index, attempt)
                if stall is not None:
                    health.record(
                        "shard-timeout",
                        f"injected stall ({stall.seconds}s): {stall.message}",
                        shard=index,
                        attempt=attempt,
                    )
                    raise WorkerCrashError(
                        f"shard {index} stalled past {self.shard_timeout}s"
                    )
                stats = self._check_shard_result(
                    index, task, _shard_task(task), attempt, health
                )
                return stats
            except ReproError as error:
                name = type(error).__name__
                if retry.should_retry(name, attempt):
                    health.record(
                        "shard-retry",
                        f"{name}: {error}",
                        shard=index,
                        attempt=attempt,
                        where="inline",
                    )
                    time.sleep(retry.delay(attempt))
                    attempt += 1
                    continue
                raise BackendExecutionError(
                    f"shard {index} failed beyond recovery: {error}",
                    health=health,
                ) from error

    def _map_shards(self, tasks) -> list[RunStats]:
        """Supervised shard execution: pool, timeouts, retries, serial.

        The ladder, every rung recorded in ``last_health``:

        1. submit each shard individually to a process pool;
        2. a shard that crashes (or returns rejected stats) is
           re-dispatched alone with backoff, per the retry policy;
        3. a shard that exceeds ``shard_timeout`` — or an injected
           ``backend.shard.stall`` — abandons the pool (a stalled
           worker cannot be cancelled) and falls through to rung 4;
        4. shards the pool could not complete are evaluated in-process
           (shard-granular serial fallback), still retried/validated;
        5. a shard that fails even in-process raises
           :class:`BackendExecutionError` with the health record.

        Results are bit-identical across all rungs by construction.
        """
        from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
        from concurrent.futures.process import BrokenProcessPool

        health = self.last_health
        if health is None:
            health = self.last_health = BackendHealth(
                backend="vector", workers=int(self.workers or 0)
            )
        health.shards += len(tasks)
        retry = self._retry_policy()
        n = len(tasks)
        results: list[RunStats | None] = [None] * n
        attempts = [1] * n
        pending = list(range(n))

        pool = None
        try:
            pool = ProcessPoolExecutor(max_workers=n)
        except (BrokenProcessPool, OSError, NotImplementedError) as error:
            # Constrained environments (no fork, no semaphores) cannot
            # host a pool at all; anything else — e.g. the ValueError a
            # bad max_workers raises — is a real bug and propagates.
            health.record(
                "pool-degraded", f"{type(error).__name__}: {error}"
            )

        while pool is not None and pending:
            submitted = {}
            round_failed: list[tuple[int, BaseException]] = []
            timed_out: list[int] = []
            abandon = False
            for i in list(pending):
                stall = self._shard_fault(
                    BACKEND_SHARD_STALL, i, attempts[i]
                )
                if stall is not None:
                    health.record(
                        "shard-timeout",
                        f"injected stall ({stall.seconds}s): {stall.message}",
                        shard=i,
                        attempt=attempts[i],
                    )
                    timed_out.append(i)
                    abandon = True
                    continue
                try:
                    submitted[pool.submit(_shard_task, tasks[i])] = i
                except (BrokenProcessPool, OSError, RuntimeError) as error:
                    health.record(
                        "pool-degraded",
                        f"submit failed: {type(error).__name__}: {error}",
                        shard=i,
                    )
                    timed_out.append(i)
                    abandon = True
            deadline = time.monotonic() + self.shard_timeout
            not_done = set(submitted)
            while not_done:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                done, not_done = wait(
                    not_done, timeout=remaining, return_when=FIRST_COMPLETED
                )
                for future in done:
                    i = submitted[future]
                    error = future.exception()
                    if error is None:
                        try:
                            results[i] = self._check_shard_result(
                                i, tasks[i], future.result(), attempts[i],
                                health,
                            )
                            continue
                        except ReproError as check_error:
                            error = check_error
                    if isinstance(error, BrokenProcessPool):
                        abandon = True
                    round_failed.append((i, error))
            for future in not_done:
                i = submitted[future]
                health.record(
                    "shard-timeout",
                    f"no result within {self.shard_timeout}s",
                    shard=i,
                    attempt=attempts[i],
                )
                timed_out.append(i)
                abandon = True

            next_round: list[int] = []
            for i, error in round_failed:
                name = type(error).__name__
                if retry.should_retry(name, attempts[i]):
                    health.record(
                        "shard-retry",
                        f"{name}: {error}",
                        shard=i,
                        attempt=attempts[i],
                        where="pool",
                    )
                    time.sleep(retry.delay(attempts[i]))
                    attempts[i] += 1
                    next_round.append(i)
                else:
                    health.record(
                        "serial-shard",
                        f"retries exhausted in pool ({name}: {error})",
                        shard=i,
                    )
                    # Falls through to the serial rung below via pending.
            for i in timed_out:
                attempts[i] += 1
            if abandon:
                # A stalled or broken worker cannot be reclaimed —
                # abandon the whole pool and finish the remaining
                # shards in-process.
                pool.shutdown(wait=False, cancel_futures=True)
                pool = None
                if not any(
                    d.get("event") == "pool-degraded"
                    for d in health.degradations
                ):
                    health.record(
                        "pool-degraded",
                        "pool abandoned after stall/crash; remaining "
                        "shards run in-process",
                    )
                break
            pending = next_round

        if pool is not None:
            pool.shutdown()
        for i in range(n):
            if results[i] is None:
                if not any(
                    d.get("event") == "serial-shard" and d.get("shard") == i
                    for d in health.degradations
                ):
                    health.record(
                        "serial-shard",
                        "shard evaluated in-process (pool unavailable)",
                        shard=i,
                    )
                results[i] = self._run_shard_inline(
                    i, tasks[i], attempts[i], health, retry
                )
        return results
