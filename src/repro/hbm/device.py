"""Event-driven HBM device model — the reference fidelity tier.

Requests from the trace are admitted under a global in-flight window
(the MLP the core can sustain), queue per channel, and are issued
FR-FCFS against per-bank row-buffer state, with the channel data bus
serialising transfers.  Slower than :class:`~repro.hbm.fastmodel.
WindowModel` but models queueing and scheduler reordering explicitly;
``tests/hbm/test_model_agreement.py`` checks the two tiers agree.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import SimulationError
from repro.hbm.channel import Channel, ChannelRequest
from repro.hbm.config import HBMConfig
from repro.hbm.decode import DecodedTrace, decode_trace
from repro.hbm.stats import RunStats

__all__ = ["HBMDevice"]


class HBMDevice:
    """Event-driven multi-channel memory device."""

    def __init__(
        self,
        config: HBMConfig,
        max_inflight: int = 64,
        frfcfs_window: int = 8,
    ):
        if max_inflight < 1:
            raise SimulationError("max_inflight must be >= 1")
        self.config = config
        self.max_inflight = max_inflight
        self.frfcfs_window = frfcfs_window

    def _new_channels(self) -> list[Channel]:
        return [
            Channel(
                banks_per_channel=self.config.banks_per_channel,
                t_burst_ns=self.config.effective_t_burst_ns,
                t_row_miss_ns=self.config.effective_t_row_miss_ns,
                frfcfs_window=self.frfcfs_window,
            )
            for _ in range(self.config.num_channels)
        ]

    def simulate(self, ha: np.ndarray) -> RunStats:
        """Run a hardware-address trace through the device."""
        ha = np.asarray(ha, dtype=np.uint64)
        return self.simulate_decoded(decode_trace(ha, self.config))

    def simulate_decoded(
        self,
        decoded: DecodedTrace,
        forced_miss: np.ndarray | None = None,
    ) -> RunStats:
        """Run an already-decoded request stream (the fused datapath).

        ``decoded`` may be a single :class:`DecodedTrace` or an
        iterable of chunks — the event loop consumes requests one at a
        time, so chunked input is bit-identical to the whole trace and
        needs no re-decoding (only one chunk is live at a time).
        ``forced_miss`` (optional boolean mask, one flag per access,
        whole-trace form only) marks ECC-retry requests that must pay
        the full miss cost.
        """
        if isinstance(decoded, DecodedTrace):
            if forced_miss is not None:
                forced_miss = np.asarray(forced_miss, dtype=bool)
            chunks = iter([(decoded, forced_miss)])
        else:
            if forced_miss is not None:
                raise SimulationError(
                    "forced_miss requires a whole DecodedTrace, not chunks"
                )
            chunks = ((chunk, None) for chunk in decoded)
        channels = self._new_channels()
        num_channels = self.config.num_channels

        completions: list[float] = []
        makespan = 0.0
        admit_time = 0.0
        completed = 0
        issued = 0

        def serve_one() -> None:
            """Issue the request with the earliest feasible start."""
            nonlocal makespan
            best_start = float("inf")
            best_channel: Channel | None = None
            for channel in channels:
                if not channel.has_work():
                    continue
                start = channel.next_start_estimate()
                if start < best_start:
                    best_start = start
                    best_channel = channel
            if best_channel is None:  # pragma: no cover - guarded by callers
                raise SimulationError("no queued work to serve")
            _req, done, _hit = best_channel.service_next(best_start)
            heapq.heappush(completions, done)
            makespan = max(makespan, done)

        n = 0
        work_remaining = 0
        for chunk, chunk_forced in chunks:
            for index in range(len(chunk)):
                # Admission control: wait for a window slot.
                while issued - completed >= self.max_inflight:
                    if not completions:
                        serve_one()
                        work_remaining -= 1
                    else:
                        admit_time = max(admit_time, heapq.heappop(completions))
                        completed += 1
                channel = channels[chunk.channel[index]]
                channel.enqueue(
                    ChannelRequest(
                        index=n + index,
                        bank=int(chunk.bank[index]),
                        row=int(chunk.row[index]),
                        arrival_ns=admit_time,
                        forced_miss=bool(chunk_forced[index])
                        if chunk_forced is not None
                        else False,
                    )
                )
                issued += 1
                work_remaining += 1
            n += len(chunk)

        if n == 0:
            zeros = np.zeros(num_channels)
            return RunStats(0, 0, 0.0, 0, 0, num_channels, zeros, zeros)

        while work_remaining > 0:
            serve_one()
            work_remaining -= 1

        per_channel_requests = np.array(
            [channel.served for channel in channels], dtype=np.int64
        )
        per_channel_busy = np.array(
            [channel.busy_ns for channel in channels], dtype=np.float64
        )
        hits = sum(bank.hits for channel in channels for bank in channel.banks)
        misses = sum(bank.misses for channel in channels for bank in channel.banks)
        return RunStats(
            requests=n,
            bytes_moved=n * self.config.line_bytes,
            makespan_ns=makespan,
            row_hits=hits,
            row_misses=misses,
            num_channels=num_channels,
            per_channel_requests=per_channel_requests,
            per_channel_busy_ns=per_channel_busy,
        )
