"""Runtime cross-tier divergence guard for memory backends.

The fast tiers (``"vector"``, ``"fast"``) are *calibrated* to the
event-driven reference, not proven equivalent — a regression in a lane
kernel, a corrupted shard merge, or a miscompiled numpy could silently
skew every result they produce.  :class:`GuardedBackend` wraps a
primary backend and, on every run, replays a deterministic sample of
the decoded chunks through a freshly-built reference backend, comparing
the two tiers chunk-by-chunk:

* **exact invariants** — request count, bytes moved, per-channel
  request counts, and hits+misses==requests must match exactly (both
  tiers consume the same decoded chunk);
* **tolerance band** — the primary/reference makespan ratio must fall
  inside ``tolerance`` (the tiers are cycle-calibrated, not
  cycle-identical; see ``tests/hbm/test_calibration.py``).

On a mismatch the guard either *demotes* — re-runs the whole stream
through the reference tier, permanently for the rest of this backend's
life, recording a ``tier-demoted`` degradation — or *raises* a
structured :class:`~repro.errors.BackendDivergenceError`, per ``mode``.
Either way the full comparison report lands in
``last_health.guard`` — divergence is never silent.

Sampling is deterministic (a :func:`~repro.core.keys.stable_hash`
fraction per chunk index, never ``random``), so a guarded run is
reproducible; the ``backend.divergence`` fault site perturbs a sampled
chunk's primary result to exercise the demotion path deterministically.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.core.keys import stable_hash
from repro.errors import BackendDivergenceError, ConfigError
from repro.faults.sites import BACKEND_DIVERGENCE
from repro.hbm.decode import DecodedTrace, decode_trace
from repro.hbm.stats import BackendHealth, RunStats

__all__ = [
    "DEFAULT_GUARD_SAMPLE",
    "DEFAULT_GUARD_TOLERANCE",
    "GuardedBackend",
    "TierFactory",
]

#: Fraction of decoded chunks replayed through the reference tier.
DEFAULT_GUARD_SAMPLE = 0.05

#: Accepted primary/reference makespan ratio band per sampled chunk.
#: Deliberately wider than the whole-run calibration bands: a single
#: chunk is noisier than a full trace, and the guard hunts for gross
#: divergence (broken kernels, corrupted merges), not calibration
#: drift.
DEFAULT_GUARD_TOLERANCE = (0.10, 2.0)

GUARD_MODES = ("demote", "raise")


class TierFactory:
    """A picklable "build me a fresh backend" closure.

    The guard's replay factories must survive pickling (guarded
    backends ride inside campaign checkpoints), which rules out
    lambdas; this class captures the registry name plus construction
    kwargs instead.
    """

    def __init__(
        self, name: str, config, max_inflight: int | None = None, **options
    ):
        self.name = name
        self.config = config
        self.max_inflight = None if max_inflight is None else int(max_inflight)
        self.options = dict(options)

    def __call__(self):
        from repro.hbm.backend import create_backend

        options = dict(self.options)
        if self.max_inflight is not None:
            options["max_inflight"] = self.max_inflight
        return create_backend(self.name, self.config, **options)


class GuardedBackend:
    """A memory backend wrapper that cross-checks tiers at runtime.

    Satisfies the :class:`~repro.hbm.backend.MemoryBackend` protocol;
    the machine wraps its chosen backend in one of these when
    ``Machine(guard=True)``.  ``primary_factory`` and
    ``reference_factory`` build fresh single-process instances of each
    tier for the chunk replays, so the guard's verdict is independent
    of the wrapped instance's sharding or accumulated state.
    """

    def __init__(
        self,
        primary,
        primary_factory: Callable[[], object],
        reference_factory: Callable[[], object],
        primary_name: str = "vector",
        reference_name: str = "event",
        sample: float = DEFAULT_GUARD_SAMPLE,
        tolerance: tuple[float, float] = DEFAULT_GUARD_TOLERANCE,
        mode: str = "demote",
        faults=None,
        seed: int = 0,
    ):
        if mode not in GUARD_MODES:
            raise ConfigError(
                f"unknown guard mode {mode!r}; expected one of {GUARD_MODES}"
            )
        if not (0.0 < sample <= 1.0):
            raise ConfigError("guard sample must be in (0, 1]")
        lo, hi = tolerance
        if not (0.0 < lo < hi):
            raise ConfigError("guard tolerance must be an increasing band")
        self.primary = primary
        self.primary_factory = primary_factory
        self.reference_factory = reference_factory
        self.primary_name = primary_name
        self.reference_name = reference_name
        self.sample = float(sample)
        self.tolerance = (float(lo), float(hi))
        self.mode = mode
        self.faults = faults
        self.seed = int(seed)
        self.config = primary.config
        self.demoted = False
        self.last_health: BackendHealth | None = None

    @property
    def last_traffic(self):
        """The guarded tier's per-run traffic, if it keeps one.

        Forwarded so a guarded tiered backend still surfaces its
        :class:`~repro.tier.stats.TierTraffic` on results.
        """
        return getattr(self.primary, "last_traffic", None)

    # -- protocol entry points ----------------------------------------------
    def simulate(self, ha) -> RunStats:
        """Run a hardware-address trace (decode, then simulate)."""
        ha = np.asarray(ha, dtype=np.uint64)
        return self.simulate_decoded(decode_trace(ha, self.config))

    def simulate_decoded(
        self,
        decoded: DecodedTrace | Iterable[DecodedTrace],
        forced_miss=None,
    ) -> RunStats:
        """Run the stream through the primary tier, then spot-check it.

        The decoded stream is materialised chunk-by-chunk (the guard
        must be able to replay individual chunks), sampled
        deterministically, and each sampled chunk is evaluated by a
        fresh single-process primary and a fresh reference.  Divergence
        demotes or raises per ``mode``; the comparison report is always
        attached to ``last_health.guard``.
        """
        if isinstance(decoded, DecodedTrace):
            chunks = [decoded]
        else:
            chunks = list(decoded)
            if forced_miss is not None:
                # Match the concrete backends' contract.
                from repro.errors import SimulationError

                raise SimulationError(
                    "forced_miss requires a whole DecodedTrace, not chunks"
                )

        if self.demoted:
            stats = self._run_reference(chunks, forced_miss)
            health = BackendHealth(backend=self.primary_name)
            health.record(
                "tier-demoted",
                "previous divergence pinned this backend to the "
                f"{self.reference_name} tier",
                to=self.reference_name,
            )
            self.last_health = health
            return stats

        primary_stats = self._run_primary(chunks, forced_miss)
        health = getattr(self.primary, "last_health", None)
        if health is None:
            health = BackendHealth(backend=self.primary_name)

        report = self._check(chunks, forced_miss)
        health.guard = report
        self.last_health = health
        if not report["diverged"]:
            return primary_stats

        failing = [c for c in report["checks"] if not c["ok"]]
        reason = (
            f"{self.primary_name} diverged from {self.reference_name} on "
            f"{len(failing)}/{len(report['checks'])} sampled chunk(s): "
            f"{failing[0]['reason']}"
        )
        if self.mode == "raise":
            raise BackendDivergenceError(reason, report=report)
        self.demoted = True
        report["demoted"] = True
        health.record("tier-demoted", reason, to=self.reference_name)
        return self._run_reference(chunks, forced_miss)

    # -- pieces ---------------------------------------------------------------
    def _run_primary(self, chunks, forced_miss) -> RunStats:
        if len(chunks) == 1 and forced_miss is not None:
            return self.primary.simulate_decoded(chunks[0], forced_miss)
        return self.primary.simulate_decoded(iter(chunks))

    def _run_reference(self, chunks, forced_miss) -> RunStats:
        reference = self.reference_factory()
        if len(chunks) == 1 and forced_miss is not None:
            return reference.simulate_decoded(chunks[0], forced_miss)
        return reference.simulate_decoded(iter(chunks))

    def _sampled_indices(self, chunks) -> list[int]:
        """Deterministically pick which chunks to replay.

        Every non-empty chunk rolls a stable fraction; at least one
        chunk is always sampled (the one with the smallest roll), so a
        guarded run never silently skips verification.
        """
        rolls = []
        for index, chunk in enumerate(chunks):
            if len(chunk) == 0:
                continue
            digest = stable_hash("guard-sample", self.seed, index)
            rolls.append((int(digest[:12], 16) / float(1 << 48), index))
        if not rolls:
            return []
        picked = sorted(index for roll, index in rolls if roll < self.sample)
        if not picked:
            picked = [min(rolls)[1]]
        return picked

    def _check(self, chunks, forced_miss) -> dict:
        """Replay sampled chunks through both tiers and compare."""
        lo, hi = self.tolerance
        picked = self._sampled_indices(chunks)
        checks: list[dict] = []
        for index in picked:
            chunk = chunks[index]
            forced = forced_miss if len(chunks) == 1 else None
            primary = self.primary_factory().simulate_decoded(chunk, forced)
            spec = None
            if self.faults is not None:
                spec = self.faults.should_fire(
                    BACKEND_DIVERGENCE, f"chunk{index}", 1
                )
            if spec is not None:
                # Model a silently-broken fast tier: scale its answer
                # far outside any calibration band.
                from dataclasses import replace

                primary = replace(
                    primary, makespan_ns=primary.makespan_ns * 100.0 + 1.0
                )
            reference = self.reference_factory().simulate_decoded(
                chunk, forced
            )
            checks.append(
                self._compare(index, primary, reference, lo, hi, spec)
            )
        report = {
            "primary": self.primary_name,
            "reference": self.reference_name,
            "chunks": len(chunks),
            "sample": self.sample,
            "tolerance": [lo, hi],
            "sampled_chunks": picked,
            "checks": checks,
            "diverged": any(not c["ok"] for c in checks),
            "demoted": False,
        }
        return report

    @staticmethod
    def _compare(index, primary, reference, lo, hi, spec) -> dict:
        """One chunk's verdict: exact invariants, then the ratio band."""
        reason = None
        if primary.requests != reference.requests:
            reason = (
                f"request counts differ: {primary.requests} != "
                f"{reference.requests}"
            )
        elif primary.bytes_moved != reference.bytes_moved:
            reason = (
                f"bytes moved differ: {primary.bytes_moved} != "
                f"{reference.bytes_moved}"
            )
        elif primary.row_hits + primary.row_misses != primary.requests:
            reason = "primary hits+misses do not sum to requests"
        elif not np.array_equal(
            primary.per_channel_requests, reference.per_channel_requests
        ):
            reason = "per-channel request counts differ"
        else:
            ref_span = reference.makespan_ns
            ratio = (
                primary.makespan_ns / ref_span
                if ref_span > 0
                else (1.0 if primary.makespan_ns == 0 else float("inf"))
            )
            if not (lo <= ratio <= hi):
                reason = (
                    f"makespan ratio {ratio:.4f} outside "
                    f"[{lo:.2f}, {hi:.2f}]"
                )
        ref_span = reference.makespan_ns
        return {
            "chunk": int(index),
            "requests": int(reference.requests),
            "primary_makespan_ns": float(primary.makespan_ns),
            "reference_makespan_ns": float(ref_span),
            "ratio": float(primary.makespan_ns / ref_span)
            if ref_span > 0
            else None,
            "injected": spec is not None,
            "ok": reason is None,
            "reason": reason,
        }
