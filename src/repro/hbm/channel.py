"""One memory channel: banks behind a shared data bus, FR-FCFS issue.

Accesses to different channels proceed fully in parallel (CLP); within a
channel the data bus serialises transfers, while row activations overlap
across banks (BLP) — which is why CLP buys so much more than BLP/RLP
(Section 2.1).  The scheduler is first-ready FCFS: among queued requests
it prefers one whose bank has the right row open, falling back to the
oldest request.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.hbm.bank import Bank

__all__ = ["Channel", "ChannelRequest"]


@dataclass
class ChannelRequest:
    """A request as seen by one channel."""

    index: int  # position in the original trace
    bank: int
    row: int
    arrival_ns: float
    # RAS: an ECC retry on degraded hardware — the row buffer cannot be
    # trusted, so the access pays the full miss cost unconditionally.
    forced_miss: bool = False


class Channel:
    """Per-channel queue + banks + data bus."""

    def __init__(
        self,
        banks_per_channel: int,
        t_burst_ns: float,
        t_row_miss_ns: float,
        frfcfs_window: int = 8,
    ):
        self.banks = [Bank() for _ in range(banks_per_channel)]
        self.t_burst_ns = t_burst_ns
        self.t_row_miss_ns = t_row_miss_ns
        self.frfcfs_window = max(1, frfcfs_window)
        self.queue: deque[ChannelRequest] = deque()
        self.bus_free_ns = 0.0
        self.busy_ns = 0.0
        self.served = 0
        self._last_done_ns = 0.0

    def enqueue(self, request: ChannelRequest) -> None:
        """Append a request to the channel queue."""
        self.queue.append(request)

    def has_work(self) -> bool:
        """True while requests are queued."""
        return bool(self.queue)

    def next_start_estimate(self) -> float:
        """Heuristic earliest start, used to order service across channels."""
        if not self.queue:
            return float("inf")
        return max(self.bus_free_ns, self.queue[0].arrival_ns)

    def _pick(self, now_ns: float) -> ChannelRequest:
        """FR-FCFS: earliest-arrived row hit in the lookahead window,
        else the oldest request.  Arrivals are non-decreasing, so the
        scan can stop at the first not-yet-arrived request."""
        limit = min(len(self.queue), self.frfcfs_window)
        for position in range(limit):
            candidate = self.queue[position]
            if candidate.arrival_ns > now_ns:
                break
            if not candidate.forced_miss and self.banks[
                candidate.bank
            ].would_hit(candidate.row):
                del self.queue[position]
                return candidate
        return self.queue.popleft()

    def service_next(self, now_ns: float):
        """Issue one request; returns ``(request, done_ns, was_hit)``.

        The bank pays the full hit/miss cost; the data bus only carries
        the final burst, so activations in different banks overlap but
        transfers serialise.
        """
        request = self._pick(now_ns)
        bank = self.banks[request.bank]
        # Activation can begin as soon as the request is visible and the
        # bank is free — it overlaps with other banks' bursts on the bus.
        bank_start = max(request.arrival_ns, bank.ready_ns)
        cost, hit = bank.probe(request.row, self.t_burst_ns, self.t_row_miss_ns)
        if request.forced_miss:
            cost, hit = self.t_row_miss_ns, False
        done = max(bank_start + cost, self.bus_free_ns + self.t_burst_ns)
        bank.commit(request.row, done, hit)
        self.bus_free_ns = done
        # Channel active time = union of [bank_start, done] intervals.
        self.busy_ns += done - max(bank_start, self._last_done_ns)
        self._last_done_ns = done
        self.served += 1
        return request, done, hit
