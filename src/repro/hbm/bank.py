"""Row-buffer state machine for one DRAM bank (event-driven model)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Bank"]


@dataclass
class Bank:
    """One bank: an open row and a ready time.

    ``open_row`` is ``None`` after power-up (the first access always
    pays the activation cost).  ``ready_ns`` is when the bank can begin
    its next access.  The surrounding channel owns the data bus; the
    bank only models row state and per-bank serialisation.
    """

    open_row: int | None = None
    ready_ns: float = 0.0
    hits: int = 0
    misses: int = 0

    def would_hit(self, row: int) -> bool:
        """True if the row is currently open in this bank."""
        return self.open_row == row

    def probe(self, row: int, t_burst: float, t_row_miss: float):
        """Cost of accessing ``row`` now; returns ``(cost_ns, was_hit)``."""
        if self.open_row == row:
            return t_burst, True
        return t_row_miss, False

    def commit(self, row: int, done_ns: float, was_hit: bool) -> None:
        """Record a completed access ending at ``done_ns``."""
        self.open_row = row
        self.ready_ns = done_ns
        if was_hit:
            self.hits += 1
        else:
            self.misses += 1
