"""Hardware-address decode: HA -> (channel, bank, row, column).

The memory controller's final stage: split a hardware address into the
physical coordinates the device serves.  Fully vectorised so an entire
trace decodes in a handful of numpy passes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hbm.config import HBMConfig

__all__ = ["DecodedTrace", "decode_trace"]


@dataclass(frozen=True)
class DecodedTrace:
    """Struct-of-arrays view of a decoded hardware-address trace.

    ``global_bank`` is a device-unique bank id (channel-major), the key
    under which row-buffer state lives.
    """

    channel: np.ndarray
    bank: np.ndarray
    row: np.ndarray
    column: np.ndarray
    global_bank: np.ndarray

    def __len__(self) -> int:
        return self.channel.size


def decode_trace(ha: np.ndarray, config: HBMConfig) -> DecodedTrace:
    """Decode hardware addresses into device coordinates."""
    ha = np.asarray(ha, dtype=np.uint64)
    layout = config.layout()
    fields = layout.decode(ha)
    channel = fields["channel"].astype(np.int64)
    bank = fields["bank"].astype(np.int64)
    return DecodedTrace(
        channel=channel,
        bank=bank,
        row=fields["row"].astype(np.int64),
        column=fields["column"].astype(np.int64),
        global_bank=channel * config.banks_per_channel + bank,
    )
