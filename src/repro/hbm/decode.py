"""Hardware-address decode: HA -> (channel, bank, row, column).

The memory controller's final stage: split a hardware address into the
physical coordinates the device serves.  Field extraction is itself a
GF(2) bit operation (a row slice of the identity), so it lowers to the
:mod:`repro.core.bitmatrix` algebra — and, crucially, it *composes*:

* :class:`DecodePlan` precomposes an address-mapping operator with the
  per-field projections, so a physical-address trace decodes straight
  to (channel, bank, row, column) in one vectorised pass per field with
  no intermediate hardware-address array;
* :func:`decode_translated` consumes an
  :class:`~repro.core.sdam.AddressTranslator`'s translation groups —
  the fused datapath the machine's evaluate stage runs;
* :func:`decode_trace` is the identity-mapping plan, the classic
  HA-array entry point (kept for the debug/legacy two-step path).

Plans are cached per (operator, config) in an explicit, thread-safe
:class:`~repro.hbm.plancache.PlanCache`: an experiment sweep compiles
each live mapping once and reuses it across every trace, and in the
multi-tenant service layer every tenant shares one cache so compile
cost is paid once per distinct mapping, not once per tenant.  Callers
that want their own cache pass ``cache=``; everyone else shares the
process-wide default.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bitmatrix import BitOperator, BitProjection
from repro.core.sdam import AddressTranslator
from repro.errors import MappingError
from repro.hbm.config import HBMConfig
from repro.hbm.plancache import PlanCache, default_plan_cache

__all__ = [
    "DecodedTrace",
    "DecodePlan",
    "concat_decoded",
    "decode_trace",
    "decode_translated",
    "iter_decoded_chunks",
    "plan_for",
]

#: Default streaming granularity for :func:`iter_decoded_chunks`.
DEFAULT_CHUNK_ACCESSES = 1 << 16

#: HA fields a decoded trace carries, in plan order.
DECODE_FIELDS = ("channel", "bank", "row", "column")


@dataclass(frozen=True)
class DecodedTrace:
    """Struct-of-arrays view of a decoded hardware-address trace.

    ``global_bank`` is a device-unique bank id (channel-major), the key
    under which row-buffer state lives.
    """

    channel: np.ndarray
    bank: np.ndarray
    row: np.ndarray
    column: np.ndarray
    global_bank: np.ndarray

    def __len__(self) -> int:
        return self.channel.size


class DecodePlan:
    """A compiled PA -> (channel, bank, row, column) pipeline.

    The plan slices ``operator``'s rows at each field of the config's
    address layout, yielding one :class:`BitProjection` per field:
    translation and field extraction fused into a single bit program.
    With the identity operator this degenerates to plain field
    extraction (one shift/mask pass per field).
    """

    def __init__(self, config: HBMConfig, operator: BitOperator | None = None):
        layout = config.layout()
        if operator is None:
            operator = BitOperator.identity(layout.width)
        if operator.width != layout.width:
            operator = _pad_operator(operator, layout.width)
        self.config = config
        self.operator = operator
        self._projections: list[tuple[str, BitProjection]] = [
            (name, operator.project(layout[name].shift, layout[name].width))
            for name in DECODE_FIELDS
        ]

    def fields(self, pa: np.ndarray) -> dict[str, np.ndarray]:
        """Raw int64 field arrays of the mapped addresses."""
        if not isinstance(pa, np.ndarray) or pa.dtype != np.uint64:
            pa = np.asarray(pa, dtype=np.uint64)
        return {
            name: projection.apply(pa).astype(np.int64)
            for name, projection in self._projections
        }

    def decode(self, pa: np.ndarray) -> DecodedTrace:
        """Fused translate + decode of a physical-address trace."""
        fields = self.fields(pa)
        return DecodedTrace(
            channel=fields["channel"],
            bank=fields["bank"],
            row=fields["row"],
            column=fields["column"],
            global_bank=fields["channel"] * self.config.banks_per_channel
            + fields["bank"],
        )

    def __repr__(self) -> str:
        ops = sum(p.num_ops for _, p in self._projections)
        return f"DecodePlan({self.config.name}, {self.operator!r}, {ops} ops)"


def _pad_operator(operator: BitOperator, width: int) -> BitOperator:
    """Embed a narrower operator in ``width`` bits (high bits identity)."""
    if operator.width > width:
        raise MappingError(
            f"operator width {operator.width} exceeds layout width {width}"
        )
    matrix = np.eye(width, dtype=np.uint8)
    matrix[: operator.width, : operator.width] = operator.matrix
    return BitOperator(matrix)


def plan_for(
    config: HBMConfig,
    operator: BitOperator | None = None,
    cache: PlanCache | None = None,
) -> DecodePlan:
    """The (cached) decode plan fusing ``operator`` with ``config``'s layout.

    ``cache`` selects which :class:`~repro.hbm.plancache.PlanCache`
    serves the plan; by default the process-wide shared cache.  The
    returned plan is immutable and shared — never mutate it.
    """
    if operator is None:
        operator = BitOperator.identity(config.layout().width)
    if cache is None:
        cache = default_plan_cache()
    key = (config, operator)
    return cache.get(key, lambda: DecodePlan(config, operator))


def decode_trace(ha: np.ndarray, config: HBMConfig) -> DecodedTrace:
    """Decode hardware addresses into device coordinates."""
    return plan_for(config).decode(ha)


def decode_translated(
    pa: np.ndarray,
    translator: AddressTranslator,
    config: HBMConfig,
    cache: PlanCache | None = None,
) -> DecodedTrace:
    """Fused PA -> (channel, bank, row, column) for a whole trace.

    The common cases — a global mapping, or an SDAM controller whose
    trace touches one mapping — decode through a single cached
    :class:`DecodePlan` with no intermediate hardware-address array.  A
    mixed-mapping trace instead materialises HA once through the
    translator's vectorised path (for the SDAM controller a single
    crossbar-LUT gather) and decodes it with the cached identity plan:
    measured on million-access traces, one HA array beats scattering
    four field arrays per group.  Bit-identical to
    ``decode_trace(translator.translate(pa), config)`` — the legacy
    two-step kept as the ``debug_ha`` path.
    """
    if not isinstance(pa, np.ndarray) or pa.dtype != np.uint64:
        pa = np.asarray(pa, dtype=np.uint64)
    first = next(translator.translation_groups(pa), None)
    if first is None:  # empty group iterator (defensive)
        empty = np.zeros(pa.shape, dtype=np.int64)
        return DecodedTrace(
            channel=empty,
            bank=empty.copy(),
            row=empty.copy(),
            column=empty.copy(),
            global_bank=empty.copy(),
        )
    select, operator = first
    if select is None:
        return plan_for(config, operator, cache=cache).decode(pa)
    return plan_for(config, cache=cache).decode(translator.translate(pa))


def iter_decoded_chunks(
    pa: np.ndarray,
    translator: AddressTranslator,
    config: HBMConfig,
    chunk_accesses: int = DEFAULT_CHUNK_ACCESSES,
    cache: PlanCache | None = None,
):
    """Stream :func:`decode_translated` over fixed-size PA slices.

    Decode is elementwise, so chunked decoding is bit-identical to
    whole-trace decoding for every chunk size — only peak memory
    changes: at most one decoded chunk is live at a time, which is what
    lets a backend evaluate traces that never fully materialise.
    Yields :class:`DecodedTrace` chunks (none for an empty trace).
    """
    if chunk_accesses < 1:
        raise MappingError(
            f"chunk_accesses must be >= 1, got {chunk_accesses}"
        )
    if not isinstance(pa, np.ndarray) or pa.dtype != np.uint64:
        pa = np.asarray(pa, dtype=np.uint64)
    for start in range(0, pa.size, chunk_accesses):
        yield decode_translated(
            pa[start : start + chunk_accesses], translator, config,
            cache=cache,
        )


def concat_decoded(chunks) -> DecodedTrace:
    """Concatenate decoded chunks back into one :class:`DecodedTrace`.

    The adapter for whole-trace consumers (e.g. the analytic fast
    model, whose batch hit rule needs the full per-bank sequence).
    """
    chunks = [c for c in chunks if len(c)]
    if not chunks:
        empty = np.zeros(0, dtype=np.int64)
        return DecodedTrace(
            channel=empty,
            bank=empty.copy(),
            row=empty.copy(),
            column=empty.copy(),
            global_bank=empty.copy(),
        )
    if len(chunks) == 1:
        return chunks[0]
    return DecodedTrace(
        channel=np.concatenate([c.channel for c in chunks]),
        bank=np.concatenate([c.bank for c in chunks]),
        row=np.concatenate([c.row for c in chunks]),
        column=np.concatenate([c.column for c in chunks]),
        global_bank=np.concatenate([c.global_bank for c in chunks]),
    )
