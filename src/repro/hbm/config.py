"""HBM / DDR device configurations.

Geometry and timing for the simulated memory devices.  The canonical
HBM2 configuration mirrors the paper's platform: two stacks totalling
8 GB and 32 independent channels, 256 B rows (so only 4 cache lines per
row — high CLP, low RLP), against a DDR4 reference with 4 channels and
2 KB rows (low CLP, high RLP) for the Section 2.1 comparison.

Timing is expressed in nanoseconds per cache-line transfer: ``t_burst``
is the cost of a row-buffer hit (back-to-back column access) and
``t_row_miss`` the cost of closing + activating a row.  Peak bandwidth
is ``channels * line_bytes / t_burst`` — 204.8 GB/s for the HBM2
defaults, matching the ~200 GB/s ceiling of Fig. 1/3, and 102.4 GB/s for
DDR4, matching Section 2.1.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.bitfield import AddressLayout
from repro.errors import ConfigError

__all__ = ["HBMConfig", "hbm2_config", "ddr4_config"]

GiB = 1024**3


def _bits(value: int, what: str) -> int:
    if value <= 0 or value & (value - 1):
        raise ConfigError(f"{what} must be a power of two, got {value}")
    return value.bit_length() - 1


@dataclass(frozen=True)
class HBMConfig:
    """Geometry + timing of one memory device."""

    name: str = "hbm2"
    total_bytes: int = 8 * GiB
    num_channels: int = 32
    banks_per_channel: int = 8
    row_bytes: int = 256
    line_bytes: int = 64
    t_burst_ns: float = 10.0
    t_row_miss_ns: float = 45.0
    frequency_scale: float = 1.0
    """Fig. 14 knob: 0.25 emulates HBM at a quarter of its frequency."""

    def __post_init__(self) -> None:
        for field_name in (
            "total_bytes",
            "num_channels",
            "banks_per_channel",
            "row_bytes",
            "line_bytes",
        ):
            _bits(getattr(self, field_name), field_name)
        if self.row_bytes < self.line_bytes:
            raise ConfigError("row smaller than a cache line")
        if self.t_burst_ns <= 0 or self.t_row_miss_ns < self.t_burst_ns:
            raise ConfigError("need 0 < t_burst <= t_row_miss")
        if self.frequency_scale <= 0:
            raise ConfigError("frequency_scale must be positive")

    # -- bit widths ---------------------------------------------------------
    @property
    def line_bits(self) -> int:
        """Byte-in-line offset width."""
        return _bits(self.line_bytes, "line_bytes")

    @property
    def column_bits(self) -> int:
        """Cache lines per row (RLP): 2 bits for 256 B rows."""
        return _bits(self.row_bytes // self.line_bytes, "row columns")

    @property
    def channel_bits(self) -> int:
        """Channel-select width (5 for 32 channels)."""
        return _bits(self.num_channels, "num_channels")

    @property
    def bank_bits(self) -> int:
        """Bank-select width."""
        return _bits(self.banks_per_channel, "banks_per_channel")

    @property
    def address_bits(self) -> int:
        """Total address width for the device capacity."""
        return _bits(self.total_bytes, "total_bytes")

    @property
    def row_bits(self) -> int:
        """Row-index width (whatever the other fields leave)."""
        used = (
            self.line_bits
            + self.column_bits
            + self.channel_bits
            + self.bank_bits
        )
        row = self.address_bits - used
        if row <= 0:
            raise ConfigError("geometry leaves no row bits")
        return row

    @property
    def rows_per_bank(self) -> int:
        """DRAM rows in each bank."""
        return 1 << self.row_bits

    @property
    def num_banks(self) -> int:
        """Banks across the whole device."""
        return self.num_channels * self.banks_per_channel

    def layout(self) -> AddressLayout:
        """Hardware-address field layout, LSB first.

        ``line | channel | column | bank | row``: with the identity
        mapping this is the boot-time channel-interleaved default
        (consecutive cache lines rotate through all channels), i.e. the
        paper's ``BS+DM`` baseline.
        """
        return AddressLayout(
            [
                ("line", self.line_bits),
                ("channel", self.channel_bits),
                ("column", self.column_bits),
                ("bank", self.bank_bits),
                ("row", self.row_bits),
            ]
        )

    # -- timing --------------------------------------------------------------
    @property
    def effective_t_burst_ns(self) -> float:
        """Row-hit service time after frequency scaling."""
        return self.t_burst_ns / self.frequency_scale

    @property
    def effective_t_row_miss_ns(self) -> float:
        """Row-miss service time after frequency scaling."""
        return self.t_row_miss_ns / self.frequency_scale

    @property
    def peak_bandwidth_gbps(self) -> float:
        """GB/s with every channel streaming row hits."""
        return self.num_channels * self.line_bytes / self.effective_t_burst_ns

    def scaled(self, frequency_scale: float) -> "HBMConfig":
        """Same device at a different frequency (Fig. 14)."""
        return replace(self, frequency_scale=frequency_scale)


def hbm2_config(**overrides) -> HBMConfig:
    """The paper's platform: 8 GB HBM2, 32 channels, 256 B rows."""
    return HBMConfig(**overrides) if overrides else HBMConfig()


def ddr4_config(**overrides) -> HBMConfig:
    """A DDR4-like reference: 4 channels, 2 KB rows, 102.4 GB/s peak."""
    defaults = dict(
        name="ddr4",
        total_bytes=32 * GiB,
        num_channels=4,
        banks_per_channel=16,
        row_bytes=2048,
        line_bytes=64,
        t_burst_ns=2.5,
        t_row_miss_ns=47.5,
    )
    defaults.update(overrides)
    return HBMConfig(**defaults)
