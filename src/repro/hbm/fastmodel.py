"""Vectorised analytic HBM service model (the fast fidelity tier).

The model bounds a trace's makespan by three mechanisms, mirroring the
contention structure of 3D memory (Section 2.1):

* **channel data bus** — transfers serialise per channel: one
  ``t_burst`` per request, so the busiest channel's bus occupancy
  bounds the run (this is the CLP term: a stride that collapses onto
  one channel pays the whole trace serially — Fig. 3's ~20x drop);
* **bank service** — each request occupies its bank for the full
  hit/miss cost, banks operate in parallel (BLP hides activations as
  long as traffic spreads across banks), so the busiest *bank* also
  bounds its channel;
* **request concurrency** — the core/accelerator sustains at most
  ``max_inflight`` outstanding requests, so by Little's law the run
  takes at least ``sum(service costs) / max_inflight``.

Row hits are classified with an FR-FCFS batching rule (see
:func:`row_hit_mask`), matching the event-driven tier's scheduler.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.hbm.config import HBMConfig
from repro.hbm.decode import DecodedTrace, concat_decoded, decode_trace
from repro.hbm.stats import RunStats

__all__ = ["WindowModel", "row_hit_mask"]


def row_hit_mask(decoded: DecodedTrace, reorder_window: int = 8) -> np.ndarray:
    """Per-access row-buffer hit flags with FR-FCFS batching.

    A real controller reorders its queue to serve same-row requests
    back to back, so two interleaved streams alternating rows in one
    bank do not thrash: within each window of ``reorder_window``
    consecutive accesses *to a bank*, all requests to the same row
    after the first are hits.  ``reorder_window=1`` degenerates to the
    strict in-order rule (previous access to the bank must match).
    """
    n = len(decoded)
    if n == 0:
        return np.zeros(0, dtype=bool)
    window = max(1, reorder_window)
    # Rank of each access within its bank's sub-stream.
    bank_order = np.argsort(decoded.global_bank, kind="stable")
    bank_sorted = decoded.global_bank[bank_order]
    new_bank = np.ones(n, dtype=bool)
    new_bank[1:] = bank_sorted[1:] != bank_sorted[:-1]
    group_start = np.maximum.accumulate(np.where(new_bank, np.arange(n), 0))
    pos_in_bank = np.arange(n) - group_start
    batch = pos_in_bank // window
    # Within (bank, batch, row), everything after the first access hits.
    keys = np.empty(n, dtype=np.int64)
    keys[bank_order] = batch  # batch id, aligned back to trace order
    order = np.lexsort((np.arange(n), decoded.row, keys, decoded.global_bank))
    bank_g = decoded.global_bank[order]
    batch_g = keys[order]
    row_g = decoded.row[order]
    same = np.zeros(n, dtype=bool)
    same[1:] = (
        (bank_g[1:] == bank_g[:-1])
        & (batch_g[1:] == batch_g[:-1])
        & (row_g[1:] == row_g[:-1])
    )
    hits = np.empty(n, dtype=bool)
    hits[order] = same
    return hits


class WindowModel:
    """Fast trace-driven service model for one memory device."""

    def __init__(
        self,
        config: HBMConfig,
        max_inflight: int = 64,
        reorder_window: int = 8,
    ):
        if max_inflight < 1:
            raise SimulationError("max_inflight must be >= 1")
        self.config = config
        self.max_inflight = max_inflight
        self.reorder_window = reorder_window

    def simulate(self, ha: np.ndarray) -> RunStats:
        """Run a hardware-address trace; return aggregate statistics."""
        ha = np.asarray(ha, dtype=np.uint64)
        return self.simulate_decoded(decode_trace(ha, self.config))

    def simulate_decoded(
        self, decoded: DecodedTrace, forced_miss: np.ndarray | None = None
    ) -> RunStats:
        """Run an already-decoded request stream (the fused datapath).

        ``decoded`` may be a single :class:`DecodedTrace` or an
        iterable of chunks; the analytic batch rule needs the whole
        per-bank sequence, so chunks are concatenated (bit-identical,
        the streaming interface is shared with the other tiers).
        ``forced_miss`` (optional boolean mask, one flag per access)
        marks requests whose row buffer cannot be trusted — ECC retries
        on degraded hardware — and charges them the full miss cost
        regardless of locality.
        """
        if not isinstance(decoded, DecodedTrace):
            if forced_miss is not None:
                raise SimulationError(
                    "forced_miss requires a whole DecodedTrace, not chunks"
                )
            decoded = concat_decoded(decoded)
        n = len(decoded)
        channels = self.config.num_channels
        if n == 0:
            zeros = np.zeros(channels)
            return RunStats(0, 0, 0.0, 0, 0, channels, zeros, zeros)
        hits = row_hit_mask(decoded, self.reorder_window)
        if forced_miss is not None:
            hits = hits & ~np.asarray(forced_miss, dtype=bool)
        t_burst = self.config.effective_t_burst_ns
        cost = np.where(hits, t_burst, self.config.effective_t_row_miss_ns)
        banks_per_channel = self.config.banks_per_channel
        # Bus occupancy: one burst per request, serial per channel.
        bus = (
            np.bincount(decoded.channel, minlength=channels).astype(np.float64)
            * t_burst
        )
        # Bank service time: full hit/miss cost, serial per bank.
        bank_total = np.bincount(
            decoded.global_bank,
            weights=cost,
            minlength=channels * banks_per_channel,
        )
        bank_bound = bank_total.reshape(channels, banks_per_channel).max(axis=1)
        per_channel_busy = np.maximum(bus, bank_bound)
        bandwidth_bound = float(per_channel_busy.max())
        concurrency_bound = float(cost.sum()) / self.max_inflight
        makespan = max(bandwidth_bound, concurrency_bound)
        per_channel_requests = np.bincount(decoded.channel, minlength=channels)
        return RunStats(
            requests=n,
            bytes_moved=n * self.config.line_bytes,
            makespan_ns=makespan,
            row_hits=int(hits.sum()),
            row_misses=int(n - hits.sum()),
            num_channels=channels,
            per_channel_requests=per_channel_requests,
            per_channel_busy_ns=per_channel_busy,
        )
