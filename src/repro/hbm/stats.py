"""Simulation statistics: bandwidth, CLP utilisation, row-hit rates.

Also home of :class:`DeviceHealth`, the RAS-side error bookkeeping.  It
is deliberately a separate class from :class:`RunStats` — RunStats is
frozen, cached and fingerprinted by the experiment engine, so growing
it would invalidate every on-disk cache entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["BackendHealth", "DeviceHealth", "RemapTraffic", "RunStats"]


@dataclass(frozen=True)
class RunStats:
    """Outcome of running one HA trace through a memory model.

    ``clp_utilization`` is the share of total channel-time that was
    actually busy: 1.0 means every channel worked for the whole run
    (perfect channel-level parallelism), 1/num_channels means one
    channel did all the work while the rest idled — the stride-32 worst
    case of Fig. 3.
    """

    requests: int
    bytes_moved: int
    makespan_ns: float
    row_hits: int
    row_misses: int
    num_channels: int
    per_channel_requests: np.ndarray = field(repr=False)
    per_channel_busy_ns: np.ndarray = field(repr=False)

    @classmethod
    def empty(cls, num_channels: int) -> "RunStats":
        """The merge identity: an all-zero stats for ``num_channels``."""
        return cls(
            requests=0,
            bytes_moved=0,
            makespan_ns=0.0,
            row_hits=0,
            row_misses=0,
            num_channels=num_channels,
            per_channel_requests=np.zeros(num_channels, dtype=np.int64),
            per_channel_busy_ns=np.zeros(num_channels, dtype=np.float64),
        )

    def merge(self, other: "RunStats") -> "RunStats":
        """Combine stats from disjoint shards of one run.

        Counters add, per-channel arrays add elementwise, and the
        makespan takes the max (shards of one run share the time
        origin).  Lawful: associative, commutative, with
        :meth:`empty` as identity — so a sharded backend reduces its
        per-channel partials to the same result for any shard count or
        reduction order, as long as shards own disjoint channels.
        """
        if self.num_channels != other.num_channels:
            raise ValueError(
                "cannot merge RunStats with different channel counts: "
                f"{self.num_channels} != {other.num_channels}"
            )
        return RunStats(
            requests=self.requests + other.requests,
            bytes_moved=self.bytes_moved + other.bytes_moved,
            makespan_ns=max(self.makespan_ns, other.makespan_ns),
            row_hits=self.row_hits + other.row_hits,
            row_misses=self.row_misses + other.row_misses,
            num_channels=self.num_channels,
            per_channel_requests=self.per_channel_requests
            + other.per_channel_requests,
            per_channel_busy_ns=self.per_channel_busy_ns
            + other.per_channel_busy_ns,
        )

    def __add__(self, other: "RunStats") -> "RunStats":
        if not isinstance(other, RunStats):
            return NotImplemented
        return self.merge(other)

    @property
    def throughput_gbps(self) -> float:
        """GB/s (bytes per nanosecond)."""
        if self.makespan_ns <= 0:
            return 0.0
        return self.bytes_moved / self.makespan_ns

    @property
    def row_hit_rate(self) -> float:
        """Row-buffer hits divided by total accesses."""
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    @property
    def channels_touched(self) -> int:
        """Channels that served at least one request."""
        return int(np.count_nonzero(self.per_channel_requests))

    @property
    def clp_utilization(self) -> float:
        """Busy channel-time over total channel-time."""
        if self.makespan_ns <= 0:
            return 0.0
        busy = float(self.per_channel_busy_ns.sum())
        return busy / (self.makespan_ns * self.num_channels)

    @property
    def request_balance(self) -> float:
        """1.0 when requests split evenly across channels (entropy-based)."""
        counts = self.per_channel_requests.astype(np.float64)
        total = counts.sum()
        if total == 0:
            return 0.0
        p = counts[counts > 0] / total
        entropy = float(-(p * np.log2(p)).sum())
        return entropy / np.log2(self.num_channels) if self.num_channels > 1 else 1.0

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.requests} reqs, {self.throughput_gbps:.1f} GB/s, "
            f"hit-rate {self.row_hit_rate:.2f}, "
            f"CLP {self.clp_utilization:.2f} "
            f"({self.channels_touched}/{self.num_channels} channels)"
        )

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-serialisable form; :meth:`from_dict` round-trips it."""
        return {
            "requests": self.requests,
            "bytes_moved": self.bytes_moved,
            "makespan_ns": self.makespan_ns,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "num_channels": self.num_channels,
            "per_channel_requests": [
                int(v) for v in self.per_channel_requests
            ],
            "per_channel_busy_ns": [
                float(v) for v in self.per_channel_busy_ns
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunStats":
        """Rebuild stats written by :meth:`to_dict`."""
        return cls(
            requests=int(data["requests"]),
            bytes_moved=int(data["bytes_moved"]),
            makespan_ns=float(data["makespan_ns"]),
            row_hits=int(data["row_hits"]),
            row_misses=int(data["row_misses"]),
            num_channels=int(data["num_channels"]),
            per_channel_requests=np.asarray(
                data["per_channel_requests"], dtype=np.int64
            ),
            per_channel_busy_ns=np.asarray(
                data["per_channel_busy_ns"], dtype=np.float64
            ),
        )


@dataclass
class BackendHealth:
    """Structured record of every degradation a guarded run suffered.

    Like :class:`DeviceHealth` and :class:`RemapTraffic`, deliberately
    separate from the frozen, cache-fingerprinted :class:`RunStats`:
    health describes *how* a result was obtained (retries, fallbacks,
    demotions), never *what* the result is — two runs that degrade
    differently still produce bit-identical stats.

    The shard supervisor and the divergence guard append one entry to
    ``degradations`` per recovery action, each a dict with at least
    ``event`` (``"shard-retry"``, ``"shard-timeout"``,
    ``"shard-stats-rejected"``, ``"serial-shard"``, ``"pool-degraded"``,
    ``"tier-demoted"``) and ``reason``.  Counters summarise the same
    events for cheap checks; ``guard`` holds the divergence guard's
    comparison report when a guard ran.
    """

    backend: str = "vector"
    workers: int = 0
    shards: int = 0
    shard_retries: int = 0
    shard_timeouts: int = 0
    stats_rejected: int = 0
    serial_shards: int = 0
    pool_degraded: bool = False
    demoted_to: str | None = None
    degradations: list = field(default_factory=list)
    guard: dict | None = None

    def record(self, event: str, reason: str, **detail) -> None:
        """Append one structured degradation event and bump its counter."""
        entry = {"event": event, "reason": reason}
        entry.update(detail)
        self.degradations.append(entry)
        if event == "shard-retry":
            self.shard_retries += 1
        elif event == "shard-timeout":
            self.shard_timeouts += 1
        elif event == "shard-stats-rejected":
            self.stats_rejected += 1
        elif event == "serial-shard":
            self.serial_shards += 1
        elif event == "pool-degraded":
            self.pool_degraded = True
        elif event == "tier-demoted":
            self.demoted_to = str(detail.get("to", "event"))

    @property
    def ok(self) -> bool:
        """True when the run completed with no degradation at all."""
        if self.degradations:
            return False
        return self.guard is None or not self.guard.get("diverged", False)

    @property
    def sharded(self) -> bool:
        """True when the process pool actually executed every shard."""
        return (
            self.workers > 1
            and self.shards > 1
            and not self.pool_degraded
            and self.serial_shards == 0
        )

    def merge(self, other: "BackendHealth") -> "BackendHealth":
        """Combine health from sequential runs of the same backend."""
        merged = BackendHealth(
            backend=self.backend,
            workers=max(self.workers, other.workers),
            shards=self.shards + other.shards,
            shard_retries=self.shard_retries + other.shard_retries,
            shard_timeouts=self.shard_timeouts + other.shard_timeouts,
            stats_rejected=self.stats_rejected + other.stats_rejected,
            serial_shards=self.serial_shards + other.serial_shards,
            pool_degraded=self.pool_degraded or other.pool_degraded,
            demoted_to=other.demoted_to or self.demoted_to,
            degradations=list(self.degradations) + list(other.degradations),
            guard=other.guard if other.guard is not None else self.guard,
        )
        return merged

    def to_dict(self) -> dict:
        """A JSON-serialisable form."""
        return {
            "backend": self.backend,
            "workers": self.workers,
            "shards": self.shards,
            "shard_retries": self.shard_retries,
            "shard_timeouts": self.shard_timeouts,
            "stats_rejected": self.stats_rejected,
            "serial_shards": self.serial_shards,
            "pool_degraded": self.pool_degraded,
            "demoted_to": self.demoted_to,
            "degradations": [dict(d) for d in self.degradations],
            "guard": dict(self.guard) if self.guard is not None else None,
            "ok": self.ok,
            "sharded": self.sharded,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BackendHealth":
        """Rebuild health written by :meth:`to_dict`."""
        return cls(
            backend=str(data.get("backend", "vector")),
            workers=int(data.get("workers", 0)),
            shards=int(data.get("shards", 0)),
            shard_retries=int(data.get("shard_retries", 0)),
            shard_timeouts=int(data.get("shard_timeouts", 0)),
            stats_rejected=int(data.get("stats_rejected", 0)),
            serial_shards=int(data.get("serial_shards", 0)),
            pool_degraded=bool(data.get("pool_degraded", False)),
            demoted_to=data.get("demoted_to"),
            degradations=[dict(d) for d in data.get("degradations", [])],
            guard=(
                dict(data["guard"]) if data.get("guard") is not None else None
            ),
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        if self.ok:
            return f"{self.backend} healthy ({self.shards} shards)"
        return (
            f"{self.backend}: {len(self.degradations)} degradation(s) — "
            f"{self.shard_retries} retries, {self.shard_timeouts} timeouts, "
            f"{self.stats_rejected} rejected stats, "
            f"{self.serial_shards} serial shards"
            + (f", demoted to {self.demoted_to}" if self.demoted_to else "")
        )


@dataclass
class RemapTraffic:
    """Accounting for live-remap traffic (the online control plane).

    Like :class:`DeviceHealth`, deliberately separate from the frozen,
    cache-fingerprinted :class:`RunStats`: these counters grow with the
    adaptive controller's actions, not with a single simulated trace.
    ``migration_ns`` is the simulated device time the copies occupied;
    ``reprogram_ns`` the modeled CMT-write + AMU-crossbar reprogram
    cost.  Both are the overhead an adaptive campaign charges against
    its service-time wins.
    """

    remaps: int = 0
    failed_remaps: int = 0
    rollback_migrations: int = 0
    chunks_migrated: int = 0
    lines_copied: int = 0
    bytes_moved: int = 0
    migration_ns: float = 0.0
    cmt_writes: int = 0
    amu_reprograms: int = 0
    reprogram_ns: float = 0.0

    def record_migration(self, report, line_bytes: int = 64) -> None:
        """Fold one :class:`~repro.mem.migration.MigrationReport` in."""
        self.chunks_migrated += 1
        self.lines_copied += int(report.lines_copied)
        # Every line is read through the old mapping and written through
        # the new one: two line transfers per copied line.
        self.bytes_moved += 2 * int(report.lines_copied) * int(line_bytes)
        self.migration_ns += float(report.cost_ns)

    def merge(self, other: "RemapTraffic") -> "RemapTraffic":
        """Combine counters from independent campaign shards (all add)."""
        return RemapTraffic(
            remaps=self.remaps + other.remaps,
            failed_remaps=self.failed_remaps + other.failed_remaps,
            rollback_migrations=self.rollback_migrations
            + other.rollback_migrations,
            chunks_migrated=self.chunks_migrated + other.chunks_migrated,
            lines_copied=self.lines_copied + other.lines_copied,
            bytes_moved=self.bytes_moved + other.bytes_moved,
            migration_ns=self.migration_ns + other.migration_ns,
            cmt_writes=self.cmt_writes + other.cmt_writes,
            amu_reprograms=self.amu_reprograms + other.amu_reprograms,
            reprogram_ns=self.reprogram_ns + other.reprogram_ns,
        )

    def __add__(self, other: "RemapTraffic") -> "RemapTraffic":
        if not isinstance(other, RemapTraffic):
            return NotImplemented
        return self.merge(other)

    @property
    def overhead_ns(self) -> float:
        """Total simulated time the remaps cost."""
        return self.migration_ns + self.reprogram_ns

    def to_dict(self) -> dict:
        """A JSON-serialisable form."""
        return {
            "remaps": self.remaps,
            "failed_remaps": self.failed_remaps,
            "rollback_migrations": self.rollback_migrations,
            "chunks_migrated": self.chunks_migrated,
            "lines_copied": self.lines_copied,
            "bytes_moved": self.bytes_moved,
            "migration_ns": self.migration_ns,
            "cmt_writes": self.cmt_writes,
            "amu_reprograms": self.amu_reprograms,
            "reprogram_ns": self.reprogram_ns,
            "overhead_ns": self.overhead_ns,
        }


class DeviceHealth:
    """Per-channel/bank error topology, classified into fault suspects.

    ECC flags arrive per access as a boolean mask aligned with a decoded
    trace; :meth:`record` folds them into per-``(channel, bank)`` error
    counts and error-row sets.  :meth:`suspects` then reads the topology
    back out: errors confined to one row of one bank look like a stuck
    row, errors across many rows of one bank look like a dead bank, and
    errors across most banks of a channel look like a lost channel.
    """

    def __init__(
        self,
        num_channels: int,
        banks_per_channel: int,
        row_threshold: int = 2,
        bank_row_threshold: int = 4,
        channel_bank_fraction: float = 0.5,
    ):
        self.num_channels = num_channels
        self.banks_per_channel = banks_per_channel
        self.row_threshold = row_threshold
        self.bank_row_threshold = bank_row_threshold
        self.channel_bank_fraction = channel_bank_fraction
        self.error_counts = np.zeros(
            (num_channels, banks_per_channel), dtype=np.int64
        )
        self.error_rows: dict[tuple[int, int], set[int]] = {}
        self.accesses = 0

    def record(self, decoded, error_mask) -> int:
        """Fold one access batch's ECC flags into the topology.

        ``decoded`` is a :class:`~repro.hbm.decode.DecodedTrace` (or any
        object with ``channel``/``bank``/``row`` arrays); ``error_mask``
        is a boolean array of the same length.  Returns the number of
        flagged accesses.
        """
        error_mask = np.asarray(error_mask, dtype=bool)
        self.accesses += int(error_mask.size)
        if not error_mask.any():
            return 0
        channels = np.asarray(decoded.channel)[error_mask]
        banks = np.asarray(decoded.bank)[error_mask]
        rows = np.asarray(decoded.row)[error_mask]
        np.add.at(self.error_counts, (channels, banks), 1)
        for c, b, r in zip(channels.tolist(), banks.tolist(), rows.tolist()):
            self.error_rows.setdefault((int(c), int(b)), set()).add(int(r))
        return int(error_mask.sum())

    @property
    def total_errors(self) -> int:
        """All ECC-flagged accesses recorded so far."""
        return int(self.error_counts.sum())

    def suspects(self) -> list[dict]:
        """Classify the recorded topology into fault suspects.

        Returns a list of ``{"kind": ..., "channel": ...}`` dicts,
        most-severe first (channel, then bank, then row).  A channel
        suspect subsumes its banks' evidence; a bank suspect subsumes
        its rows'.
        """
        found: list[dict] = []
        channel_bad = set()
        for c in range(self.num_channels):
            bad_banks = int(np.count_nonzero(self.error_counts[c]))
            if bad_banks >= max(
                2, int(self.banks_per_channel * self.channel_bank_fraction)
            ):
                found.append({"kind": "channel", "channel": c})
                channel_bad.add(c)
        bank_bad = set()
        for (c, b), rows in sorted(self.error_rows.items()):
            if c in channel_bad:
                continue
            if len(rows) >= self.bank_row_threshold:
                found.append({"kind": "bank", "channel": c, "bank": b})
                bank_bad.add((c, b))
        for (c, b), rows in sorted(self.error_rows.items()):
            if c in channel_bad or (c, b) in bank_bad:
                continue
            for row in sorted(rows):
                if self.error_counts[c, b] >= self.row_threshold:
                    found.append(
                        {"kind": "row", "channel": c, "bank": b, "row": row}
                    )
        return found

    def reset(self) -> None:
        """Clear all recorded evidence (after a repair round)."""
        self.error_counts[:] = 0
        self.error_rows.clear()
        self.accesses = 0

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.total_errors} ECC errors over {self.accesses} accesses, "
            f"{len(self.error_rows)} (channel,bank) sites affected"
        )
