"""Simulation statistics: bandwidth, CLP utilisation, row-hit rates."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RunStats"]


@dataclass(frozen=True)
class RunStats:
    """Outcome of running one HA trace through a memory model.

    ``clp_utilization`` is the share of total channel-time that was
    actually busy: 1.0 means every channel worked for the whole run
    (perfect channel-level parallelism), 1/num_channels means one
    channel did all the work while the rest idled — the stride-32 worst
    case of Fig. 3.
    """

    requests: int
    bytes_moved: int
    makespan_ns: float
    row_hits: int
    row_misses: int
    num_channels: int
    per_channel_requests: np.ndarray = field(repr=False)
    per_channel_busy_ns: np.ndarray = field(repr=False)

    @property
    def throughput_gbps(self) -> float:
        """GB/s (bytes per nanosecond)."""
        if self.makespan_ns <= 0:
            return 0.0
        return self.bytes_moved / self.makespan_ns

    @property
    def row_hit_rate(self) -> float:
        """Row-buffer hits divided by total accesses."""
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    @property
    def channels_touched(self) -> int:
        """Channels that served at least one request."""
        return int(np.count_nonzero(self.per_channel_requests))

    @property
    def clp_utilization(self) -> float:
        """Busy channel-time over total channel-time."""
        if self.makespan_ns <= 0:
            return 0.0
        busy = float(self.per_channel_busy_ns.sum())
        return busy / (self.makespan_ns * self.num_channels)

    @property
    def request_balance(self) -> float:
        """1.0 when requests split evenly across channels (entropy-based)."""
        counts = self.per_channel_requests.astype(np.float64)
        total = counts.sum()
        if total == 0:
            return 0.0
        p = counts[counts > 0] / total
        entropy = float(-(p * np.log2(p)).sum())
        return entropy / np.log2(self.num_channels) if self.num_channels > 1 else 1.0

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.requests} reqs, {self.throughput_gbps:.1f} GB/s, "
            f"hit-rate {self.row_hit_rate:.2f}, "
            f"CLP {self.clp_utilization:.2f} "
            f"({self.channels_touched}/{self.num_channels} channels)"
        )

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-serialisable form; :meth:`from_dict` round-trips it."""
        return {
            "requests": self.requests,
            "bytes_moved": self.bytes_moved,
            "makespan_ns": self.makespan_ns,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "num_channels": self.num_channels,
            "per_channel_requests": [
                int(v) for v in self.per_channel_requests
            ],
            "per_channel_busy_ns": [
                float(v) for v in self.per_channel_busy_ns
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunStats":
        """Rebuild stats written by :meth:`to_dict`."""
        return cls(
            requests=int(data["requests"]),
            bytes_moved=int(data["bytes_moved"]),
            makespan_ns=float(data["makespan_ns"]),
            row_hits=int(data["row_hits"]),
            row_misses=int(data["row_misses"]),
            num_channels=int(data["num_channels"]),
            per_channel_requests=np.asarray(
                data["per_channel_requests"], dtype=np.int64
            ),
            per_channel_busy_ns=np.asarray(
                data["per_channel_busy_ns"], dtype=np.float64
            ),
        )
