"""Pluggable memory backends behind one protocol.

All three fidelity tiers — the analytic :class:`~repro.hbm.fastmodel.
WindowModel` (``"fast"``), the vectorised-timing :class:`~repro.hbm.
vectormodel.VectorModel` (``"vector"``), and the event-driven reference
:class:`~repro.hbm.device.HBMDevice` (``"event"``) — consume the *same*
fused decoded stream (:class:`~repro.hbm.decode.DecodedTrace`, whole or
chunked) through :class:`MemoryBackend`.  The machine selects a backend
by name from a registry, so alternative device models (a DDR model, a
remote simulator bridge, a statistics-only stub) plug in without
touching the pipeline:

>>> from repro.hbm import register_backend, create_backend
>>> backend = create_backend("vector", hbm2_config(), max_inflight=64)
>>> stats = backend.simulate_decoded(decoded)
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from repro.errors import ConfigError
from repro.hbm.config import HBMConfig
from repro.hbm.decode import DecodedTrace
from repro.hbm.stats import RunStats

__all__ = [
    "MemoryBackend",
    "available_backends",
    "create_backend",
    "register_backend",
]


@runtime_checkable
class MemoryBackend(Protocol):
    """One memory device model consuming decoded request streams."""

    config: HBMConfig

    def simulate(self, ha) -> RunStats:
        """Run a hardware-address trace (decodes, then simulates)."""
        ...  # pragma: no cover - protocol

    def simulate_decoded(
        self, decoded: DecodedTrace, forced_miss=None
    ) -> RunStats:
        """Run an already-decoded request stream.

        ``decoded`` is a :class:`DecodedTrace` or — for the built-in
        tiers — an iterable of chunks (the streaming path; chunking is
        bit-identical to whole-trace simulation for every backend).
        ``forced_miss`` (optional boolean mask, whole-trace form only)
        marks ECC-retry requests that must be charged the full
        row-miss cost.
        """
        ...  # pragma: no cover - protocol


BackendFactory = Callable[..., MemoryBackend]

_REGISTRY: dict[str, BackendFactory] = {}


def register_backend(
    name: str, factory: BackendFactory, replace: bool = False
) -> None:
    """Register a backend under ``name``.

    Duplicate names raise :class:`~repro.errors.ConfigError` unless
    ``replace=True`` — silently shadowing a registered backend turned a
    typo'd plugin registration into wrong results, so overwriting is
    now an explicit request.
    """
    if not name:
        raise ConfigError("backend name must be non-empty")
    if not replace and name in _REGISTRY:
        raise ConfigError(
            f"backend {name!r} is already registered; "
            "pass replace=True to overwrite it"
        )
    _REGISTRY[name] = factory


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def create_backend(name: str, config: HBMConfig, **kwargs) -> MemoryBackend:
    """Instantiate a registered backend for a device configuration."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown memory backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        ) from None
    return factory(config, **kwargs)


def _tiered_factory(config: HBMConfig, **kwargs) -> MemoryBackend:
    # Imported lazily: the tier package imports this module for its
    # fast-tier delegate, so a top-level import would be circular.
    from repro.tier.backend import TieredBackend

    return TieredBackend(config, **kwargs)


def _register_builtins() -> None:
    # Imported lazily to keep backend.py free of circular imports: the
    # model modules import decode, which imports config only.
    # ``replace=True`` keeps re-registration idempotent (this runs on
    # every import of the module, e.g. after importlib.reload).
    from repro.hbm.device import HBMDevice
    from repro.hbm.fastmodel import WindowModel
    from repro.hbm.vectormodel import VectorModel

    register_backend("fast", WindowModel, replace=True)
    register_backend("event", HBMDevice, replace=True)
    register_backend("vector", VectorModel, replace=True)
    register_backend("tiered", _tiered_factory, replace=True)


_register_builtins()
