"""Command-line front end: ``python -m repro <command>``.

Small demos and sanity checks that exercise the library end to end
without writing any code:

* ``demo``    — the quickstart comparison on the mixed-stride copy;
* ``stride``  — the Fig. 3 stride sweep under the default mapping;
* ``hw``      — the AMU/CMT hardware-overhead report (Table 3);
* ``audit``   — build an SDAM controller, register mappings, verify
  the Section 4 correctness properties;
* ``suite``   — a quick Fig. 12-style sweep (pass ``--full`` for the
  complete suites, ``--workers N`` to parallelise, ``--cache-dir`` to
  memoise stages on disk, ``--resume`` to finish an interrupted
  sweep, ``--json`` for machine-readable output);
* ``bench``   — translation-datapath microbenchmark: fused
  translate+decode vs the pre-refactor baseline, written to
  ``BENCH_translation.json`` (``--min-speedup`` gates CI); with
  ``--online``, the streaming-BFRV estimator vs windowed batch
  recompute instead, written to ``BENCH_online.json``; with
  ``--evaluate``, the end-to-end evaluate stage under the chunked
  vector backend vs the event-loop reference, written to
  ``BENCH_evaluate.json`` (``--workers`` shards across channels);
* ``verify-cache`` — checksum + decode every stage-cache entry,
  quarantining corrupt ones (``--gc`` sweeps tmp debris, and
  ``--purge-quarantine`` empties the quarantine);
* ``ras``     — seeded device-fault campaign: inject modeled hardware
  faults (stuck rows, dead banks/channels, CMT/AMU upsets), detect
  them, repair by software-defined remapping, and verify zero silent
  corruption against a never-faulted twin machine (``--out`` writes
  the RASReport JSON for CI artifacts; ``--guard`` cross-checks the
  backend against the event reference, ``--checkpoint``/``--resume``
  make the campaign crash-safe);
* ``adapt``   — seeded online-adaptation campaign: a phase-shifting
  workload served live while the adaptive controller detects phase
  changes and migrates mappings, scored against every relevant static
  mapping (``--min-speedup`` gates CI, ``--out`` writes the campaign
  JSON; ``--guard`` and ``--checkpoint``/``--resume`` as for ``ras``).
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def cmd_demo(_args) -> int:
    """Quickstart comparison on the mixed-stride copy."""
    from repro import api
    from repro.system.reporting import format_table

    workload = api.mixed_stride_workload()
    session = api.Session(cache_dir=None, workers=0)
    rows = []
    baseline = None
    for result in session.compare(
        workload,
        systems=("bs_dm", "bs_bsm", "bs_hm", "sdm_bsm", "sdm_bsm_ml4"),
    ).values():
        if baseline is None:
            baseline = result.time_ns
        rows.append(
            {
                "system": result.system,
                "throughput_gbps": result.stats.throughput_gbps,
                "speedup": baseline / result.time_ns,
            }
        )
    print(format_table(rows, title=f"{workload.name} across systems"))
    return 0


def cmd_stride(args) -> int:
    """Fig. 3 stride sweep under the default mapping."""
    from repro.hbm import WindowModel, hbm2_config
    from repro.system.reporting import format_table

    config = hbm2_config()
    model = WindowModel(config, max_inflight=256)
    rows = []
    for stride in (1, 2, 4, 8, 16, 32, 64):
        pa = (
            np.arange(args.accesses, dtype=np.uint64)
            * np.uint64(stride * 64)
        ) % np.uint64(config.total_bytes)
        stats = model.simulate(pa)
        rows.append(
            {
                "stride": stride,
                "throughput_gbps": stats.throughput_gbps,
                "channels": stats.channels_touched,
                "row_hit_rate": stats.row_hit_rate,
            }
        )
    print(
        format_table(rows, title="stride sweep, boot-time default mapping")
    )
    return 0


def cmd_hw(_args) -> int:
    """Print the AMU/CMT overhead models (Table 3)."""
    from repro.core import amu_area_report, cmt_storage_report

    amu = amu_area_report()
    cmt = cmt_storage_report()
    print(
        f"AMU: {amu['switches_per_amu']} crossbar switches, "
        f"{amu['config_bits']}-bit config, x{amu['duplicates']} -> "
        f"{100 * amu['logic_fraction']:.2f}% of a VU37P"
    )
    print(
        f"CMT (128GB socket): two-level {cmt['two_level_kb']:.2f} KB vs "
        f"flat {cmt['flat_kb']:.1f} KB ({cmt['saving_factor']:.1f}x), "
        f"{cmt['lookup_latency_ns']:.0f} ns lookup"
    )
    return 0


def cmd_audit(args) -> int:
    """Build a controller, register random mappings, audit it."""
    from repro.core import ChunkGeometry, SDAMController, audit_controller

    geometry = ChunkGeometry()
    controller = SDAMController(geometry)
    rng = np.random.default_rng(args.seed)
    for index in range(args.mappings):
        mapping_id = controller.register_mapping(
            rng.permutation(geometry.window_bits)
        )
        for _ in range(4):
            controller.assign_chunk(
                int(rng.integers(geometry.num_chunks)), mapping_id
            )
    report = audit_controller(controller, sample_chunks=args.chunks)
    print(report)
    return 0 if report.ok else 1


def cmd_suite(args) -> int:
    """Run a (quick) Fig. 12-style speedup sweep."""
    from repro import api
    from repro.system.reporting import format_table

    session_kwargs: dict = {}
    if args.backend:
        session_kwargs["backend"] = args.backend
    session = api.Session(
        cache_dir=args.cache_dir, workers=args.workers, **session_kwargs
    )
    if args.resume:
        workloads = api.evaluation_workloads(quick=not args.full)
        if not args.full:
            session.machine_kwargs.setdefault(
                "dl_config", api.QUICK_DL_CONFIG
            )
        suite = session.sweep(workloads, resume=True)
    else:
        suite = session.full_evaluation(quick=not args.full)
    if args.json:
        print(suite.to_json(indent=2))
    else:
        table = suite.table
        rows = table.to_rows()
        geo: dict[str, object] = {"workload": "GEOMEAN"}
        for system in table.systems():
            geo[system] = table.geomean(system)
        rows.append(geo)
        print(format_table(rows, title="speedup over BS+DM"))
        print(
            f"wall {suite.wall_seconds:.1f}s, workers {suite.workers}, "
            f"cache {suite.cache_hits} hits / {suite.cache_misses} misses, "
            f"{suite.bytes_simulated / 1e6:.1f} MB simulated"
        )
        if suite.degraded:
            print(
                "note: worker pool broke mid-sweep; remaining cells ran "
                "serially",
                file=sys.stderr,
            )
    if suite.errors:
        for error in suite.errors:
            print(
                f"error: {error.workload} x {error.system} "
                f"[{error.stage}]: {error.message}",
                file=sys.stderr,
            )
        return 1
    return 0


def cmd_bench(args) -> int:
    """Benchmark the translation datapath (or, with ``--online``, the
    streaming estimator; with ``--evaluate``, the end-to-end evaluate
    stage); write the JSON report."""
    import json

    if args.tier:
        from repro.system.bench import (
            TIER_REPORT_PATH,
            run_tier_benchmark,
            write_report,
        )

        accesses = args.accesses or 65_536
        report = run_tier_benchmark(
            accesses=accesses,
            seed=args.seed,
            repeats=args.repeats,
        )
        path = write_report(report, args.out or TIER_REPORT_PATH)
        summary = report["summary_speedup_geomean"]
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            print(f"tier bench: {accesses} accesses -> {path}")
            for scenario, cell in report["cells"].items():
                print(
                    f"  {scenario:8s} smart-tiered "
                    f"{cell['smart_ns'] / 1e6:8.2f} ms model time "
                    f"({cell['speedup']:.2f}x vs all-slow)"
                )
            print(f"  geomean speedup: smart {summary['smart']:.2f}x")
        gate = summary["smart"]
        if gate < args.min_speedup:
            print(
                f"error: geomean speedup {gate:.2f}x below the "
                f"--min-speedup {args.min_speedup:.2f}x gate",
                file=sys.stderr,
            )
            return 1
        return 0

    if args.evaluate:
        from repro.system.bench import (
            EVALUATE_REPORT_PATH,
            run_evaluate_benchmark,
            write_report,
        )

        accesses = args.accesses or 200_000
        report = run_evaluate_benchmark(
            accesses=accesses,
            seed=args.seed,
            repeats=args.repeats,
            backend=args.backend or "vector",
            workers=args.workers,
        )
        path = write_report(report, args.out or EVALUATE_REPORT_PATH)
        summary = report["summary_speedup_geomean"]
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            print(
                f"evaluate bench: {accesses} accesses, "
                f"backend {report['backend']}"
                + (f" x{args.workers} shards" if args.workers else "")
                + f" -> {path}"
            )
            for scenario, cell in report["cells"].items():
                ev = cell["evaluate"]
                cal = cell["calibration"]
                print(
                    f"  {scenario:8s} evaluate "
                    f"{ev['fused_maccesses_per_s']:8.1f} Macc/s "
                    f"({ev['speedup']:.2f}x vs event loop, "
                    f"makespan ratio {cal['makespan_ratio']:.2f})"
                )
            print(f"  geomean speedup: evaluate {summary['evaluate']:.2f}x")
        gate = summary["evaluate"]
        if gate < args.min_speedup:
            print(
                f"error: geomean speedup {gate:.2f}x below the "
                f"--min-speedup {args.min_speedup:.2f}x gate",
                file=sys.stderr,
            )
            return 1
        return 0

    if args.online:
        from repro.online.bench import (
            DEFAULT_REPORT_PATH,
            run_benchmark,
            write_report,
        )
    else:
        from repro.system.bench import run_benchmark, write_report

        DEFAULT_REPORT_PATH = "BENCH_translation.json"

    accesses = args.accesses
    if accesses is None:
        accesses = 262_144 if args.online else 1_000_000
    report = run_benchmark(
        accesses=accesses,
        seed=args.seed,
        repeats=args.repeats,
    )
    path = write_report(report, args.out or DEFAULT_REPORT_PATH)
    summary = report["summary_speedup_geomean"]
    if args.json:
        print(json.dumps(report, indent=2))
    elif args.online:
        print(f"online bench: {accesses} accesses -> {path}")
        for scenario, cell in report["cells"].items():
            print(
                f"  {scenario:10s} streaming "
                f"{cell['streaming_maccesses_per_s']:8.1f} Macc/s "
                f"({cell['speedup']:.2f}x vs windowed batch recompute)"
            )
        print(f"  geomean speedup: streaming {summary['streaming']:.2f}x")
    else:
        print(f"translation bench: {accesses} accesses -> {path}")
        for scenario, cell in report["cells"].items():
            fused = cell["translate_decode"]
            print(
                f"  {scenario:8s} translate+decode "
                f"{fused['fused_maccesses_per_s']:8.1f} Macc/s "
                f"({fused['speedup']:.2f}x vs pre-refactor baseline)"
            )
        print(
            "  geomean speedups: "
            + ", ".join(f"{k} {v:.2f}x" for k, v in summary.items())
        )
    gate = summary["streaming" if args.online else "translate_decode"]
    if gate < args.min_speedup:
        print(
            f"error: geomean speedup {gate:.2f}x below the "
            f"--min-speedup {args.min_speedup:.2f}x gate",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_adapt(args) -> int:
    """Run the seeded online-adaptation campaign; optionally write JSON."""
    import json

    from repro.errors import CampaignInterrupted
    from repro.online.campaign import run_adaptive_campaign

    try:
        result = run_adaptive_campaign(
            seed=args.seed,
            quick=not args.full,
            window_accesses=args.window,
            backend=args.backend or "fast",
            guard=args.guard,
            guard_sample=args.guard_sample,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            stop_after_window=args.stop_after,
        )
    except CampaignInterrupted as stop:
        print(
            f"campaign interrupted: {stop} "
            f"(resume with --checkpoint {stop.checkpoint_path} --resume)",
            file=sys.stderr,
        )
        return 3
    payload = result.to_dict()
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(result.summary())
        for label, ns in sorted(
            result.static_ns.items(), key=lambda item: item[1]
        ):
            marker = " <- best" if label == result.best_static else ""
            print(f"  static {label}: {ns / 1e3:.1f} us{marker}")
        print(
            f"  {result.remaps} remaps, {result.declines} declines, "
            f"{result.failed_remaps} failed; stationary control: "
            f"{result.stationary_remaps} remaps"
        )
        if args.out:
            print(f"report written to {args.out}")
    problems = []
    if result.stationary_remaps:
        problems.append(
            f"stationary trace triggered {result.stationary_remaps} remaps "
            "(thrash guard violated)"
        )
    if result.speedup < args.min_speedup:
        problems.append(
            f"speedup {result.speedup:.2f}x below the "
            f"--min-speedup {args.min_speedup:.2f}x gate"
        )
    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    return 1 if problems else 0


def cmd_tier(args) -> int:
    """Run the tiered-memory campaign; optionally write JSON."""
    import json

    from repro.tier.campaign import run_tier_campaign

    try:
        result = run_tier_campaign(
            seed=args.seed,
            quick=not args.full,
            policy=args.policy,
        )
    except KeyboardInterrupt:
        print("tier campaign interrupted", file=sys.stderr)
        return 3
    payload = result.to_dict()
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(result.summary())
        if args.out:
            print(f"report written to {args.out}")
    if not result.ok:
        for problem in result.problems:
            print(f"error: {problem}", file=sys.stderr)
        return 1
    return 0


def cmd_verify_cache(args) -> int:
    """Verify (and optionally sweep) the on-disk stage cache."""
    import json

    from repro import api
    from repro.system.tracefile import StageStore

    cache_dir = args.cache_dir or api.default_cache_dir()
    store = StageStore(cache_dir)
    report = store.verify()
    gc_report = None
    if args.gc or args.purge_quarantine:
        gc_report = store.gc(purge_quarantine=args.purge_quarantine)
    bad = sorted(
        name
        for entry in report.values()
        for name in entry["quarantined"]
    )
    if args.json:
        print(
            json.dumps(
                {"cache_dir": str(cache_dir), "verify": report, "gc": gc_report},
                indent=2,
            )
        )
    else:
        print(f"cache: {cache_dir}")
        for kind, entry in report.items():
            if entry["checked"] == 0:
                continue
            print(
                f"  {kind:9s} {entry['ok']}/{entry['checked']} healthy"
                + (
                    f", quarantined: {', '.join(entry['quarantined'])}"
                    if entry["quarantined"]
                    else ""
                )
            )
        if gc_report is not None:
            print(
                f"  gc: {gc_report['tmp']} tmp files, "
                f"{gc_report['orphan_sidecars']} orphan sidecars, "
                f"{gc_report['quarantined']} quarantined files removed"
            )
        if bad:
            print(
                f"{len(bad)} corrupt entr{'y' if len(bad) == 1 else 'ies'} "
                "quarantined; the next sweep recomputes them",
                file=sys.stderr,
            )
    return 1 if bad else 0


def cmd_ras(args) -> int:
    """Run a seeded device-fault RAS campaign; optionally write JSON."""
    import json

    from repro.errors import CampaignInterrupted
    from repro.ras.campaign import ALL_KINDS, run_campaign

    kinds = tuple(args.kinds.split(",")) if args.kinds else ALL_KINDS
    try:
        result = run_campaign(
            seed=args.seed,
            kinds=kinds,
            quick=not args.full,
            backend=args.backend or "fast",
            guard=args.guard,
            guard_sample=args.guard_sample,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            stop_after_batch=args.stop_after,
        )
    except CampaignInterrupted as stop:
        print(
            f"campaign interrupted: {stop} "
            f"(resume with --checkpoint {stop.checkpoint_path} --resume)",
            file=sys.stderr,
        )
        return 3
    payload = result.to_dict()
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(result.summary())
        if args.out:
            print(f"report written to {args.out}")
    if not result.ok:
        for problem in result.problems:
            print(f"error: {problem}", file=sys.stderr)
        return 1
    return 0


def _cmd_serve_soak(args) -> int:
    """Continuous soak: N tenant lanes under sustained load.

    Submits round-robin traffic at every lane for ``--duration``
    seconds (sheds and probation rejections are expected and
    journaled), optionally with an injected ``service.*`` fault, then
    drains and gates on the health journal: exit 0 when the
    conservation law held, 1 on violations, 3 on interrupt — the same
    contract as ``ras``/``adapt``.
    """
    import json
    import time as clock

    from repro.errors import ServiceOverloadError, TenantQuarantinedError
    from repro.faults import FaultPlan
    from repro.service import ServiceFrontend, TenantSpec
    from repro.workloads.synthetic import StridedCopyWorkload

    faults = None
    if args.fault:
        faults = FaultPlan.single(
            args.fault, times=max(3, args.load), match="*"
        )
    frontend = ServiceFrontend(
        queue_depth=args.queue_depth,
        faults=faults,
        max_strikes=3,
        quarantine_s=0.1,
        supervise_interval_s=0.005,
    )
    interrupted = False
    drain_problem = None
    try:
        try:
            for index in range(args.load):
                frontend.admit(
                    TenantSpec(
                        name=f"soak{index:03d}",
                        system="bs_dm",
                        quota=2,
                        seed=args.seed + index,
                        backend=args.backend or "fast",
                    )
                )
            workload = StridedCopyWorkload(
                stride_lines=4, accesses_per_thread=512
            )
            deadline = clock.monotonic() + args.duration
            index = 0
            while clock.monotonic() < deadline:
                name = f"soak{index % args.load:03d}"
                try:
                    frontend.submit(name, workload, eval_seed=index)
                except (ServiceOverloadError, TenantQuarantinedError):
                    pass  # journaled by the front-end; keep the pressure on
                index += 1
                clock.sleep(0.001)
            try:
                frontend.drain(timeout=max(60.0, args.duration * 4))
            except Exception as error:  # noqa: BLE001 — gate below
                drain_problem = str(error)
        except KeyboardInterrupt:
            interrupted = True
        health = frontend.health
        payload = health.to_dict()
        if drain_problem:
            payload["violations"] = payload["violations"] + [drain_problem]
    finally:
        frontend.close()
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(health.summary())
        if args.out:
            print(f"health journal written to {args.out}")
    if interrupted:
        print("soak interrupted", file=sys.stderr)
        return 3
    if payload["violations"]:
        for problem in payload["violations"]:
            print(f"error: service health violated: {problem}", file=sys.stderr)
        return 1
    return 0


def cmd_serve(args) -> int:
    """Serve: soak mode (``--load``) or the isolation selftest."""
    import json

    from repro.service import run_service_campaign

    if args.load is not None:
        return _cmd_serve_soak(args)
    try:
        result = run_service_campaign(
            seed=args.seed,
            tenants=args.tenants,
            quick=not args.full,
            controllers=not args.no_controllers,
            backend=args.backend or "vector",
        )
    except KeyboardInterrupt:
        print("selftest interrupted", file=sys.stderr)
        return 3
    payload = result.to_dict()
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(result.summary())
        for name, fingerprint in result.concurrent_fingerprints.items():
            namespace = fingerprint.get("namespace") or {}
            print(
                f"  {name}: slots [{namespace.get('base')}, "
                f"{namespace.get('base', 0) + namespace.get('capacity', 0)}) "
                f"runs {len(fingerprint.get('runs', []))}"
            )
        if args.out:
            print(f"report written to {args.out}")
    if not result.isolated:
        for mismatch in result.mismatches:
            print(f"error: isolation violated: {mismatch}", file=sys.stderr)
        return 1
    return 0


def _add_campaign_flags(parser, unit: str) -> None:
    """The guarded-execution / checkpoint flags shared by ras and adapt."""
    parser.add_argument(
        "--guard",
        action="store_true",
        help="wrap the backend in the cross-tier divergence guard "
        "(sampled chunks replayed through the event reference; "
        "divergence demotes to the reference tier)",
    )
    parser.add_argument(
        "--guard-sample",
        type=float,
        default=None,
        help="fraction of chunks the guard replays (default 0.05)",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        help="persist campaign progress to this file so a killed run "
        "can be resumed bit-identically",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume the campaign from --checkpoint instead of starting "
        "fresh",
    )
    parser.add_argument(
        "--stop-after",
        type=int,
        default=None,
        help=f"deterministically stop after N {unit} (testing/CI hook; "
        "requires --checkpoint; exits 3 with a resumable checkpoint)",
    )


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro", description="SDAM reproduction demos"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("demo", help="quickstart system comparison")
    stride = sub.add_parser("stride", help="Fig. 3 stride sweep")
    stride.add_argument("--accesses", type=int, default=16384)
    sub.add_parser("hw", help="AMU/CMT hardware overhead (Table 3)")
    audit = sub.add_parser("audit", help="verify Section 4 correctness")
    audit.add_argument("--mappings", type=int, default=16)
    audit.add_argument("--chunks", type=int, default=32)
    audit.add_argument("--seed", type=int, default=0)
    suite = sub.add_parser("suite", help="Fig. 12-style speedup sweep")
    scope = suite.add_mutually_exclusive_group()
    scope.add_argument(
        "--quick", action="store_true", help="trimmed sweep (default)"
    )
    scope.add_argument(
        "--full", action="store_true", help="complete workload suites"
    )
    suite.add_argument(
        "--workers", type=int, default=0, help="worker processes (0 = serial)"
    )
    suite.add_argument(
        "--cache-dir", default=None, help="persist stage outputs here"
    )
    suite.add_argument(
        "--json", action="store_true", help="emit the full suite result as JSON"
    )
    suite.add_argument(
        "--resume",
        action="store_true",
        help="finish an interrupted sweep (healthy cells served from cache)",
    )
    suite.add_argument(
        "--backend",
        default=None,
        help="memory fidelity tier for every cell "
        "(fast | vector | event; default fast)",
    )
    bench = sub.add_parser(
        "bench", help="translation-datapath microbenchmark (fused vs legacy)"
    )
    bench_mode = bench.add_mutually_exclusive_group()
    bench_mode.add_argument(
        "--online",
        action="store_true",
        help="benchmark the streaming-BFRV estimator instead "
        "(report goes to BENCH_online.json)",
    )
    bench_mode.add_argument(
        "--evaluate",
        action="store_true",
        help="benchmark the end-to-end evaluate stage: chunk-streamed "
        "--backend tier vs the event-loop reference "
        "(report goes to BENCH_evaluate.json)",
    )
    bench_mode.add_argument(
        "--tier",
        action="store_true",
        help="benchmark the tiered-memory backend: SmartSwap placement "
        "vs the all-slow baseline (report goes to BENCH_tier.json)",
    )
    bench.add_argument(
        "--backend",
        default=None,
        help="candidate memory backend for --evaluate (default vector)",
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=0,
        help="channel shards for the --evaluate candidate (0 = in-process)",
    )
    bench.add_argument(
        "--accesses",
        type=int,
        default=None,
        help="trace length (default 1M; 256Ki with --online)",
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--repeats", type=int, default=3, help="timing repeats (min taken)"
    )
    bench.add_argument(
        "--out",
        default=None,
        help="where to write the JSON report (default "
        "BENCH_translation.json, or BENCH_online.json with --online)",
    )
    bench.add_argument(
        "--json", action="store_true", help="also print the report as JSON"
    )
    bench.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail unless the fused translate+decode geomean speedup "
        "reaches this factor (CI gate)",
    )
    verify = sub.add_parser(
        "verify-cache", help="checksum the stage cache, quarantine bad entries"
    )
    verify.add_argument(
        "--cache-dir", default=None, help="cache to verify (default: the Session default)"
    )
    verify.add_argument(
        "--gc", action="store_true", help="also remove tmp debris and orphan sidecars"
    )
    verify.add_argument(
        "--purge-quarantine", action="store_true", help="empty the quarantine directory"
    )
    verify.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    ras = sub.add_parser(
        "ras", help="seeded device-fault inject/detect/repair campaign"
    )
    ras_scope = ras.add_mutually_exclusive_group()
    ras_scope.add_argument(
        "--quick", action="store_true", help="small device, short run (default)"
    )
    ras_scope.add_argument(
        "--full", action="store_true", help="longer campaign, more traffic"
    )
    ras.add_argument("--seed", type=int, default=0)
    ras.add_argument(
        "--kinds",
        default=None,
        help="comma-separated fault kinds (default: row,bank,channel,cmt,amu)",
    )
    ras.add_argument(
        "--out", default=None, help="write the RASReport as JSON here"
    )
    ras.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    ras.add_argument(
        "--backend",
        default=None,
        help="memory fidelity tier both twins run on "
        "(fast | vector | event; default fast)",
    )
    _add_campaign_flags(ras, "fault batches")
    adapt = sub.add_parser(
        "adapt", help="seeded online-adaptation campaign (adaptive vs static)"
    )
    adapt_scope = adapt.add_mutually_exclusive_group()
    adapt_scope.add_argument(
        "--quick", action="store_true", help="short trace, one chunk (default)"
    )
    adapt_scope.add_argument(
        "--full", action="store_true", help="longer trace, multi-chunk buffer"
    )
    adapt.add_argument("--seed", type=int, default=0)
    adapt.add_argument(
        "--window", type=int, default=2048, help="accesses per trace window"
    )
    adapt.add_argument(
        "--out", default=None, help="write the campaign result as JSON here"
    )
    adapt.add_argument(
        "--json", action="store_true", help="print the result as JSON"
    )
    adapt.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail unless adaptive beats the best static mapping by "
        "this factor (CI gate)",
    )
    adapt.add_argument(
        "--backend",
        default=None,
        help="memory fidelity tier windows are scored through "
        "(fast | vector | event; default fast)",
    )
    _add_campaign_flags(adapt, "trace windows")
    tier = sub.add_parser(
        "tier",
        help="tiered-memory campaign: swap policies vs the all-slow "
        "baseline under capacity pressure and hot/cold skew",
    )
    tier_scope = tier.add_mutually_exclusive_group()
    tier_scope.add_argument(
        "--quick", action="store_true", help="small arena, short trace (default)"
    )
    tier_scope.add_argument(
        "--full", action="store_true", help="larger arena, longer trace"
    )
    tier.add_argument("--seed", type=int, default=0)
    tier.add_argument(
        "--policy",
        default=None,
        help="evaluate one swap policy only (fast | slow | smart; "
        "default: all three; the all-slow baseline always runs)",
    )
    tier.add_argument(
        "--out", default=None, help="write the campaign result as JSON here"
    )
    tier.add_argument(
        "--json", action="store_true", help="print the result as JSON"
    )
    serve = sub.add_parser(
        "serve",
        help="multi-tenant service isolation selftest "
        "(solo vs concurrent fingerprints, fault + controller legs)",
    )
    serve.add_argument(
        "--selftest",
        action="store_true",
        help="run the isolation selftest campaign (the only mode; "
        "accepted for forward compatibility)",
    )
    serve_scope = serve.add_mutually_exclusive_group()
    serve_scope.add_argument(
        "--quick", action="store_true", help="small traces (default)"
    )
    serve_scope.add_argument(
        "--full", action="store_true", help="longer traces per tenant"
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--tenants", type=int, default=3, help="tenant count (min 2)"
    )
    serve.add_argument(
        "--no-controllers",
        action="store_true",
        help="skip the per-tenant adaptive/RAS controller leg",
    )
    serve.add_argument(
        "--backend",
        default=None,
        help="memory fidelity tier every tenant runs on "
        "(fast | vector | event | tiered; default vector for the "
        "selftest, fast for --load soak)",
    )
    serve.add_argument(
        "--load",
        type=int,
        default=None,
        metavar="N",
        help="soak mode: admit N tenant lanes and submit round-robin "
        "traffic for --duration seconds (health journal gates the "
        "exit code)",
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=2.0,
        metavar="S",
        help="soak duration in seconds (with --load; default 2)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=8,
        help="per-lane bounded queue depth in soak mode (default 8)",
    )
    serve.add_argument(
        "--fault",
        default=None,
        metavar="SITE",
        help="inject a service.* fault during the soak "
        "(e.g. service.lane.crash)",
    )
    serve.add_argument(
        "--out", default=None, help="write the isolation report as JSON here"
    )
    serve.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    args = parser.parse_args(argv)
    handlers = {
        "demo": cmd_demo,
        "stride": cmd_stride,
        "hw": cmd_hw,
        "audit": cmd_audit,
        "suite": cmd_suite,
        "bench": cmd_bench,
        "verify-cache": cmd_verify_cache,
        "ras": cmd_ras,
        "adapt": cmd_adapt,
        "serve": cmd_serve,
        "tier": cmd_tier,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
