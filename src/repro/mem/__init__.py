"""OS memory-management substrate: buddy, chunks, VM, kernel, malloc."""

from repro.mem.buddy import BuddyAllocator
from repro.mem.kernel import Kernel
from repro.mem.malloc import Allocation, Heap, MappingAwareAllocator
from repro.mem.migration import ChunkMigrator, MigrationReport
from repro.mem.physical import Chunk, ChunkGroup, PhysicalMemory
from repro.mem.virtual import AddressSpace, VMArea

__all__ = [
    "AddressSpace",
    "Allocation",
    "BuddyAllocator",
    "Chunk",
    "ChunkGroup",
    "ChunkMigrator",
    "MigrationReport",
    "Heap",
    "Kernel",
    "MappingAwareAllocator",
    "PhysicalMemory",
    "VMArea",
]
