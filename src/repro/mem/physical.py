"""Physical memory: chunks, chunk groups and the global free list.

Section 6.1's physical page allocator: physical memory is carved into
2 MB chunks; chunks with the same address mapping form a *chunk group*;
a global free list holds unused chunks.  When a group needs memory it
acquires chunks from the free list (notifying the hardware CMT through
a callback), and when a chunk drains empty the buddy allocator coalesces
it back to the free list.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.core.chunks import ChunkGeometry
from repro.errors import AllocationError, OutOfMemoryError
from repro.mem.buddy import BuddyAllocator

__all__ = ["Chunk", "ChunkGroup", "PhysicalMemory"]


@dataclass
class Chunk:
    """One physical chunk with its intra-chunk frame allocator.

    ``rotation_pages`` implements *chunk colouring*: frames are handed
    out starting at a per-mapping rotation inside the chunk, so heaps
    of different mappings do not all begin at chunk offset 0 (which
    would pile every mapping's hottest data into the same DRAM bank).
    """

    number: int
    geometry: ChunkGeometry
    mapping_id: int | None = None
    rotation_pages: int = 0
    frames: BuddyAllocator = field(init=False)
    retired_pages: set[int] = field(init=False, default_factory=set)
    _cursor: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        max_order = (self.geometry.pages_per_chunk - 1).bit_length()
        self.frames = BuddyAllocator(max_order)
        self._cursor = self.rotation_pages % self.geometry.pages_per_chunk

    @property
    def base_pa(self) -> int:
        """First physical address of the chunk."""
        return self.geometry.chunk_base(self.number)

    @property
    def free_pages(self) -> int:
        """Unallocated frames remaining."""
        return self.frames.free_pages

    def alloc_frame(self) -> int:
        """Allocate one frame; returns its physical address.

        Frames are allocated in rotated sequential order from
        ``rotation_pages``, wrapping around the chunk.
        """
        pages = self.geometry.pages_per_chunk
        for _attempt in range(pages):
            candidate = self._cursor
            self._cursor = (self._cursor + 1) % pages
            if self.frames.is_free(candidate):
                offset = self.frames.alloc_at(candidate)
                return self.base_pa + (offset << self.geometry.page_bits)
        raise OutOfMemoryError(f"chunk {self.number} has no free frames")

    def alloc_frames(self, count: int) -> list[int]:
        """Allocate ``count`` frames (not necessarily contiguous)."""
        return [self.alloc_frame() for _ in range(count)]

    def free_frame(self, pa: int) -> None:
        """Free one frame by physical address."""
        offset = (pa - self.base_pa) >> self.geometry.page_bits
        if not 0 <= offset < self.geometry.pages_per_chunk:
            raise AllocationError(f"frame {pa:#x} not in chunk {self.number}")
        self.frames.free(offset)

    @property
    def is_empty(self) -> bool:
        """True when nothing is allocated."""
        return self.frames.is_empty

    # -- RAS: page retirement ---------------------------------------------
    def retire_page(self, page_offset: int) -> None:
        """Permanently take one page out of service.

        The page must be free (relocate live data first); it is pinned
        in the buddy allocator so neither the rotation cursor nor buddy
        coalescing can ever hand it out again.
        """
        if not 0 <= page_offset < self.geometry.pages_per_chunk:
            raise AllocationError(
                f"page {page_offset} outside chunk {self.number}"
            )
        if page_offset in self.retired_pages:
            return
        if not self.frames.is_free(page_offset):
            raise AllocationError(
                f"page {page_offset} of chunk {self.number} is live; "
                "relocate before retiring"
            )
        self.frames.alloc_at(page_offset)
        self.retired_pages.add(page_offset)

    def live_page_offsets(self) -> list[int]:
        """Offsets of data-bearing pages (allocated and not retired)."""
        live: list[int] = []
        for offset, order in self.frames.allocated_blocks().items():
            for page in range(offset, offset + (1 << order)):
                if page not in self.retired_pages:
                    live.append(page)
        return sorted(live)

    @property
    def is_drained(self) -> bool:
        """True when only retired pages remain allocated."""
        return not self.live_page_offsets()


class ChunkGroup:
    """All chunks sharing one address mapping (one access pattern)."""

    def __init__(self, mapping_id: int):
        self.mapping_id = mapping_id
        self.chunks: list[Chunk] = []

    @property
    def free_pages(self) -> int:
        """Unallocated frames remaining."""
        return sum(chunk.free_pages for chunk in self.chunks)

    def chunk_with_space(self, pages: int = 1) -> Chunk | None:
        """First chunk with at least the requested free pages."""
        for chunk in self.chunks:
            if chunk.free_pages >= pages:
                return chunk
        return None

    def add(self, chunk: Chunk) -> None:
        """Attach a chunk to this group."""
        chunk.mapping_id = self.mapping_id
        self.chunks.append(chunk)

    def remove(self, chunk: Chunk) -> None:
        """Detach a chunk from this group."""
        self.chunks.remove(chunk)
        chunk.mapping_id = None


class PhysicalMemory:
    """The machine's physical memory, managed at chunk granularity.

    ``on_chunk_assigned(chunk_no, mapping_id)`` and
    ``on_chunk_released(chunk_no)`` callbacks let the kernel program the
    hardware CMT exactly when the paper's driver would.
    """

    def __init__(
        self,
        geometry: ChunkGeometry,
        on_chunk_assigned: Callable[[int, int], None] | None = None,
        on_chunk_released: Callable[[int], None] | None = None,
        chunk_colours: int = 8,
    ):
        if chunk_colours < 1:
            raise AllocationError("need at least one chunk colour")
        self.geometry = geometry
        self.chunk_colours = chunk_colours
        self._free_chunks: deque[int] = deque(range(geometry.num_chunks))
        self._chunks: dict[int, Chunk] = {}
        self._groups: dict[int, ChunkGroup] = {}
        self._frame_owner: dict[int, int] = {}  # frame PA -> chunk number
        self._retired_chunks: set[int] = set()
        self.on_chunk_assigned = on_chunk_assigned
        self.on_chunk_released = on_chunk_released
        # RAS: invoked on every freshly acquired chunk, before any frame
        # is handed out — lets a degraded machine retire unusable pages
        # in chunks that were still on the free list at repair time.
        self.new_chunk_hook: Callable[[Chunk], None] | None = None
        # Tiering: invoked with the device-global page number of every
        # newly retired page, so a tiered backend can pin it to the slow
        # tier instead of shrinking fast capacity.
        self.on_page_retired: Callable[[int], None] | None = None
        self.chunks_acquired = 0
        self.chunks_released = 0
        self.pages_retired = 0

    # -- chunk-level operations ------------------------------------------
    @property
    def free_chunk_count(self) -> int:
        """Chunks on the global free list."""
        return len(self._free_chunks)

    def group(self, mapping_id: int) -> ChunkGroup:
        """The chunk group for a mapping id (created on demand)."""
        if mapping_id not in self._groups:
            self._groups[mapping_id] = ChunkGroup(mapping_id)
        return self._groups[mapping_id]

    def acquire_chunk(self, mapping_id: int) -> Chunk:
        """Move a chunk from the global free list into a mapping group."""
        if not self._free_chunks:
            raise OutOfMemoryError("no free chunks")
        number = self._free_chunks.popleft()
        # Chunk colouring: stagger each mapping's first frames so that
        # different mappings' hot leading pages land in different banks.
        rotation = (mapping_id % self.chunk_colours) * (
            self.geometry.pages_per_chunk // self.chunk_colours
        )
        chunk = Chunk(
            number=number, geometry=self.geometry, rotation_pages=rotation
        )
        self._chunks[number] = chunk
        self.group(mapping_id).add(chunk)
        self.chunks_acquired += 1
        if self.on_chunk_assigned is not None:
            self.on_chunk_assigned(number, mapping_id)
        if self.new_chunk_hook is not None:
            self.new_chunk_hook(chunk)
        return chunk

    def release_chunk(self, chunk: Chunk) -> None:
        """Return an empty chunk to the global free list."""
        if not chunk.is_empty:
            raise AllocationError(
                f"chunk {chunk.number} still has allocated frames"
            )
        if chunk.mapping_id is not None:
            self.group(chunk.mapping_id).remove(chunk)
        del self._chunks[chunk.number]
        self._free_chunks.append(chunk.number)
        self.chunks_released += 1
        if self.on_chunk_released is not None:
            self.on_chunk_released(chunk.number)

    # -- frame-level operations --------------------------------------------
    def alloc_frame(self, mapping_id: int) -> int:
        """Allocate one physical frame with the given address mapping."""
        group = self.group(mapping_id)
        chunk = group.chunk_with_space()
        if chunk is None:
            chunk = self.acquire_chunk(mapping_id)
        pa = chunk.alloc_frame()
        self._frame_owner[pa] = chunk.number
        return pa

    def alloc_frames(self, count: int, mapping_id: int) -> list[int]:
        """Allocate several frames with one mapping."""
        return [self.alloc_frame(mapping_id) for _ in range(count)]

    def free_frame(self, pa: int) -> None:
        """Free a frame; empty chunks coalesce back to the free list."""
        try:
            chunk_no = self._frame_owner.pop(pa)
        except KeyError:
            raise AllocationError(f"frame {pa:#x} was not allocated")
        chunk = self._chunks[chunk_no]
        chunk.free_frame(pa)
        if chunk.is_empty:
            self.release_chunk(chunk)

    # -- RAS: retirement -------------------------------------------------------
    def _notify_retired(self, chunk_no: int, page_offsets) -> None:
        """Fan newly retired pages out to the tiering hook (global ids)."""
        if self.on_page_retired is None:
            return
        base = chunk_no * self.geometry.pages_per_chunk
        for offset in page_offsets:
            self.on_page_retired(base + int(offset))

    def discard_frame(self, pa: int, retire: bool = True) -> None:
        """Drop a frame and (by default) retire its page in place.

        Unlike :meth:`free_frame` the chunk is never auto-released to
        the free list — the page transitions allocated -> retired
        atomically, which is what page relocation off a faulty row
        needs.
        """
        try:
            chunk_no = self._frame_owner.pop(pa)
        except KeyError:
            raise AllocationError(f"frame {pa:#x} was not allocated")
        chunk = self._chunks[chunk_no]
        chunk.free_frame(pa)
        if retire:
            offset = (pa - chunk.base_pa) >> self.geometry.page_bits
            chunk.retire_page(offset)
            self.pages_retired += 1
            self._notify_retired(chunk_no, (offset,))
        elif chunk.is_empty:
            self.release_chunk(chunk)

    def retire_pages(self, chunk_no: int, page_offsets) -> int:
        """Retire free pages of a live chunk; returns how many were new.

        Live (data-bearing) pages raise — the caller relocates them
        first — and already-retired pages are skipped.
        """
        chunk = self._chunks.get(chunk_no)
        if chunk is None:
            raise AllocationError(f"chunk {chunk_no} is not live")
        newly = 0
        fresh: list[int] = []
        for offset in page_offsets:
            if int(offset) in chunk.retired_pages:
                continue
            chunk.retire_page(int(offset))
            fresh.append(int(offset))
            newly += 1
        self.pages_retired += newly
        self._notify_retired(chunk_no, fresh)
        return newly

    def retire_chunk(self, chunk_no: int) -> None:
        """Permanently remove a whole chunk from service.

        Free-list chunks are unlinked from the free list; live chunks
        must be drained of data first (retired pages may remain), and
        are detached from their group without returning to the free
        list.
        """
        if chunk_no in self._retired_chunks:
            return
        try:
            self._free_chunks.remove(chunk_no)
        except ValueError:
            chunk = self._chunks.get(chunk_no)
            if chunk is None:
                raise AllocationError(f"chunk {chunk_no} does not exist")
            if not chunk.is_drained:
                raise AllocationError(
                    f"chunk {chunk_no} still holds live data; "
                    "relocate before retiring"
                )
            for pa in [
                pa
                for pa, owner in self._frame_owner.items()
                if owner == chunk_no
            ]:
                del self._frame_owner[pa]
            if chunk.mapping_id is not None:
                self.group(chunk.mapping_id).remove(chunk)
            del self._chunks[chunk_no]
            self.pages_retired += self.geometry.pages_per_chunk - len(
                chunk.retired_pages
            )
            self._notify_retired(
                chunk_no,
                (
                    offset
                    for offset in range(self.geometry.pages_per_chunk)
                    if offset not in chunk.retired_pages
                ),
            )
        else:
            self.pages_retired += self.geometry.pages_per_chunk
            self._notify_retired(
                chunk_no, range(self.geometry.pages_per_chunk)
            )
        self._retired_chunks.add(chunk_no)

    @property
    def retired_chunks(self) -> set[int]:
        """Chunk numbers permanently out of service."""
        return set(self._retired_chunks)

    def chunk(self, chunk_no: int) -> Chunk | None:
        """The live chunk object for a chunk number, if any."""
        return self._chunks.get(chunk_no)

    def live_chunks(self) -> list[Chunk]:
        """All chunks currently assigned to a group."""
        return [self._chunks[number] for number in sorted(self._chunks)]

    # -- accounting -----------------------------------------------------------
    def frames_in_use(self) -> int:
        """Allocated frames across all chunks."""
        return len(self._frame_owner)

    def internal_fragmentation_pages(self) -> int:
        """Free pages stranded inside partially used chunks.

        The Section 4 bound: at most one partially-filled chunk per
        mapping (access pattern), so waste is bounded by the number of
        patterns, not the number of chunks.
        """
        return sum(
            chunk.free_pages for chunk in self._chunks.values()
        )

    def mapping_of_chunk(self, chunk_no: int) -> int | None:
        """Mapping id owning a chunk, or None if free."""
        chunk = self._chunks.get(chunk_no)
        return None if chunk is None else chunk.mapping_id

    def live_groups(self) -> dict[int, int]:
        """{mapping_id: chunk count} for groups that hold chunks."""
        return {
            mapping_id: len(group.chunks)
            for mapping_id, group in self._groups.items()
            if group.chunks
        }
