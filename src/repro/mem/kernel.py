"""The kernel substrate: syscalls gluing VM, physical chunks and the CMT.

Models the paper's Linux modifications (Table 4): the mapping-id
argument threaded through ``mmap()``, the chunk-aware physical page
allocator invoked from the page-fault handler, and the driver that
writes chunk/mapping bindings into the hardware CMT.

When constructed without an :class:`~repro.core.sdam.SDAMController`
the kernel behaves like the baseline systems: the mapping-id argument
is accepted (the ABI is unchanged) but every allocation lands in one
global chunk group and no CMT writes happen.
"""

from __future__ import annotations

import numpy as np

from repro.core.chunks import ChunkGeometry
from repro.core.mapping import PermutationMapping, identity_mapping
from repro.core.sdam import (
    AddressTranslator,
    GlobalMappingTranslator,
    SDAMController,
)
from repro.errors import ProfilingError
from repro.mem.physical import PhysicalMemory
from repro.mem.virtual import AddressSpace, VMArea

__all__ = ["Kernel"]


class Kernel:
    """Minimal OS: processes, physical memory, SDAM control plane."""

    def __init__(
        self,
        geometry: ChunkGeometry,
        sdam: SDAMController | None = None,
        chunk_colours: int = 8,
    ):
        self.geometry = geometry
        self.sdam = sdam
        self.physical = PhysicalMemory(
            geometry,
            on_chunk_assigned=self._chunk_assigned,
            on_chunk_released=self._chunk_released,
            chunk_colours=chunk_colours,
        )
        self._spaces: dict[int, AddressSpace] = {}
        self._next_pid = 1
        # mapping-id 0 is the boot default (identity), always present.
        self._registered_mappings: dict[int, int] = {0: 0}
        self._identity_translator: GlobalMappingTranslator | None = None

    @property
    def sdam_enabled(self) -> bool:
        """True when an SDAM controller is attached."""
        return self.sdam is not None

    # -- CMT driver (Table 4's "Driver" rows) ------------------------------
    def _chunk_assigned(self, chunk_no: int, mapping_id: int) -> None:
        if self.sdam is not None:
            self.sdam.assign_chunk(chunk_no, self._registered_mappings[mapping_id])

    def _chunk_released(self, chunk_no: int) -> None:
        if self.sdam is not None:
            self.sdam.release_chunk(chunk_no)

    # -- mapping registration (the add_addr_map() syscall backend) ----------
    def add_addr_map(self, mapping, namespace: str | None = None) -> int:
        """Register an address mapping; returns its mapping id.

        ``mapping`` is a window permutation (array-like) or a full-width
        :class:`PermutationMapping` restricted to the chunk window.  On a
        baseline kernel the id is accepted but aliases the default.
        With ``namespace`` set (the multi-tenant service), the intern is
        charged against that tenant's slice of the mapping budget.
        """
        if self.sdam is None:
            return 0
        hardware_index = self.sdam.register_mapping(mapping, namespace=namespace)
        # Software mapping ids mirror the hardware table indices 1:1.
        self._registered_mappings[hardware_index] = hardware_index
        return hardware_index

    def registered_mapping_ids(self) -> list[int]:
        """Mapping ids registered via add_addr_map."""
        return sorted(self._registered_mappings)

    def hardware_index_of(self, mapping_id: int) -> int:
        """CMT index currently backing a software mapping id."""
        return self._registered_mappings[mapping_id]

    def rebind_mapping(self, mapping_id: int, hardware_index: int) -> None:
        """Point a software mapping id at a different CMT index.

        The RAS repair path uses this after composing a replacement
        permutation: existing VMAs keep their mapping id, but chunks
        acquired from now on are programmed with the healed mapping.
        """
        if self.sdam is None:
            raise ProfilingError("mapping rebind requires SDAM")
        if mapping_id not in self._registered_mappings:
            raise ProfilingError(
                f"mapping id {mapping_id} was never registered"
            )
        if not 0 <= hardware_index < self.sdam.cmt.live_mappings:
            raise ProfilingError(
                f"hardware index {hardware_index} is not interned"
            )
        self._registered_mappings[mapping_id] = hardware_index

    def full_mapping(self, mapping_id: int) -> PermutationMapping | None:
        """Full-width permutation behind a mapping id (None on baseline)."""
        if self.sdam is None:
            return None
        return self.sdam.full_mapping(self._registered_mappings[mapping_id])

    # -- processes -----------------------------------------------------------
    def spawn(self) -> AddressSpace:
        """Create a process address space wired to the fault handler."""
        pid = self._next_pid
        self._next_pid += 1
        space = AddressSpace(
            page_bytes=self.geometry.page_bytes,
            fault_handler=self._handle_fault,
            pid=pid,
        )
        self._spaces[pid] = space
        return space

    def _handle_fault(self, mapping_id: int) -> int:
        """Page-fault handler: allocate a frame from the right group."""
        effective = mapping_id if self.sdam is not None else 0
        if effective not in self._registered_mappings:
            raise ProfilingError(
                f"mapping id {mapping_id} was never registered via add_addr_map"
            )
        return self.physical.alloc_frame(effective)

    @property
    def spaces(self) -> list[AddressSpace]:
        """All live process address spaces."""
        return list(self._spaces.values())

    # -- RAS: page relocation ------------------------------------------------
    def relocate_frame(self, frame_pa: int) -> int | None:
        """Move a live frame off its page and retire the old page.

        Allocates a replacement frame in the same mapping group,
        switches the owning PTE, then atomically frees-and-retires the
        old page (never returning it to the allocator).  Returns the
        new frame's PA, or None if the frame was allocated but mapped
        by no process (it is then just discarded).  The caller copies
        the data — the kernel model holds no contents.
        """
        chunk_no = self.physical._frame_owner.get(frame_pa)
        if chunk_no is None:
            raise ProfilingError(f"frame {frame_pa:#x} is not allocated")
        chunk = self.physical.chunk(chunk_no)
        mapping_id = chunk.mapping_id if chunk is not None else 0
        owner = None
        vpn = None
        for space in self._spaces.values():
            vpn = space.vpn_of_frame(frame_pa)
            if vpn is not None:
                owner = space
                break
        if owner is None:
            self.physical.discard_frame(frame_pa, retire=True)
            return None
        new_pa = self.physical.alloc_frame(
            mapping_id if mapping_id is not None else 0
        )
        owner.remap(vpn, new_pa)
        self.physical.discard_frame(frame_pa, retire=True)
        return new_pa

    # -- syscalls ---------------------------------------------------------------
    def sys_mmap(
        self,
        space: AddressSpace,
        length: int,
        mapping_id: int = 0,
        name: str = "",
    ) -> VMArea:
        """mmap with the paper's extra mapping-id argument."""
        effective = mapping_id if self.sdam is not None else 0
        if effective not in self._registered_mappings:
            raise ProfilingError(
                f"mapping id {mapping_id} was never registered via add_addr_map"
            )
        return space.mmap(length, mapping_id=effective, name=name)

    def sys_munmap(self, space: AddressSpace, vma: VMArea) -> None:
        """Tear down a mapping, freeing its frames."""
        space.munmap(vma, free_frame=self.physical.free_frame)

    # -- full translation pipeline ------------------------------------------
    @property
    def address_translator(self) -> AddressTranslator:
        """The PA-to-HA translator this kernel drives.

        The SDAM controller when one is attached, else the boot-time
        identity — either way an object the fused datapath
        (:func:`repro.hbm.decode.decode_translated`) can consume.
        """
        if self.sdam is not None:
            return self.sdam
        if self._identity_translator is None:
            self._identity_translator = GlobalMappingTranslator(
                identity_mapping(self.geometry.address_bits)
            )
        return self._identity_translator

    def translate_to_hardware(
        self, space: AddressSpace, va: np.ndarray
    ) -> np.ndarray:
        """VA -> PA (page table) -> HA (SDAM or identity).

        The legacy two-step path: it materialises the HA array.  The
        machine's evaluate stage instead feeds ``space.translate_trace``
        output and :attr:`address_translator` to the fused decoder.
        """
        pa = space.translate_trace(va)
        if self.sdam is None:
            return pa
        return self.sdam.translate(pa)
