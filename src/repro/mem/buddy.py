"""Binary buddy allocator over a power-of-two array of pages.

Used at two levels, mirroring the paper's modified Linux: inside each
chunk to hand out physical frames (so a chunk can serve many small
mmaps), and conceptually at the chunk level — when every block in a
chunk is free again, the chunk coalesces back to the global free list
(Section 6.1, "we rely on the original Linux buddy allocator to free
the chunks").
"""

from __future__ import annotations

from repro.errors import AllocationError, OutOfMemoryError

__all__ = ["BuddyAllocator"]


class BuddyAllocator:
    """Classic binary buddy over ``2**max_order`` pages."""

    def __init__(self, max_order: int):
        if max_order < 0:
            raise AllocationError("max_order must be >= 0")
        self.max_order = max_order
        self.total_pages = 1 << max_order
        # free_lists[order] = set of block offsets (in pages)
        self._free_lists: list[set[int]] = [set() for _ in range(max_order + 1)]
        self._free_lists[max_order].add(0)
        self._allocated: dict[int, int] = {}  # offset -> order
        self.free_pages = self.total_pages

    @staticmethod
    def order_for(pages: int) -> int:
        """Smallest order whose block holds ``pages`` pages."""
        if pages <= 0:
            raise AllocationError("cannot size a block for <= 0 pages")
        return max(0, (pages - 1).bit_length())

    def alloc(self, order: int) -> int:
        """Allocate a block of ``2**order`` pages; returns page offset."""
        if order > self.max_order:
            raise OutOfMemoryError(
                f"order {order} exceeds allocator max {self.max_order}"
            )
        current = order
        while current <= self.max_order and not self._free_lists[current]:
            current += 1
        if current > self.max_order:
            raise OutOfMemoryError(f"no free block of order {order}")
        offset = self._free_lists[current].pop()
        while current > order:  # split down, freeing the upper buddy
            current -= 1
            buddy = offset + (1 << current)
            self._free_lists[current].add(buddy)
        self._allocated[offset] = order
        self.free_pages -= 1 << order
        return offset

    def alloc_pages(self, pages: int) -> int:
        """Allocate the smallest block covering ``pages`` pages."""
        return self.alloc(self.order_for(pages))

    def alloc_at(self, offset: int, order: int = 0) -> int:
        """Allocate the block of ``2**order`` pages at exactly ``offset``.

        Splits a containing free block down to the target.  Raises
        :class:`OutOfMemoryError` if the target is (partly) in use.
        Used by chunk colouring: the physical allocator starts each
        mapping's frames at a different rotation inside the chunk.
        """
        if order > self.max_order:
            raise OutOfMemoryError(f"order {order} exceeds max {self.max_order}")
        if offset % (1 << order):
            raise AllocationError(f"offset {offset} not aligned to order {order}")
        current = order
        while current <= self.max_order:
            candidate = offset & ~((1 << current) - 1)
            if candidate in self._free_lists[current]:
                break
            current += 1
        else:
            raise OutOfMemoryError(f"page {offset} is not free")
        self._free_lists[current].remove(candidate)
        while current > order:
            current -= 1
            half = 1 << current
            if offset & half:
                self._free_lists[current].add(candidate)
                candidate += half
            else:
                self._free_lists[current].add(candidate + half)
        self._allocated[offset] = order
        self.free_pages -= 1 << order
        return offset

    def is_free(self, offset: int, order: int = 0) -> bool:
        """True if the aligned block at ``offset`` is entirely free."""
        current = order
        while current <= self.max_order:
            candidate = offset & ~((1 << current) - 1)
            if candidate in self._free_lists[current]:
                return True
            current += 1
        return False

    def free(self, offset: int) -> None:
        """Free a previously allocated block, coalescing buddies."""
        try:
            order = self._allocated.pop(offset)
        except KeyError:
            raise AllocationError(f"block at page {offset} is not allocated")
        self.free_pages += 1 << order
        while order < self.max_order:
            buddy = offset ^ (1 << order)
            if buddy not in self._free_lists[order]:
                break
            self._free_lists[order].remove(buddy)
            offset = min(offset, buddy)
            order += 1
        self._free_lists[order].add(offset)

    @property
    def is_empty(self) -> bool:
        """True when nothing is allocated (the whole region is one block)."""
        return not self._allocated

    def allocated_blocks(self) -> dict[int, int]:
        """Snapshot of live allocations: {page offset: order}."""
        return dict(self._allocated)

    def largest_free_order(self) -> int:
        """Largest order with a free block, or -1 if full."""
        for order in range(self.max_order, -1, -1):
            if self._free_lists[order]:
                return order
        return -1
