"""Chunk remapping and live migration.

Section 4: the OS "maintains pools of memory for each address mapping,
and only reconfigures when memory is reclaimed or more memory with a
specific mapping is requested".  Reconfiguring a *free* chunk is a pure
CMT write; reconfiguring a chunk with live data additionally requires
physically moving every allocated line from its old hardware location
to the one the new mapping assigns — the cost this module models, so
policies can decide when a remap amortises.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AllocationError, CMTError, ReproError
from repro.hbm.config import HBMConfig, hbm2_config
from repro.hbm.fastmodel import WindowModel
from repro.mem.kernel import Kernel

__all__ = ["MigrationReport", "ChunkMigrator"]


@dataclass(frozen=True)
class MigrationReport:
    """Outcome of one chunk migration."""

    chunk_no: int
    old_mapping: int
    new_mapping: int
    lines_copied: int
    cost_ns: float

    @property
    def cost_us(self) -> float:
        """Copy cost in microseconds."""
        return self.cost_ns / 1e3


class ChunkMigrator:
    """Remaps chunks, moving live data when necessary."""

    def __init__(self, kernel: Kernel, hbm: HBMConfig | None = None):
        if kernel.sdam is None:
            raise CMTError("migration requires an SDAM-enabled kernel")
        self.kernel = kernel
        self.hbm = hbm or hbm2_config()
        self._model = WindowModel(self.hbm, max_inflight=64)

    # -- free chunks: reconfiguration is a table write ---------------------
    def remap_free_capacity(self, mapping_id: int, chunks: int = 1) -> int:
        """Pull chunks from the global free list into a mapping's group.

        Free chunks carry no data, so this is the cheap path the paper
        prefers: acquire + one CMT write each.  Returns the number of
        chunks acquired.
        """
        acquired = 0
        for _ in range(chunks):
            if self.kernel.physical.free_chunk_count == 0:
                break
            self.kernel.physical.acquire_chunk(mapping_id)
            acquired += 1
        return acquired

    # -- live chunks: data must move -----------------------------------------
    def _allocated_lines(self, chunk) -> np.ndarray:
        """PAs of every live (data-bearing) cache line in the chunk.

        Retired pages are pinned in the buddy allocator but carry no
        data, so they are excluded from the copy.
        """
        geometry = self.kernel.geometry
        lines_per_page = geometry.page_bytes // geometry.line_bytes
        pages = chunk.live_page_offsets()
        if not pages:
            return np.zeros(0, dtype=np.uint64)
        offsets = []
        for page in pages:
            start = page * lines_per_page
            offsets.append(
                np.arange(start, start + lines_per_page, dtype=np.uint64)
            )
        line_index = np.concatenate(offsets)
        return np.uint64(chunk.base_pa) + line_index * np.uint64(
            geometry.line_bytes
        )

    def migrate_chunk(
        self,
        chunk_no: int,
        new_mapping_id: int,
        on_copy=None,
    ) -> MigrationReport:
        """Switch a live chunk to a new mapping, copying its data.

        Every allocated line is read through the old mapping and
        written through the new one (the HA locations differ), after
        which the CMT entry flips.  The returned report carries the
        simulated copy cost so callers can weigh it against expected
        future bandwidth gains.

        ``on_copy(pa_lines, read_has, write_has)``, when given, performs
        the actual data movement (the RAS layer moves modeled device
        contents through it).  If it raises a library error
        (:class:`~repro.errors.ReproError`) or an :class:`OSError`, the
        CMT entry is rolled back to the old mapping before the exception
        propagates, so a failed mid-copy migration never leaves the
        chunk half-switched.  Programming errors (``TypeError``...)
        propagate as-is — they indicate a bug, not a copy fault, and
        masking them behind a tidy rollback would hide the real state.
        """
        sdam = self.kernel.sdam
        physical = self.kernel.physical
        chunk = physical._chunks.get(chunk_no)
        if chunk is None:
            raise AllocationError(f"chunk {chunk_no} is not live")
        old_index = sdam.cmt.mapping_index_of(chunk_no)
        if new_mapping_id == old_index:
            return MigrationReport(chunk_no, old_index, new_mapping_id, 0, 0.0)
        pa_lines = self._allocated_lines(chunk)
        if pa_lines.size:
            reads = sdam.translate(pa_lines)  # HAs under the old mapping
            sdam.assign_chunk(chunk_no, new_mapping_id)
            try:
                writes = sdam.translate(pa_lines)  # HAs under the new mapping
                if on_copy is not None:
                    on_copy(pa_lines, reads, writes)
                copy_trace = np.stack([reads, writes], axis=1).reshape(-1)
                cost = self._model.simulate(copy_trace).makespan_ns
            except (ReproError, OSError):
                sdam.assign_chunk(chunk_no, old_index)
                raise
        else:
            sdam.assign_chunk(chunk_no, new_mapping_id)
            cost = 0.0
        # Keep the software-side group bookkeeping consistent.
        if chunk.mapping_id is not None and chunk.mapping_id != new_mapping_id:
            physical.group(chunk.mapping_id).remove(chunk)
            physical.group(new_mapping_id).add(chunk)
        return MigrationReport(
            chunk_no=chunk_no,
            old_mapping=old_index,
            new_mapping=new_mapping_id,
            lines_copied=int(pa_lines.size),
            cost_ns=float(cost),
        )

    def migrate_group(
        self, old_mapping_id: int, new_mapping_id: int
    ) -> list[MigrationReport]:
        """Move every chunk of one mapping group to another mapping."""
        group = self.kernel.physical.group(old_mapping_id)
        reports = []
        for chunk in list(group.chunks):
            reports.append(self.migrate_chunk(chunk.number, new_mapping_id))
        return reports

    def amortises_over(
        self,
        report: MigrationReport,
        expected_accesses: int,
        old_ns_per_access: float,
        new_ns_per_access: float,
    ) -> bool:
        """Will the remap pay for itself over the expected accesses?"""
        saving = expected_accesses * (old_ns_per_access - new_ns_per_access)
        return saving > report.cost_ns
