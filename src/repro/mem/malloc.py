"""Mapping-aware user-space allocator (the modified glibc malloc).

Section 6.1: malloc gains an optional address-mapping-id argument; each
heap is associated with exactly one mapping, a heap-mapping array tracks
the heaps per mapping, and allocation inside a heap uses the standard
first-fit free-list machinery.  Because heaps are page-aligned and
allocate/free independently, every page holds data of a single mapping —
the invariant the chunk allocator depends on.

``malloc`` also records an *allocation tag* (the variable / allocation
site), standing in for the paper's call-stack matching: the profiler
uses it to split traces per variable.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass

from repro.errors import AllocationError, OutOfMemoryError
from repro.mem.kernel import Kernel
from repro.mem.virtual import AddressSpace, VMArea

__all__ = ["Allocation", "Heap", "MappingAwareAllocator"]

ALIGNMENT = 16
DEFAULT_HEAP_BYTES = 4 * 1024 * 1024  # glibc's HEAP_MAX_SIZE ballpark


def _align_up(value: int, alignment: int = ALIGNMENT) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


@dataclass(frozen=True)
class Allocation:
    """One live malloc'ed object."""

    va: int
    size: int
    mapping_id: int
    tag: str


class Heap:
    """One mapping's heap: a VMA plus a first-fit free list."""

    def __init__(self, vma: VMArea, mapping_id: int):
        self.vma = vma
        self.mapping_id = mapping_id
        # Free list: sorted (offset, size) tuples, coalesced.
        self._free: list[tuple[int, int]] = [(0, vma.length)]
        self._allocated: dict[int, int] = {}  # offset -> size

    @property
    def base(self) -> int:
        """The heap's ``ar_ptr``."""
        return self.vma.start

    @property
    def size(self) -> int:
        """Heap length in bytes."""
        return self.vma.length

    def __contains__(self, va: int) -> bool:
        return self.vma.start <= va < self.vma.end

    @property
    def free_bytes(self) -> int:
        """Total free bytes across the free list."""
        return sum(size for _offset, size in self._free)

    def largest_free_block(self) -> int:
        """Largest single free block, in bytes."""
        return max((size for _offset, size in self._free), default=0)

    @property
    def is_empty(self) -> bool:
        """True when nothing is allocated."""
        return not self._allocated

    def alloc(self, size: int) -> int | None:
        """First-fit allocate; returns VA or None if nothing fits."""
        need = _align_up(max(size, 1))
        for position, (offset, block) in enumerate(self._free):
            if block >= need:
                remainder = block - need
                if remainder:
                    self._free[position] = (offset + need, remainder)
                else:
                    del self._free[position]
                self._allocated[offset] = need
                return self.base + offset
        return None

    def free(self, va: int) -> int:
        """Free a block; returns its size.  Coalesces neighbours."""
        offset = va - self.base
        try:
            size = self._allocated.pop(offset)
        except KeyError:
            raise AllocationError(f"double or invalid free at {va:#x}")
        insort(self._free, (offset, size))
        self._coalesce()
        return size

    def _coalesce(self) -> None:
        merged: list[tuple[int, int]] = []
        for offset, size in self._free:
            if merged and merged[-1][0] + merged[-1][1] == offset:
                last_offset, last_size = merged[-1]
                merged[-1] = (last_offset, last_size + size)
            else:
                merged.append((offset, size))
        self._free = merged


class MappingAwareAllocator:
    """The modified ``malloc``/``free`` with per-mapping heaps."""

    def __init__(self, kernel: Kernel, space: AddressSpace):
        self.kernel = kernel
        self.space = space
        # The heap-mapping array (Fig. 8): mapping id -> its heaps.
        self._heaps_by_mapping: dict[int, list[Heap]] = {}
        self._allocations: dict[int, Allocation] = {}
        self.bytes_live = 0
        self.malloc_calls = 0
        self.free_calls = 0

    # -- API additions from the paper --------------------------------------
    def add_addr_map(self, mapping) -> int:
        """Register a new address mapping; returns its id (Section 6.1)."""
        return self.kernel.add_addr_map(mapping)

    # -- malloc / free ---------------------------------------------------------
    def malloc(self, size: int, mapping_id: int = 0, tag: str = "") -> int:
        """Allocate ``size`` bytes from a heap with the desired mapping."""
        if size <= 0:
            raise AllocationError("malloc size must be positive")
        self.malloc_calls += 1
        heaps = self._heaps_by_mapping.setdefault(mapping_id, [])
        for heap in heaps:
            va = heap.alloc(size)
            if va is not None:
                break
        else:
            heap = self._grow(mapping_id, size)
            va = heap.alloc(size)
            if va is None:  # pragma: no cover - fresh heap always fits
                raise OutOfMemoryError("fresh heap could not satisfy request")
        allocation = Allocation(va=va, size=size, mapping_id=mapping_id, tag=tag)
        self._allocations[va] = allocation
        self.bytes_live += size
        return va

    def _grow(self, mapping_id: int, size: int) -> Heap:
        """Create a new heap for a mapping (mmap with mapping id)."""
        length = max(DEFAULT_HEAP_BYTES, _align_up(size, ALIGNMENT))
        vma = self.kernel.sys_mmap(
            self.space, length, mapping_id=mapping_id, name=f"heap:{mapping_id}"
        )
        heap = Heap(vma, mapping_id)
        self._heaps_by_mapping[mapping_id].append(heap)
        return heap

    def free(self, va: int) -> None:
        """Free: locate the owning heap by base/size, then release."""
        self.free_calls += 1
        allocation = self._allocations.pop(va, None)
        if allocation is None:
            raise AllocationError(f"free of unallocated pointer {va:#x}")
        heap = self._find_heap(va, allocation.mapping_id)
        heap.free(va)
        self.bytes_live -= allocation.size

    def _find_heap(self, va: int, mapping_id: int) -> Heap:
        for heap in self._heaps_by_mapping.get(mapping_id, []):
            if va in heap:
                return heap
        raise AllocationError(f"pointer {va:#x} belongs to no heap")

    def trim(self) -> int:
        """munmap empty heaps; returns the number released."""
        released = 0
        for mapping_id, heaps in self._heaps_by_mapping.items():
            keep: list[Heap] = []
            for heap in heaps:
                if heap.is_empty:
                    self.kernel.sys_munmap(self.space, heap.vma)
                    released += 1
                else:
                    keep.append(heap)
            self._heaps_by_mapping[mapping_id] = keep
        return released

    # -- profiling hooks ----------------------------------------------------
    def allocation_of(self, va: int) -> Allocation:
        """The allocation containing ``va`` (not just its base)."""
        exact = self._allocations.get(va)
        if exact is not None:
            return exact
        for allocation in self._allocations.values():
            if allocation.va <= va < allocation.va + allocation.size:
                return allocation
        raise AllocationError(f"no live allocation contains {va:#x}")

    def live_allocations(self) -> list[Allocation]:
        """All live allocations."""
        return list(self._allocations.values())

    def heaps(self) -> list[Heap]:
        """Every heap across all mappings."""
        return [
            heap
            for heaps in self._heaps_by_mapping.values()
            for heap in heaps
        ]
