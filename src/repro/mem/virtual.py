"""Per-process virtual memory: VMAs, page table, on-demand paging.

The paper stores the address-mapping id in ``vm_area_struct`` and moves
chunk-aware frame allocation into the page-fault handler (Section 6.1);
:class:`AddressSpace` models exactly that.  VA-to-PA translation is
untouched by SDAM — a normal page table — which is what guarantees
functional correctness (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import AddressError, AllocationError

__all__ = ["VMArea", "AddressSpace"]

# Virtual address space starts well above zero so a null pointer faults.
VA_BASE = 0x0000_1000_0000
VA_LIMIT = 1 << 47


@dataclass
class VMArea:
    """A ``vm_area_struct``: one mmap'ed region with its mapping id."""

    start: int
    end: int
    mapping_id: int
    name: str = ""
    faults: int = field(default=0)

    def __contains__(self, va: int) -> bool:
        return self.start <= va < self.end

    @property
    def length(self) -> int:
        """Region length in bytes."""
        return self.end - self.start


class AddressSpace:
    """One process's virtual address space.

    ``fault_handler(mapping_id) -> frame_pa`` is supplied by the kernel;
    it is invoked on first touch of each page (on-demand paging).
    """

    def __init__(
        self,
        page_bytes: int,
        fault_handler: Callable[[int], int],
        pid: int = 0,
    ):
        if page_bytes <= 0 or page_bytes & (page_bytes - 1):
            raise AllocationError("page size must be a power of two")
        self.page_bytes = page_bytes
        self.page_bits = page_bytes.bit_length() - 1
        self.pid = pid
        self._fault_handler = fault_handler
        self._vmas: list[VMArea] = []
        self._page_table: dict[int, int] = {}  # vpn -> frame PA
        self._next_va = VA_BASE
        self.total_faults = 0

    # -- VMA management -----------------------------------------------------
    def mmap(self, length: int, mapping_id: int = 0, name: str = "") -> VMArea:
        """Create an anonymous mapping; pages populate on first touch."""
        if length <= 0:
            raise AllocationError("mmap length must be positive")
        pages = -(-length // self.page_bytes)
        start = self._next_va
        end = start + pages * self.page_bytes
        if end > VA_LIMIT:
            raise AllocationError("virtual address space exhausted")
        self._next_va = end + self.page_bytes  # guard page between VMAs
        vma = VMArea(start=start, end=end, mapping_id=mapping_id, name=name)
        self._vmas.append(vma)
        return vma

    def munmap(self, vma: VMArea, free_frame: Callable[[int], None]) -> None:
        """Tear down a mapping, freeing any populated frames."""
        if vma not in self._vmas:
            raise AddressError("VMA does not belong to this address space")
        first_vpn = vma.start >> self.page_bits
        last_vpn = (vma.end - 1) >> self.page_bits
        for vpn in range(first_vpn, last_vpn + 1):
            frame = self._page_table.pop(vpn, None)
            if frame is not None:
                free_frame(frame)
        self._vmas.remove(vma)

    def find_vma(self, va: int) -> VMArea:
        """The VMA containing an address, or segfault."""
        for vma in self._vmas:
            if va in vma:
                return vma
        raise AddressError(f"segmentation fault: {va:#x} is unmapped")

    @property
    def vmas(self) -> list[VMArea]:
        """All VMAs in the address space."""
        return list(self._vmas)

    # -- faults and translation ------------------------------------------------
    def _fault(self, vpn: int) -> int:
        va = vpn << self.page_bits
        vma = self.find_vma(va)
        frame = self._fault_handler(vma.mapping_id)
        self._page_table[vpn] = frame
        vma.faults += 1
        self.total_faults += 1
        return frame

    def translate(self, va: int) -> int:
        """Translate one VA, faulting the page in if needed."""
        vpn = int(va) >> self.page_bits
        frame = self._page_table.get(vpn)
        if frame is None:
            frame = self._fault(vpn)
        return frame | (int(va) & (self.page_bytes - 1))

    def translate_trace(self, va: np.ndarray) -> np.ndarray:
        """Vectorised translation of a whole VA trace.

        Unique pages are resolved (faulting as needed) once; the trace is
        then translated with one gather.
        """
        va = np.asarray(va, dtype=np.uint64)
        if va.size == 0:
            return va.copy()
        vpn = va >> np.uint64(self.page_bits)
        unique_vpns, inverse = np.unique(vpn, return_inverse=True)
        frames = np.empty(unique_vpns.size, dtype=np.uint64)
        for position, page in enumerate(unique_vpns.tolist()):
            frame = self._page_table.get(page)
            if frame is None:
                frame = self._fault(page)
            frames[position] = frame
        offset = va & np.uint64(self.page_bytes - 1)
        return frames[inverse] | offset

    # -- RAS: page relocation ------------------------------------------------
    def vpn_of_frame(self, frame_pa: int) -> int | None:
        """Reverse lookup: the virtual page mapped to a frame, if any.

        A linear scan — the model has no rmap; fine for the RAS path,
        which relocates a handful of pages per repair.
        """
        for vpn, frame in self._page_table.items():
            if frame == frame_pa:
                return vpn
        return None

    def remap(self, vpn: int, new_frame: int) -> int:
        """Point a resident virtual page at a different frame.

        Returns the old frame.  Used by page relocation: the kernel
        copies the contents, then atomically switches the PTE.
        """
        if vpn not in self._page_table:
            raise AddressError(f"vpn {vpn:#x} is not resident")
        old = self._page_table[vpn]
        self._page_table[vpn] = new_frame
        return old

    # -- introspection -------------------------------------------------------
    def resident_pages(self) -> int:
        """Pages with frames mapped in."""
        return len(self._page_table)

    def frame_of(self, va: int) -> int | None:
        """Frame backing ``va`` or None if not yet faulted in."""
        return self._page_table.get(int(va) >> self.page_bits)
