"""Seeded RAS campaigns: a faulty machine raced against a clean twin.

A :class:`RASMachine` is a small but complete software stack — SDAM
controller (with CMT shadow), kernel, process address space, migrator,
fast memory model, modeled device contents — plus a
:class:`~repro.ras.controller.RASController` scrubbing it.  A
:class:`~repro.ras.faults.DeviceFaultPlan` injects modeled-hardware
faults when the access counter crosses each spec's trigger point.

:func:`run_campaign` builds two identical machines from one seed,
drives both with identical traffic, injects the plan into one, and at
the end compares the machines' contents over the *surviving* address
space (every written line whose current location is neither poisoned
nor on faulty hardware).  Any mismatch there is silent corruption and
fails the campaign; lines destroyed by physical faults are reported as
``lines_lost`` — honest ECC-visible loss, never wrong data.

The write **journal** models software-side redundancy: every write
since the last clean scrub is kept and replayed through the healed
translation after a repair, so misdirected writes (CMT/AMU corruption
windows) are healed rather than lost.  A clean scrub is a checkpoint:
the journal is dropped, and data older than the checkpoint that a later
physical fault destroys is genuinely lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.chunks import ChunkGeometry
from repro.core.keys import stable_hash
from repro.core.sdam import SDAMController
from repro.errors import CampaignInterrupted, CMTError, MappingError, RASError
from repro.faults.sites import (
    DEVICE_AMU_MISPROGRAM,
    DEVICE_CMT_FLIP,
    DEVICE_HBM_BANK,
    DEVICE_HBM_CHANNEL,
    DEVICE_HBM_ROW,
)
from repro.hbm.config import HBMConfig
from repro.hbm.decode import decode_trace
from repro.hbm.backend import create_backend
from repro.hbm.guard import DEFAULT_GUARD_SAMPLE, GuardedBackend, TierFactory
from repro.hbm.stats import DeviceHealth
from repro.mem.kernel import Kernel
from repro.mem.migration import ChunkMigrator
from repro.ras.controller import RASController, RASReport
from repro.ras.faults import DeviceFaultPlan, DeviceFaultSpec
from repro.ras.storage import DeviceStorage

__all__ = [
    "CampaignResult",
    "RASMachine",
    "run_campaign",
    "small_ras_config",
]

MiB = 1024**2

#: Default campaign order: physical faults first (row before its bank's
#: bank fault before the channel), control-state upsets after.
ALL_KINDS = ("row", "bank", "channel", "cmt", "amu")


def small_ras_config() -> HBMConfig:
    """A deliberately small device so campaigns stay fast.

    64 MB, 8 channels x 4 banks, 256 B rows: 32 chunks of 2 MB with a
    15-bit window — the same window width as the paper's platform, so
    repair composition exercises the real search space.
    """
    return HBMConfig(
        name="hbm-ras",
        total_bytes=64 * MiB,
        num_channels=8,
        banks_per_channel=4,
        row_bytes=256,
    )


class RASMachine:
    """A machine with modeled device contents and a RAS controller.

    ``write``/``read`` move line-granular values through the full
    VA -> PA -> HA pipeline; accesses landing on faulty hardware are
    flagged (ECC), charged the full row-miss cost in the performance
    model, and destroy/refuse the data.  Faults from ``plan`` inject
    themselves when :attr:`accesses` passes their trigger.
    """

    def __init__(
        self,
        config: HBMConfig | None = None,
        geometry: ChunkGeometry | None = None,
        seed: int = 0,
        plan: DeviceFaultPlan | None = None,
        backend: str = "fast",
        guard: bool = False,
        guard_sample: float | None = None,
        guard_faults=None,
    ):
        self.config = config or small_ras_config()
        self.geometry = geometry or ChunkGeometry(
            total_bytes=self.config.total_bytes
        )
        if self.geometry.total_bytes != self.config.total_bytes:
            raise RASError("geometry capacity does not match the device")
        self.seed = seed
        self.plan = plan or DeviceFaultPlan([])
        self.sdam = SDAMController(self.geometry)
        self.kernel = Kernel(self.geometry, sdam=self.sdam)
        self.migrator = ChunkMigrator(self.kernel, hbm=self.config)
        self.backend_name = backend
        self.backend = create_backend(backend, self.config)
        if guard and backend != "event":
            self.backend = GuardedBackend(
                self.backend,
                primary_factory=TierFactory(backend, self.config),
                reference_factory=TierFactory("event", self.config),
                primary_name=backend,
                sample=(
                    guard_sample
                    if guard_sample is not None
                    else DEFAULT_GUARD_SAMPLE
                ),
                mode="demote",
                faults=guard_faults,
                seed=seed,
            )
        self.storage = DeviceStorage()
        self.health = DeviceHealth(
            self.config.num_channels, self.config.banks_per_channel
        )
        self.space = self.kernel.spawn()
        self.controller = RASController(self, seed=seed)
        self._rng = np.random.default_rng(seed ^ 0xDEC0DE)
        # Software-side redundancy: VA -> value for every write since
        # the last clean scrub (the repair path replays it), plus the
        # HAs those writes actually landed on (possibly misdirected).
        self.journal: dict[int, int] = {}
        self.written_since_scrub: set[int] = set()
        self.written_vas: set[int] = set()
        self.accesses = 0
        self.total_ns = 0.0
        self.machine_checks = 0
        self.injected: list[DeviceFaultSpec] = []
        self.injection_log: list[dict] = []
        self._physical_faults: list[DeviceFaultSpec] = []

    # -- setup ----------------------------------------------------------------
    def add_mapping(self, window_perm) -> int:
        """Register an address mapping (the add_addr_map syscall)."""
        return self.kernel.add_addr_map(window_perm)

    def mmap(self, length: int, mapping_id: int = 0, name: str = ""):
        """mmap a region with the paper's extra mapping-id argument."""
        return self.kernel.sys_mmap(
            self.space, length, mapping_id=mapping_id, name=name
        )

    # -- fault injection -------------------------------------------------------
    def _inject_due(self) -> None:
        for spec in self.plan.pop_due(self.accesses):
            self.inject(spec)

    def inject(self, spec: DeviceFaultSpec) -> None:
        """Make one fault real, effective immediately."""
        self.injected.append(spec)
        self.injection_log.append(
            {"access": self.accesses, "spec": spec.to_dict(),
             "describe": spec.describe()}
        )
        if spec.is_physical:
            self._physical_faults.append(spec)
            self._poison_existing(spec)
        elif spec.site == DEVICE_CMT_FLIP:
            if spec.chunk_no is not None:
                self.sdam.cmt.flip_entry_bit(spec.chunk_no, spec.bit)
            else:
                self.sdam.cmt.flip_config_bit(
                    spec.mapping_index, spec.lane, spec.bit
                )
            self.sdam.invalidate_caches()
        elif spec.site == DEVICE_AMU_MISPROGRAM:
            current = self.sdam.cmt.config_of(spec.mapping_index)
            wrong = current.copy()
            while np.array_equal(wrong, current):
                self._rng.shuffle(wrong)
            self.sdam.misprogram_crossbar(spec.mapping_index, wrong)
        else:  # pragma: no cover - DeviceFaultSpec validates sites
            raise RASError(f"cannot inject {spec.site}")

    def _poison_existing(self, spec: DeviceFaultSpec) -> None:
        """A physical fault destroys whatever is stored on the region."""
        occupied = np.array(self.storage.occupied_lines(), dtype=np.uint64)
        if occupied.size == 0:
            return
        decoded = decode_trace(occupied, self.config)
        bad = self._spec_mask(spec, decoded)
        for ha in occupied[bad].tolist():
            self.storage.poison(ha)

    @staticmethod
    def _spec_mask(spec: DeviceFaultSpec, decoded) -> np.ndarray:
        mask = decoded.channel == spec.channel
        if spec.site in (DEVICE_HBM_ROW, DEVICE_HBM_BANK):
            mask = mask & (decoded.bank == spec.bank)
        if spec.site == DEVICE_HBM_ROW:
            mask = mask & (decoded.row == spec.row)
        return mask

    def _fault_mask(self, decoded) -> np.ndarray:
        """Ground truth: which accesses land on faulty hardware."""
        mask = np.zeros(len(decoded), dtype=bool)
        for spec in self._physical_faults:
            mask |= self._spec_mask(spec, decoded)
        return mask

    # -- the access path -------------------------------------------------------
    def _translate_checked(self, pa: np.ndarray) -> np.ndarray:
        """Translate, treating datapath exceptions as machine checks.

        A corrupted CMT word can push translation out of range; the
        machine-check handler scrubs (rolling the SRAM back from the
        shadow) and retries.
        """
        try:
            return self.sdam.translate(pa)
        except (CMTError, MappingError, IndexError):
            self.machine_checks += 1
            self.controller.scrub(trigger="machine-check")
            return self.sdam.translate(pa)

    def _access(self, va: np.ndarray):
        va = np.asarray(va, dtype=np.uint64)
        self._inject_due()
        pa = self.space.translate_trace(va)
        ha = self._translate_checked(pa)
        decoded = decode_trace(ha, self.config)
        errors = self._fault_mask(decoded)
        self.health.record(decoded, errors)
        stats = self.backend.simulate_decoded(decoded, forced_miss=errors)
        self.accesses += int(va.size)
        self.total_ns += stats.makespan_ns
        return ha, errors, stats

    def write(self, va: np.ndarray, values: np.ndarray):
        """Write one value per line address; returns the run stats."""
        va = np.asarray(va, dtype=np.uint64)
        values = np.asarray(values)
        ha, errors, stats = self._access(va)
        for addr, line, value, bad in zip(
            va.tolist(), ha.tolist(), values.tolist(), errors.tolist()
        ):
            self.storage.write(line, value, healthy=not bad)
            self.journal[addr] = int(value)
            self.written_since_scrub.add(line)
            self.written_vas.add(addr)
        return stats

    def read(self, va: np.ndarray):
        """``(values, ecc_errors, stats)`` for a line-address trace.

        Lost lines read as -1 with the ECC flag set — never silent
        garbage.
        """
        va = np.asarray(va, dtype=np.uint64)
        ha, errors, stats = self._access(va)
        values = np.empty(va.size, dtype=np.int64)
        ecc = np.asarray(errors, dtype=bool).copy()
        for index, line in enumerate(ha.tolist()):
            value, poisoned = self.storage.read(line)
            ecc[index] |= poisoned
            values[index] = -1 if (value is None or ecc[index]) else value
        return values, ecc, stats

    def patrol(self) -> list[dict]:
        """One patrol scrub; returns the repair actions taken."""
        return self.controller.scrub(trigger="patrol")

    # -- controller callbacks ---------------------------------------------------
    def copy_lines(self, pa_lines, reads, writes) -> None:
        """Move device contents during migration/relocation.

        Poison travels with the data, and destinations still on faulty
        hardware (a not-yet-repaired mapping) poison on arrival.
        """
        writes = np.asarray(writes, dtype=np.uint64)
        reads = np.asarray(reads, dtype=np.uint64)
        decoded = decode_trace(writes, self.config)
        bad = self._fault_mask(decoded)
        self.storage.move_many(reads.tolist(), writes.tolist())
        for dst in writes[bad].tolist():
            self.storage.poison(dst)

    def poison_suspect_writes(self, suspect_chunks) -> None:
        """Writes since the last scrub into corrupt-translation chunks
        may have landed anywhere — destroy them (the journal replay
        re-establishes their values at the corrected locations)."""
        shift = self.geometry.chunk_shift
        for line in sorted(self.written_since_scrub):
            if (line >> shift) in suspect_chunks:
                self.storage.poison(line)

    def replay_journal(self) -> float:
        """Re-issue every journaled write through the (healed)
        translation; returns the modeled cost in ns."""
        if not self.journal:
            return 0.0
        vas = np.array(sorted(self.journal), dtype=np.uint64)
        pa = self.space.translate_trace(vas)
        ha = self.sdam.translate(pa)
        decoded = decode_trace(ha, self.config)
        bad = self._fault_mask(decoded)
        for addr, line, b in zip(vas.tolist(), ha.tolist(), bad.tolist()):
            self.storage.write(line, self.journal[addr], healthy=not b)
        stats = self.backend.simulate_decoded(decoded, forced_miss=bad)
        return float(stats.makespan_ns)

    def mark_clean_scrub(self) -> None:
        """Checkpoint: drop the journal after a clean (or healed) scrub."""
        self.journal.clear()
        self.written_since_scrub.clear()

    # -- final-state inspection -------------------------------------------------
    def snapshot(self) -> dict[int, int | None]:
        """``{va: value}`` over every line ever written; None = lost.

        Reads the device through the *current* translation without
        touching the access counters or health state.
        """
        if not self.written_vas:
            return {}
        vas = np.array(sorted(self.written_vas), dtype=np.uint64)
        pa = self.space.translate_trace(vas)
        ha = self._translate_checked(pa)
        decoded = decode_trace(ha, self.config)
        bad = self._fault_mask(decoded)
        out: dict[int, int | None] = {}
        for addr, line, b in zip(vas.tolist(), ha.tolist(), bad.tolist()):
            value, poisoned = self.storage.read(line)
            out[addr] = (
                None if (b or poisoned or value is None) else int(value)
            )
        return out


@dataclass
class CampaignResult:
    """Outcome of :func:`run_campaign`: the report plus any violations."""

    report: RASReport
    problems: list[str] = field(default_factory=list)
    resumed: bool = False

    @property
    def ok(self) -> bool:
        """True when every fault was handled and no data corrupted."""
        return self.report.ok and not self.problems

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "ok": self.ok,
            "problems": list(self.problems),
            "resumed": self.resumed,
            "report": self.report.to_dict(),
        }

    def fingerprint(self) -> dict:
        """:meth:`to_dict` minus execution provenance.

        ``resumed`` records *how* the campaign was executed, not what
        it computed; a killed-and-resumed campaign fingerprints
        identically to an uninterrupted one.
        """
        data = self.to_dict()
        data["resumed"] = False
        return data

    def summary(self) -> str:
        """Human-readable campaign summary."""
        text = self.report.summary()
        if self.problems:
            text += "\n  PROBLEMS:\n" + "\n".join(
                f"    - {p}" for p in self.problems
            )
        return text


def _build_machine(
    seed: int,
    config: HBMConfig,
    geometry: ChunkGeometry,
    plan: DeviceFaultPlan | None,
    extra_mappings: int,
    backend: str = "fast",
    guard: bool = False,
    guard_sample: float | None = None,
    guard_faults=None,
):
    """One machine + its mapping ids; same seed => identical twin."""
    machine = RASMachine(
        config=config,
        geometry=geometry,
        seed=seed,
        plan=plan,
        backend=backend,
        guard=guard,
        guard_sample=guard_sample,
        guard_faults=guard_faults,
    )
    rng = np.random.default_rng(seed + 11)
    ids = [0]
    for _ in range(extra_mappings):
        ids.append(
            machine.add_mapping(rng.permutation(geometry.window_bits))
        )
    return machine, ids


def _make_schedule(seed, vma_specs, batches, writes_per_batch, line_bytes):
    """Deterministic traffic: per batch a full read scan + fresh writes.

    Ops reference VMAs by index so the same schedule drives both twins.
    """
    rng = np.random.default_rng(seed + 23)
    lines_of = [length // line_bytes for _index, length in vma_specs]
    schedule = []
    for _batch in range(batches):
        ops = []
        for vma_index, lines in enumerate(lines_of):
            ops.append(("read", vma_index, np.arange(lines, dtype=np.uint64)))
        vma_index = int(rng.integers(0, len(lines_of)))
        offsets = rng.choice(
            lines_of[vma_index],
            size=min(writes_per_batch, lines_of[vma_index]),
            replace=False,
        ).astype(np.uint64)
        values = rng.integers(0, 2**31, size=offsets.size)
        ops.append(("write", vma_index, np.sort(offsets), values))
        schedule.append(ops)
    return schedule


def _apply_ops(machine, vmas, ops, line_bytes) -> None:
    for op in ops:
        if op[0] == "read":
            _kind, vma_index, offsets = op
            va = np.uint64(vmas[vma_index].start) + offsets * np.uint64(
                line_bytes
            )
            machine.read(va)
        else:
            _kind, vma_index, offsets, values = op
            va = np.uint64(vmas[vma_index].start) + offsets * np.uint64(
                line_bytes
            )
            machine.write(va, values)


def _plan_from_state(machine, kinds, rng, first_trigger, spacing):
    """Target each fault at hardware the machine demonstrably uses.

    Coordinates are drawn from the populated device state so every
    injected fault is *detectable* — a row nobody ever stores to would
    never produce an ECC error, making "all faults detected" vacuous.
    """
    occupied = np.array(machine.storage.occupied_lines(), dtype=np.uint64)
    if occupied.size == 0:
        raise RASError("campaign plan needs a populated device")
    decoded = decode_trace(occupied, machine.config)
    by_row: dict[tuple[int, int, int], int] = {}
    by_bank: dict[tuple[int, int], set[int]] = {}
    for c, b, r in zip(
        decoded.channel.tolist(), decoded.bank.tolist(), decoded.row.tolist()
    ):
        by_row[(c, b, r)] = by_row.get((c, b, r), 0) + 1
        by_bank.setdefault((c, b), set()).add(r)
    health = machine.health
    rich_rows = sorted(
        key for key, n in by_row.items() if n >= health.row_threshold
    ) or sorted(by_row)
    rich_banks = sorted(
        key
        for key, rows in by_bank.items()
        if len(rows) >= health.bank_row_threshold
    ) or sorted(by_bank)
    banks_per_channel: dict[int, int] = {}
    for c, _b in rich_banks:
        banks_per_channel[c] = banks_per_channel.get(c, 0) + 1
    needed = max(
        2,
        int(
            machine.config.banks_per_channel
            * health.channel_bank_fraction
        ),
    )
    # Detection is guaranteed by the controller's device patrol scrub;
    # richness only maximises the data the fault gets to destroy, so
    # fall back to any populated channel when the dataset is clustered.
    rich_channels = sorted(
        c for c, n in banks_per_channel.items() if n >= needed
    ) or sorted({c for c, _b in by_bank})
    live_chunks = sorted(machine.kernel.physical._chunks)
    mapping_ids = [
        m for m in machine.kernel.registered_mapping_ids() if m != 0
    ]
    specs = []
    trigger = first_trigger
    used_channels: set[int] = set()
    for kind in kinds:
        if kind == "row":
            c, b, r = rich_rows[int(rng.integers(0, len(rich_rows)))]
            spec = DeviceFaultSpec(
                site=DEVICE_HBM_ROW, trigger_access=trigger,
                channel=c, bank=b, row=r,
            )
        elif kind == "bank":
            c, b = rich_banks[int(rng.integers(0, len(rich_banks)))]
            spec = DeviceFaultSpec(
                site=DEVICE_HBM_BANK, trigger_access=trigger,
                channel=c, bank=b,
            )
        elif kind == "channel":
            fresh = [c for c in rich_channels if c not in used_channels]
            pool = fresh or rich_channels
            c = pool[int(rng.integers(0, len(pool)))]
            spec = DeviceFaultSpec(
                site=DEVICE_HBM_CHANNEL, trigger_access=trigger, channel=c
            )
        elif kind == "cmt":
            spec = DeviceFaultSpec(
                site=DEVICE_CMT_FLIP,
                trigger_access=trigger,
                chunk_no=live_chunks[
                    int(rng.integers(0, len(live_chunks)))
                ],
                bit=int(rng.integers(0, 8)),
            )
        elif kind == "amu":
            spec = DeviceFaultSpec(
                site=DEVICE_AMU_MISPROGRAM,
                trigger_access=trigger,
                mapping_index=mapping_ids[
                    int(rng.integers(0, len(mapping_ids)))
                ],
            )
        else:
            raise RASError(
                f"unknown fault kind {kind!r}; known: {', '.join(ALL_KINDS)}"
            )
        if spec.channel is not None:
            used_channels.add(spec.channel)
        specs.append(spec)
        trigger += spacing
    return DeviceFaultPlan(specs)


def _match_detection(spec: DeviceFaultSpec, events: list[dict]) -> dict | None:
    """The repair event (if any) that handles an injected fault."""
    for event in events:
        action = event["action"]
        if spec.site == DEVICE_HBM_ROW and action == "repair-row":
            if (
                event["channel"] == spec.channel
                and event["bank"] == spec.bank
                and event["row"] == spec.row
            ):
                return event
        elif spec.site == DEVICE_HBM_BANK:
            if (
                action == "repair-bank"
                and event["channel"] == spec.channel
                and event["bank"] == spec.bank
            ):
                return event
            # A channel-level degradation subsumes its banks.
            if (
                action == "degrade-channel"
                and event["channel"] == spec.channel
            ):
                return event
        elif spec.site == DEVICE_HBM_CHANNEL:
            if (
                action == "degrade-channel"
                and event["channel"] == spec.channel
            ):
                return event
        elif spec.site == DEVICE_CMT_FLIP and action == "cmt-rollback":
            return event
        elif spec.site == DEVICE_AMU_MISPROGRAM and action == "amu-reprogram":
            if spec.mapping_index in event["mapping_indices"]:
                return event
    return None


def _campaign_key(seed, kinds, quick, backend, config, geometry) -> str:
    """Bind a checkpoint to the exact campaign parameters."""
    return stable_hash(
        "ras-campaign",
        seed,
        tuple(kinds),
        bool(quick),
        backend,
        config.name,
        config.total_bytes,
        config.num_channels,
        config.banks_per_channel,
        config.row_bytes,
        geometry.total_bytes,
        geometry.chunk_bytes,
    )


def run_campaign(
    seed: int = 0,
    kinds=ALL_KINDS,
    quick: bool = True,
    config: HBMConfig | None = None,
    geometry: ChunkGeometry | None = None,
    backend: str = "fast",
    guard: bool = False,
    guard_sample: float | None = None,
    guard_faults=None,
    checkpoint_path=None,
    resume: bool = False,
    checkpoint_every: int = 1,
    stop_after_batch: int | None = None,
) -> CampaignResult:
    """Inject a seeded multi-fault sequence and prove it was handled.

    Builds twin machines, writes an initial dataset, injects one fault
    per requested kind (staggered so each is detected before the next
    strikes), patrol-scrubs every batch, and finally compares the twins
    line by line over the surviving address space.  ``backend`` selects
    the memory fidelity tier both twins charge their accesses against;
    ``guard=True`` wraps it in the cross-tier divergence guard.

    With ``checkpoint_path`` the campaign persists its twins and batch
    cursor every ``checkpoint_every`` batches, and ``resume=True``
    continues a killed campaign from that file — producing a report
    bit-identical to an uninterrupted run.  ``stop_after_batch`` (used
    by tests and CI to model a mid-campaign kill) checkpoints and
    raises :class:`~repro.errors.CampaignInterrupted` once that many
    batches have completed.
    """
    config = config or small_ras_config()
    geometry = geometry or ChunkGeometry(total_bytes=config.total_bytes)
    if stop_after_batch is not None and checkpoint_path is None:
        raise RASError("stop_after_batch requires a checkpoint_path")
    key = _campaign_key(seed, kinds, quick, backend, config, geometry)
    pages_per_vma = 4 if quick else 8
    writes_per_batch = 128 if quick else 256
    line_bytes = geometry.line_bytes

    # Everything below the cursor lives in the checkpoint; everything
    # else (schedules, the fault plan's coordinates) is recomputed
    # deterministically from the seed.
    batches = 2 * len(kinds) + 2
    resumed = False
    if resume:
        from repro.system.checkpoint import load_checkpoint

        start_batch, state = load_checkpoint(checkpoint_path, "ras", key)
        faulty = state["faulty"]
        clean = state["clean"]
        vmas_f = state["vmas_f"]
        vmas_c = state["vmas_c"]
        vma_specs = state["vma_specs"]
        schedule = _make_schedule(
            seed, vma_specs, batches, writes_per_batch, line_bytes
        )
        resumed = True
    else:
        rng = np.random.default_rng(seed)
        faulty, ids = _build_machine(
            seed, config, geometry, None, 2, backend,
            guard=guard, guard_sample=guard_sample,
            guard_faults=guard_faults,
        )
        clean, _ids = _build_machine(
            seed, config, geometry, None, 2, backend,
            guard=guard, guard_sample=guard_sample,
            guard_faults=guard_faults,
        )
        vma_specs = [
            (mid, pages_per_vma * geometry.page_bytes) for mid in ids
        ]
        vmas_f = [faulty.mmap(length, mid) for mid, length in vma_specs]
        vmas_c = [clean.mmap(length, mid) for mid, length in vma_specs]

        # Initial dataset: every line of every VMA, identical on both
        # twins.
        for vma_f, vma_c in zip(vmas_f, vmas_c):
            lines = vma_f.length // line_bytes
            offsets = np.arange(lines, dtype=np.uint64)
            values = rng.integers(0, 2**31, size=lines)
            va_f = np.uint64(vma_f.start) + offsets * np.uint64(line_bytes)
            va_c = np.uint64(vma_c.start) + offsets * np.uint64(line_bytes)
            faulty.write(va_f, values)
            clean.write(va_c, values)
        faulty.patrol()  # clean checkpoint before any fault
        clean.patrol()

        # One fault per kind, one quiet batch between faults so each is
        # detected and repaired before the next strikes.
        schedule = _make_schedule(
            seed, vma_specs, batches, writes_per_batch, line_bytes
        )
        per_batch = sum(
            op[2].size for op in schedule[0]
        )
        faulty.plan = _plan_from_state(
            faulty,
            kinds,
            rng,
            first_trigger=faulty.accesses + per_batch // 2,
            spacing=2 * per_batch,
        )
        start_batch = 0

    def _persist(next_batch: int) -> None:
        from repro.system.checkpoint import save_checkpoint

        save_checkpoint(
            checkpoint_path,
            "ras",
            key,
            next_batch,
            {
                "faulty": faulty,
                "clean": clean,
                "vmas_f": vmas_f,
                "vmas_c": vmas_c,
                "vma_specs": vma_specs,
            },
        )

    if checkpoint_path is not None and not resume:
        _persist(0)

    for batch_index in range(start_batch, len(schedule)):
        ops = schedule[batch_index]
        _apply_ops(faulty, vmas_f, ops, line_bytes)
        _apply_ops(clean, vmas_c, ops, line_bytes)
        faulty.patrol()
        clean.patrol()
        completed = batch_index + 1
        if checkpoint_path is not None and (
            completed % max(1, checkpoint_every) == 0
            or completed == len(schedule)
        ):
            _persist(completed)
        if stop_after_batch is not None and completed >= stop_after_batch:
            raise CampaignInterrupted(
                f"RAS campaign stopped after batch {completed}/"
                f"{len(schedule)} (checkpoint saved)",
                checkpoint_path=str(checkpoint_path),
            )
    faulty.patrol()

    problems: list[str] = []
    if faulty.plan.pending:
        problems.append(
            f"{faulty.plan.pending} planned faults never fired "
            "(campaign too short)"
        )

    # Post-repair epoch: identical fresh traffic, timed on both twins,
    # gives the residual slowdown and the traffic whose fingerprint the
    # acceptance check compares.
    epoch = _make_schedule(
        seed + 101, vma_specs, 2, writes_per_batch, line_bytes
    )
    f_before, c_before = faulty.total_ns, clean.total_ns
    for ops in epoch:
        _apply_ops(faulty, vmas_f, ops, line_bytes)
        _apply_ops(clean, vmas_c, ops, line_bytes)
    f_epoch = faulty.total_ns - f_before
    c_epoch = clean.total_ns - c_before
    faulty.patrol()
    clean.patrol()

    # Surviving space: every line whose current location is healthy on
    # the faulty machine.  Over that space the twins must agree exactly
    # — any difference is silent corruption.
    base = int(vmas_f[0].start) - int(vmas_c[0].start)
    snap_f = faulty.snapshot()
    snap_c = clean.snapshot()
    surviving = {
        va: value for va, value in snap_f.items() if value is not None
    }
    mismatches = 0
    for va, value in surviving.items():
        if snap_c.get(va - base) != value:
            mismatches += 1
    if mismatches:
        problems.append(
            f"silent corruption: {mismatches} surviving lines differ "
            "from the clean twin"
        )
    fingerprint_f = stable_hash(sorted(surviving.items()))
    fingerprint_c = stable_hash(
        sorted(
            (va - base, snap_c.get(va - base)) for va in surviving
        )
    )

    detections = []
    for spec in faulty.injected:
        event = _match_detection(spec, faulty.controller.events)
        detected = event is not None
        detections.append(
            {
                "site": spec.site,
                "describe": spec.describe(),
                "detected": detected,
                "repaired": detected,
                "action": event["action"] if event else None,
                "degraded": bool(event)
                and event["action"] == "degrade-channel",
            }
        )
    all_detected = all(d["detected"] for d in detections) and not (
        faulty.plan.pending
    )
    report = RASReport(
        seed=seed,
        faults_injected=[log for log in faulty.injection_log],
        detections=detections,
        events=list(faulty.controller.events),
        scrubs=faulty.controller.scrubs,
        machine_checks=faulty.machine_checks,
        lines_migrated=faulty.controller.lines_migrated,
        pages_retired=faulty.kernel.physical.pages_retired,
        pages_relocated=faulty.controller.pages_relocated,
        repair_cost_ns=faulty.controller.repair_cost_ns,
        lines_written=len(snap_f),
        lines_survived=len(surviving),
        lines_lost=len(snap_f) - len(surviving),
        degraded=faulty.controller.degraded,
        dead_channels=sorted(faulty.controller.dead_channels),
        residual_slowdown=(f_epoch / c_epoch) if c_epoch > 0 else 1.0,
        fingerprint_match=(fingerprint_f == fingerprint_c)
        and mismatches == 0,
        all_detected=all_detected,
        all_repaired=all(d["repaired"] for d in detections),
    )
    return CampaignResult(report=report, problems=problems, resumed=resumed)
