"""Device fault specifications: what breaks, where, and when.

The ``device.*`` site family of :mod:`repro.faults.sites` names the
modeled-hardware failure modes; a :class:`DeviceFaultSpec` pins one of
them to concrete coordinates (channel/bank/row, CMT word, mapping
index) and an access-count trigger point.  Unlike the engine's
:class:`~repro.faults.plan.FaultPlan` — which arms probabilistic hooks
inside the experiment engine — a :class:`DeviceFaultPlan` is consumed
by :class:`~repro.ras.campaign.RASMachine`, which injects each spec
exactly once when the machine's cumulative access counter passes the
trigger.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.chunks import ChunkGeometry
from repro.errors import DeviceFaultError
from repro.faults.sites import (
    DEVICE_AMU_MISPROGRAM,
    DEVICE_CMT_FLIP,
    DEVICE_HBM_BANK,
    DEVICE_HBM_CHANNEL,
    DEVICE_HBM_ROW,
    DEVICE_SITES,
    matches_known_site,
)
from repro.hbm.config import HBMConfig

__all__ = ["DeviceFaultPlan", "DeviceFaultSpec"]

#: Sites describing physical (channel/bank/row) damage.
PHYSICAL_SITES = (DEVICE_HBM_ROW, DEVICE_HBM_BANK, DEVICE_HBM_CHANNEL)


@dataclass(frozen=True)
class DeviceFaultSpec:
    """One modeled-hardware fault, armed at an access-count trigger.

    Coordinate fields are site-specific: ``channel``/``bank``/``row``
    for the ``device.hbm.*`` family, ``chunk_no`` or ``mapping_index``
    (+ ``lane``/``bit``) for ``device.cmt.flip``, ``mapping_index`` for
    ``device.amu.misprogram``.
    """

    site: str
    trigger_access: int = 0
    channel: int | None = None
    bank: int | None = None
    row: int | None = None
    chunk_no: int | None = None
    mapping_index: int | None = None
    lane: int = 0
    bit: int = 0

    def __post_init__(self) -> None:
        if self.site not in DEVICE_SITES:
            hint = ""
            if matches_known_site(self.site, family="engine"):
                hint = (
                    "; engine sites are injected through "
                    "repro.faults.FaultPlan, not a DeviceFaultPlan"
                )
            raise DeviceFaultError(
                f"unknown device fault site {self.site!r}; known sites: "
                f"{', '.join(DEVICE_SITES)}{hint}"
            )
        if self.trigger_access < 0:
            raise DeviceFaultError("trigger_access must be >= 0")
        needs = {
            DEVICE_HBM_ROW: ("channel", "bank", "row"),
            DEVICE_HBM_BANK: ("channel", "bank"),
            DEVICE_HBM_CHANNEL: ("channel",),
            DEVICE_AMU_MISPROGRAM: ("mapping_index",),
        }.get(self.site, ())
        for name in needs:
            if getattr(self, name) is None:
                raise DeviceFaultError(
                    f"{self.site} fault needs a {name!r} coordinate"
                )
        if self.site == DEVICE_CMT_FLIP:
            if self.chunk_no is None and self.mapping_index is None:
                raise DeviceFaultError(
                    f"{DEVICE_CMT_FLIP} needs chunk_no (first-level entry) "
                    "or mapping_index (second-level config)"
                )

    @property
    def kind(self) -> str:
        """Short classifier: row, bank, channel, cmt, amu."""
        return self.site.rsplit(".", 1)[-1] if self.site.startswith(
            "device.hbm."
        ) else ("cmt" if self.site == DEVICE_CMT_FLIP else "amu")

    @property
    def is_physical(self) -> bool:
        """True for channel/bank/row damage (vs control-state upsets)."""
        return self.site in PHYSICAL_SITES

    def describe(self) -> str:
        """One-line human-readable description."""
        where = {
            DEVICE_HBM_ROW: f"ch{self.channel} bank{self.bank} row{self.row}",
            DEVICE_HBM_BANK: f"ch{self.channel} bank{self.bank}",
            DEVICE_HBM_CHANNEL: f"ch{self.channel}",
            DEVICE_CMT_FLIP: (
                f"entry[{self.chunk_no}] bit {self.bit}"
                if self.chunk_no is not None
                else f"config[{self.mapping_index}] lane {self.lane} "
                f"bit {self.bit}"
            ),
            DEVICE_AMU_MISPROGRAM: f"mapping {self.mapping_index}",
        }[self.site]
        return f"{self.site} @ {where} after {self.trigger_access} accesses"

    def to_dict(self) -> dict:
        """JSON-serialisable form; :meth:`from_dict` round-trips it."""
        return {
            "site": self.site,
            "trigger_access": self.trigger_access,
            "channel": self.channel,
            "bank": self.bank,
            "row": self.row,
            "chunk_no": self.chunk_no,
            "mapping_index": self.mapping_index,
            "lane": self.lane,
            "bit": self.bit,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DeviceFaultSpec":
        """Rebuild a spec written by :meth:`to_dict`."""
        return cls(**data)


class DeviceFaultPlan:
    """An ordered, seeded set of device faults with trigger bookkeeping.

    The plan is pure data plus "has this spec fired yet" tracking; the
    machine calls :meth:`pop_due` with its cumulative access count and
    injects whatever comes back.
    """

    def __init__(self, specs):
        self.specs: list[DeviceFaultSpec] = list(specs)
        self._fired: set[int] = set()

    def __len__(self) -> int:
        return len(self.specs)

    def pop_due(self, accesses: int) -> list[DeviceFaultSpec]:
        """Specs whose trigger has passed and that have not fired yet."""
        due = []
        for index, spec in enumerate(self.specs):
            if index in self._fired or spec.trigger_access > accesses:
                continue
            self._fired.add(index)
            due.append(spec)
        return due

    @property
    def pending(self) -> int:
        """Specs that have not fired yet."""
        return len(self.specs) - len(self._fired)

    def to_dict(self) -> dict:
        """JSON-serialisable form (fired-state excluded; plans re-arm)."""
        return {"specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, data: dict) -> "DeviceFaultPlan":
        """Rebuild a plan written by :meth:`to_dict`."""
        return cls(DeviceFaultSpec.from_dict(s) for s in data["specs"])

    # -- seeded generation --------------------------------------------------
    @classmethod
    def seeded(
        cls,
        seed: int,
        config: HBMConfig,
        geometry: ChunkGeometry,
        kinds=("row", "bank", "channel", "cmt"),
        first_trigger: int = 2000,
        spacing: int = 4000,
        live_mappings: int = 2,
    ) -> "DeviceFaultPlan":
        """One concrete fault per requested kind, staggered in time.

        ``kinds`` entries: ``row``, ``bank``, ``channel``, ``cmt``,
        ``amu``.  Coordinates are drawn from a seeded generator, so the
        same (seed, config) always yields the same campaign.
        """
        rng = np.random.default_rng(seed)
        specs = []
        trigger = first_trigger
        for kind in kinds:
            channel = int(rng.integers(0, config.num_channels))
            bank = int(rng.integers(0, config.banks_per_channel))
            if kind == "row":
                spec = DeviceFaultSpec(
                    site=DEVICE_HBM_ROW,
                    trigger_access=trigger,
                    channel=channel,
                    bank=bank,
                    row=int(rng.integers(0, config.rows_per_bank)),
                )
            elif kind == "bank":
                spec = DeviceFaultSpec(
                    site=DEVICE_HBM_BANK,
                    trigger_access=trigger,
                    channel=channel,
                    bank=bank,
                )
            elif kind == "channel":
                spec = DeviceFaultSpec(
                    site=DEVICE_HBM_CHANNEL,
                    trigger_access=trigger,
                    channel=channel,
                )
            elif kind == "cmt":
                spec = DeviceFaultSpec(
                    site=DEVICE_CMT_FLIP,
                    trigger_access=trigger,
                    chunk_no=int(rng.integers(0, geometry.num_chunks)),
                    bit=int(rng.integers(0, 8)),
                )
            elif kind == "amu":
                spec = DeviceFaultSpec(
                    site=DEVICE_AMU_MISPROGRAM,
                    trigger_access=trigger,
                    mapping_index=int(rng.integers(1, max(2, live_mappings))),
                )
            else:
                raise DeviceFaultError(
                    f"unknown fault kind {kind!r}; "
                    "known: row, bank, channel, cmt, amu"
                )
            specs.append(spec)
            trigger += spacing
        return cls(specs)

    def retargeted(self, index: int, **changes) -> "DeviceFaultPlan":
        """A copy of the plan with one spec's fields replaced."""
        specs = list(self.specs)
        specs[index] = replace(specs[index], **changes)
        return DeviceFaultPlan(specs)
