"""The RAS controller: detect -> retire -> migrate -> verify.

Detection uses three independent signals, one per fault family:

* **ECC topology** (:class:`~repro.hbm.stats.DeviceHealth`): physical
  faults announce themselves as error clusters — one row, one bank, or
  most of a channel;
* **CMT shadow compare**: every driver write is mirrored into a shadow
  table, so an SRAM upset shows up as a live/shadow diff and rolls back
  from the shadow;
* **translation spot check**: a misprogrammed AMU crossbar applies a
  *valid but wrong* permutation — invisible to both signals above — so
  the scrubber compares live translations against the shadow-derived
  expectation.

Repair is software-defined remapping (:mod:`repro.ras.repair`): compose
a window permutation whose preimage of the faulty cube is retirable,
retire/relocate those pages, migrate the chunk's live data, and replay
the write journal through the healed translation.  A lost channel uses
the same machinery with the exact-channel cube — retiring
``1/num_channels`` of every chunk — and is reported as explicit
graceful degradation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.verification import audit_controller
from repro.errors import MappingIntegrityError, OutOfMemoryError
from repro.hbm.decode import decode_trace
from repro.ras.repair import FaultCube, compose_repair, cube_for, preimage_pages
from repro.core.bitmatrix import BitOperator

__all__ = ["RASController", "RASReport"]


@dataclass
class RASReport:
    """Structured outcome of a RAS campaign (or a sequence of scrubs)."""

    seed: int = 0
    faults_injected: list = field(default_factory=list)
    detections: list = field(default_factory=list)
    events: list = field(default_factory=list)
    scrubs: int = 0
    machine_checks: int = 0
    lines_migrated: int = 0
    pages_retired: int = 0
    pages_relocated: int = 0
    repair_cost_ns: float = 0.0
    lines_written: int = 0
    lines_survived: int = 0
    lines_lost: int = 0
    degraded: bool = False
    dead_channels: list = field(default_factory=list)
    residual_slowdown: float = 1.0
    fingerprint_match: bool = True
    all_detected: bool = True
    all_repaired: bool = True

    @property
    def ok(self) -> bool:
        """Every fault detected and repaired/degraded, no silent loss."""
        return self.all_detected and self.all_repaired and self.fingerprint_match

    def summary(self) -> str:
        """Multi-line human-readable campaign summary."""
        lines = [
            f"RAS campaign (seed {self.seed}): "
            f"{len(self.faults_injected)} faults injected, "
            f"{sum(1 for d in self.detections if d['detected'])} detected, "
            f"{sum(1 for d in self.detections if d['repaired'])} "
            "repaired/degraded",
            f"  scrubs {self.scrubs}, machine checks {self.machine_checks}, "
            f"repair cost {self.repair_cost_ns / 1e3:.1f} us",
            f"  migrated {self.lines_migrated} lines, retired "
            f"{self.pages_retired} pages, relocated {self.pages_relocated}",
            f"  data: {self.lines_survived}/{self.lines_written} lines "
            f"survived, {self.lines_lost} lost (ECC-reported)",
            f"  residual slowdown {self.residual_slowdown:.2f}x"
            + (
                f", degraded (channels {sorted(self.dead_channels)} folded "
                "out)"
                if self.degraded
                else ""
            ),
            f"  fingerprint match over surviving space: "
            f"{self.fingerprint_match}",
        ]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "seed": self.seed,
            "faults_injected": list(self.faults_injected),
            "detections": list(self.detections),
            "events": list(self.events),
            "scrubs": self.scrubs,
            "machine_checks": self.machine_checks,
            "lines_migrated": self.lines_migrated,
            "pages_retired": self.pages_retired,
            "pages_relocated": self.pages_relocated,
            "repair_cost_ns": self.repair_cost_ns,
            "lines_written": self.lines_written,
            "lines_survived": self.lines_survived,
            "lines_lost": self.lines_lost,
            "degraded": self.degraded,
            "dead_channels": sorted(self.dead_channels),
            "residual_slowdown": self.residual_slowdown,
            "fingerprint_match": self.fingerprint_match,
            "all_detected": self.all_detected,
            "all_repaired": self.all_repaired,
            "ok": self.ok,
        }


class RASController:
    """Orchestrates detect -> retire -> migrate -> verify on one machine."""

    def __init__(self, machine, seed: int = 0):
        self.machine = machine
        self.rng = np.random.default_rng(seed ^ 0x5AD)
        self.quarantined: list[FaultCube] = []
        self.dead_channels: set[int] = set()
        self.events: list[dict] = []
        self.scrubs = 0
        self.repair_cost_ns = 0.0
        self.lines_migrated = 0
        self.pages_relocated = 0
        self.degraded = False
        self._hook_installed = False

    # -- shortcuts ---------------------------------------------------------
    @property
    def sdam(self):
        return self.machine.sdam

    @property
    def kernel(self):
        return self.machine.kernel

    @property
    def physical(self):
        return self.machine.kernel.physical

    @property
    def geometry(self):
        return self.machine.geometry

    def _event(self, action: str, **detail) -> dict:
        record = {"action": action, "access": self.machine.accesses, **detail}
        self.events.append(record)
        return record

    # -- the scrub loop ----------------------------------------------------
    def scrub(self, trigger: str = "patrol") -> list[dict]:
        """One detect/repair pass; returns the actions taken."""
        self.scrubs += 1
        before = len(self.events)
        healed_control = self._scrub_control_state(trigger)
        healed_physical = self._scrub_physical(trigger)
        if healed_control or healed_physical:
            cost = self.machine.replay_journal()
            self.repair_cost_ns += cost
            # Post-repair verification: the strict audit must pass now;
            # a failure here is a repair bug, not a fault, so let it
            # propagate.
            audit_controller(self.sdam, sample_chunks=4, strict=True)
            self._event("verified", trigger=trigger)
        self.machine.mark_clean_scrub()
        return self.events[before:]

    def _scrub_control_state(self, trigger: str) -> bool:
        """CMT shadow compare + AMU spot check.  Returns True if healed."""
        machine = self.machine
        sdam = self.sdam
        shadow = sdam.shadow_cmt
        if shadow is None:
            return False
        healed = False
        delta = sdam.cmt.diff(shadow)
        if delta["entries"] or delta["configs"]:
            suspects = set(delta["entries"])
            for index in delta["configs"]:
                bound = np.nonzero(
                    shadow._chunk_table == np.uint16(index)
                )[0]
                suspects.update(int(c) for c in bound)
            repaired = sdam.cmt.restore_from(shadow)
            sdam.invalidate_caches()
            machine.poison_suspect_writes(suspects)
            self._event(
                "cmt-rollback",
                trigger=trigger,
                words_repaired=repaired,
                entries=delta["entries"],
                configs=delta["configs"],
            )
            healed = True
        # Spot check: the operator the datapath applies vs the operator
        # the (trusted) shadow configuration implies.  Catches a
        # misprogrammed crossbar applying a valid-but-wrong permutation.
        wrong = []
        sample = self.rng.integers(
            0, self.geometry.total_bytes, 64, dtype=np.uint64
        )
        for index in range(sdam.cmt.live_mappings):
            expected = sdam.amu.full_mapping(
                shadow.config_of(index), self.geometry
            ).as_operator()
            actual = sdam.operator_of(index)
            if not np.array_equal(
                np.asarray(actual.apply(sample)),
                np.asarray(expected.apply(sample)),
            ):
                wrong.append(index)
        if wrong:
            suspects = set()
            for index in wrong:
                bound = np.nonzero(
                    shadow._chunk_table == np.uint16(index)
                )[0]
                suspects.update(int(c) for c in bound)
            self.sdam.reprogram_crossbar()
            machine.poison_suspect_writes(suspects)
            self._event(
                "amu-reprogram", trigger=trigger, mapping_indices=wrong
            )
            healed = True
        return healed

    def _patrol_device(self) -> None:
        """Background read scrub of every live chunk's HA range.

        Real memory controllers patrol-scrub DRAM at idle priority so a
        fault is found even where demand traffic never reads — after a
        bank quarantine, for instance, the repaired mapping's channel
        bits are page-selected and a small working set may stop
        touching some channels entirely.  The scrubber works *below*
        translation (raw hardware addresses), so its coverage is
        independent of the current mappings; its traffic is modeled as
        free (idle-priority background reads).
        """
        geometry = self.geometry
        live = self.physical.live_chunks()
        if not live:
            return
        lines = np.arange(
            geometry.lines_per_chunk, dtype=np.uint64
        ) * np.uint64(geometry.line_bytes)
        ha = np.concatenate(
            [np.uint64(chunk.base_pa) + lines for chunk in live]
        )
        decoded = decode_trace(ha, self.machine.config)
        errors = self.machine._fault_mask(decoded)
        if errors.any():
            self.machine.health.record(decoded, errors)

    def _scrub_physical(self, trigger: str) -> bool:
        """Classify ECC topology and quarantine what it implicates."""
        self._patrol_device()
        health = self.machine.health
        suspects = health.suspects()
        if not suspects:
            return False
        healed = False
        for suspect in suspects:
            kind = suspect["kind"]
            if kind == "channel":
                healed |= self.degrade_channel(suspect["channel"], trigger)
            elif kind == "bank":
                healed |= self.repair_bank(
                    suspect["channel"], suspect["bank"], trigger
                )
            else:
                healed |= self.repair_row(
                    suspect["channel"],
                    suspect["bank"],
                    suspect["row"],
                    trigger,
                )
        health.reset()
        return healed

    # -- physical repairs --------------------------------------------------
    def _already_quarantined(self, cube: FaultCube) -> bool:
        return any(q.label == cube.label for q in self.quarantined)

    def repair_row(
        self, channel: int, bank: int, row: int, trigger: str = "patrol"
    ) -> bool:
        """Quarantine one stuck row: remap + migrate its single chunk."""
        cube = cube_for(
            self.machine.config,
            self.geometry,
            "row",
            channel=channel,
            bank=bank,
            row=row,
        )
        if self._already_quarantined(cube):
            return False
        self.quarantined.append(cube)
        self._install_hook()
        chunk = self.physical.chunk(cube.chunk_no)
        if chunk is not None:
            self._requarantine_chunk(chunk)
        self._event(
            "repair-row",
            trigger=trigger,
            channel=channel,
            bank=bank,
            row=row,
            chunk_no=cube.chunk_no,
            live=chunk is not None,
        )
        return True

    def repair_bank(
        self, channel: int, bank: int, trigger: str = "patrol"
    ) -> bool:
        """Quarantine a dead bank across every live chunk."""
        cube = cube_for(
            self.machine.config,
            self.geometry,
            "bank",
            channel=channel,
            bank=bank,
        )
        if self._already_quarantined(cube):
            return False
        self.quarantined.append(cube)
        self._install_hook()
        chunks = 0
        for chunk in self.physical.live_chunks():
            self._requarantine_chunk(chunk)
            chunks += 1
        self._event(
            "repair-bank",
            trigger=trigger,
            channel=channel,
            bank=bank,
            chunks=chunks,
        )
        return True

    def degrade_channel(self, channel: int, trigger: str = "patrol") -> bool:
        """Quarantine a lost channel: explicit graceful degradation.

        The exact-channel cube's preimage — ``1/num_channels`` of every
        chunk — is retired, so no allocatable address can select the
        dead channel.  Capacity shrinks accordingly; the event records
        it as degradation, not transparent repair.
        """
        if channel in self.dead_channels:
            return False
        cube = cube_for(
            self.machine.config, self.geometry, "channel", channel=channel
        )
        self.dead_channels.add(channel)
        self.degraded = True
        self.quarantined.append(cube)
        self._install_hook()
        chunks = 0
        for chunk in self.physical.live_chunks():
            self._requarantine_chunk(chunk)
            chunks += 1
        lost_fraction = 1.0 / self.machine.config.num_channels
        self._event(
            "degrade-channel",
            trigger=trigger,
            channel=channel,
            chunks=chunks,
            capacity_lost_fraction=lost_fraction,
        )
        return True

    # -- the retire/relocate/migrate core ----------------------------------
    def _requarantine_chunk(self, chunk) -> None:
        """Re-compose a chunk's mapping so every quarantined cube's
        preimage is retired, relocating live pages first."""
        cubes = [q for q in self.quarantined if q.applies_to(chunk.number)]
        if not cubes:
            return
        live_pages = set(chunk.live_page_offsets())
        perm, pages = compose_repair(
            self.geometry, cubes, self.rng, live_pages=live_pages
        )
        new_index = self.kernel.add_addr_map(perm)
        free_targets = [p for p in pages if p not in live_pages]
        self.physical.retire_pages(chunk.number, free_targets)
        for page in [p for p in pages if p in live_pages]:
            self._relocate_page(chunk, page)
        report = self.machine.migrator.migrate_chunk(
            chunk.number, new_index, on_copy=self.machine.copy_lines
        )
        self.lines_migrated += report.lines_copied
        self.repair_cost_ns += report.cost_ns

    def _relocate_page(self, chunk, page: int) -> None:
        """Move one live page off a to-be-retired frame, data included."""
        geometry = self.geometry
        frame_pa = chunk.base_pa + (page << geometry.page_bits)
        lines_per_page = geometry.page_bytes // geometry.line_bytes
        src_pa = np.uint64(frame_pa) + np.arange(
            lines_per_page, dtype=np.uint64
        ) * np.uint64(geometry.line_bytes)
        try:
            new_pa = self.kernel.relocate_frame(frame_pa)
        except OutOfMemoryError:
            # No spare capacity: the page cannot move, its data will be
            # reported lost (ECC) rather than silently corrupted.
            self._event(
                "relocation-oom", chunk_no=chunk.number, page=page
            )
            return
        if new_pa is None:
            return
        dst_pa = np.uint64(new_pa) + np.arange(
            lines_per_page, dtype=np.uint64
        ) * np.uint64(geometry.line_bytes)
        reads = self.sdam.translate(src_pa)
        writes = self.sdam.translate(dst_pa)
        self.machine.copy_lines(src_pa, reads, writes)
        copy_trace = np.stack([reads, writes], axis=1).reshape(-1)
        self.repair_cost_ns += self.machine.backend.simulate(
            copy_trace
        ).makespan_ns
        self.pages_relocated += 1

    def _install_hook(self) -> None:
        """Retire quarantined preimages in chunks acquired from now on."""
        if self._hook_installed:
            return
        self.physical.new_chunk_hook = self._prepare_new_chunk
        self._hook_installed = True

    def _prepare_new_chunk(self, chunk) -> None:
        cubes = [q for q in self.quarantined if q.applies_to(chunk.number)]
        if not cubes:
            return
        shadow = self.sdam.shadow_cmt or self.sdam.cmt
        index = shadow.mapping_index_of(chunk.number)
        operator = BitOperator.from_permutation(shadow.config_of(index))
        pages: set[int] = set()
        for cube in cubes:
            pages.update(preimage_pages(operator, cube, self.geometry))
        self.physical.retire_pages(chunk.number, sorted(pages))

    # -- verification -------------------------------------------------------
    def verify_clean(self) -> bool:
        """True when a strict audit passes on the current state."""
        try:
            audit_controller(self.sdam, sample_chunks=4, strict=True)
        except MappingIntegrityError:
            return False
        return True
