"""Sparse modeled device contents, with poison tracking.

The performance models carry no data; RAS campaigns need some, because
"repaired" must mean *the bytes are still right*.  :class:`DeviceStorage`
holds line values keyed by hardware address, plus a poison set marking
lines whose contents were destroyed (written to dead hardware, or
clobbered by misdirected writes during a control-state corruption
window).  Poison is sticky until a healthy write lands on the line —
exactly ECC semantics: reads of a poisoned line flag an error instead
of silently returning garbage.
"""

from __future__ import annotations

__all__ = ["DeviceStorage"]


class DeviceStorage:
    """Line-granular sparse storage: ``{ha_line: value}`` + poison set."""

    def __init__(self):
        self._values: dict[int, int] = {}
        self.poisoned: set[int] = set()

    def __len__(self) -> int:
        return len(self._values)

    def write(self, ha_line: int, value: int, healthy: bool = True) -> None:
        """Store one line.  Unhealthy writes destroy instead of storing."""
        ha_line = int(ha_line)
        if healthy:
            self._values[ha_line] = int(value)
            self.poisoned.discard(ha_line)
        else:
            self._values.pop(ha_line, None)
            self.poisoned.add(ha_line)

    def read(self, ha_line: int) -> tuple[int | None, bool]:
        """``(value, ecc_error)`` — value is None if never written/lost."""
        ha_line = int(ha_line)
        if ha_line in self.poisoned:
            return None, True
        return self._values.get(ha_line), False

    def poison(self, ha_line: int) -> None:
        """Destroy a line in place (a fault struck stored data)."""
        ha_line = int(ha_line)
        self._values.pop(ha_line, None)
        self.poisoned.add(ha_line)

    def move(self, src: int, dst: int) -> bool:
        """Copy a line ``src -> dst`` (migration); returns True if the
        moved data is intact.  Poison travels with the data; unwritten
        sources leave the destination unwritten."""
        src, dst = int(src), int(dst)
        if src in self.poisoned:
            self.poisoned.discard(src)
            self.poison(dst)
            return False
        if src in self._values:
            self._values[dst] = self._values.pop(src)
            self.poisoned.discard(dst)
        return True

    def move_many(self, srcs, dsts) -> int:
        """Move a batch of lines as one atomic permutation copy.

        Migration rewrites a chunk in place: the destination set can
        overlap the source set, so a sequential per-line move would
        clobber not-yet-read sources.  All sources are read (and
        cleared) first, then all destinations written.  Returns the
        number of intact lines moved.
        """
        srcs = [int(s) for s in srcs]
        dsts = [int(d) for d in dsts]
        values = [self._values.get(s) for s in srcs]
        poisons = [s in self.poisoned for s in srcs]
        for s in srcs:
            self._values.pop(s, None)
            self.poisoned.discard(s)
        intact = 0
        for d, value, poisoned in zip(dsts, values, poisons):
            if poisoned:
                self.poison(d)
            elif value is not None:
                self._values[d] = value
                self.poisoned.discard(d)
                intact += 1
        return intact

    def occupied_lines(self) -> list[int]:
        """Sorted HAs holding values (deterministic iteration order)."""
        return sorted(self._values)

    def poisoned_lines(self) -> list[int]:
        """Sorted HAs marked destroyed."""
        return sorted(self.poisoned)
