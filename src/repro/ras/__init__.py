"""Device-level RAS: inject modeled-hardware faults, detect, repair.

The package extends the deterministic fault machinery of
:mod:`repro.faults` into the device model.  A seeded
:class:`DeviceFaultPlan` injects stuck rows, dead banks, lost channels,
CMT bit flips and AMU misprogramming into a live
:class:`~repro.ras.campaign.RASMachine`; the :class:`RASController`
detects them (ECC topology, CMT shadow compare, translation spot
checks) and repairs by software-defined remapping — composing a
replacement window permutation whose preimage of the faulty region is
retirable, migrating live data onto it, and gracefully degrading to a
reduced-channel mapping when a whole channel is lost.

Entry points: ``python -m repro ras`` runs a seeded campaign;
:func:`run_campaign` is the library equivalent.
"""

from repro.ras.campaign import CampaignResult, RASMachine, run_campaign
from repro.ras.controller import RASController, RASReport
from repro.ras.faults import DeviceFaultPlan, DeviceFaultSpec
from repro.ras.repair import FaultCube, compose_repair, cube_for, preimage_pages
from repro.ras.storage import DeviceStorage

__all__ = [
    "CampaignResult",
    "DeviceFaultPlan",
    "DeviceFaultSpec",
    "DeviceStorage",
    "FaultCube",
    "RASController",
    "RASMachine",
    "RASReport",
    "compose_repair",
    "cube_for",
    "preimage_pages",
    "run_campaign",
]
