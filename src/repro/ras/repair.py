"""Repair composition: mappings whose preimage of a fault is retirable.

The key observation (and the reason software-defined address mapping
doubles as a RAS mechanism): a faulty device region — one stuck row,
one dead bank, half the channels — is a *cube* in hardware-address
space, a set of fixed bit values inside the chunk-offset window.  Any
window permutation maps some set of chunk offsets onto that cube; the
repair composer searches for a permutation whose preimage collapses
into as few — and as empty — physical pages as possible.  Those pages
are retired, live ones are relocated first, and the chunk migrates to
the composed mapping, after which no allocatable address can reach the
fault.

Structured candidates route the cube's *free* (varying) output bits to
the lowest window inputs, so the preimage spans the fewest pages — one
page for a stuck row, two for a dead bank — while seeded shuffles of
the fixed-bit assignment move *which* pages those are until they land
on free ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bitmatrix import BitOperator
from repro.core.chunks import ChunkGeometry
from repro.errors import DeviceFaultError
from repro.hbm.config import HBMConfig

__all__ = [
    "FaultCube",
    "compose_repair",
    "cube_for",
    "cube_offsets",
    "fold_cube",
    "preimage_pages",
    "row_fault_chunk",
]


@dataclass(frozen=True)
class FaultCube:
    """A faulty device region as fixed bits of the HA chunk window.

    ``fixed`` is a tuple of ``(window_bit, value)`` pairs: a hardware
    address (within any chunk) lies on the cube iff its window value
    carries exactly those bits.  ``chunk_no`` restricts the cube to one
    chunk (a stuck row lives in a single chunk because the high row
    bits come from the untouched chunk number); ``None`` means every
    chunk is affected.
    """

    fixed: tuple[tuple[int, int], ...]
    label: str = ""
    chunk_no: int | None = None

    @property
    def mask(self) -> int:
        """OR of the fixed window bits."""
        return sum(1 << bit for bit, _value in self.fixed)

    @property
    def value(self) -> int:
        """The fixed bits' values, in place."""
        return sum(value << bit for bit, value in self.fixed)

    def matches(self, window_values: np.ndarray) -> np.ndarray:
        """Boolean mask of window values lying on the cube."""
        window_values = np.asarray(window_values)
        return (window_values & self.mask) == self.value

    def applies_to(self, chunk_no: int) -> bool:
        """True if the cube affects the given chunk."""
        return self.chunk_no is None or self.chunk_no == int(chunk_no)


def _window_bits_of_field(
    config: HBMConfig, geometry: ChunkGeometry, name: str
) -> list[tuple[int, int]]:
    """``(window_bit, field_bit)`` pairs of a layout field's in-window part."""
    layout = config.layout()
    fld = layout[name]
    low, high = geometry.window_slice()
    pairs = []
    for field_bit in range(fld.width):
        address_bit = fld.shift + field_bit
        if low <= address_bit < high:
            pairs.append((address_bit - low, field_bit))
    return pairs


def _fix_field(
    config: HBMConfig,
    geometry: ChunkGeometry,
    name: str,
    value: int,
) -> list[tuple[int, int]]:
    return [
        (window_bit, (value >> field_bit) & 1)
        for window_bit, field_bit in _window_bits_of_field(
            config, geometry, name
        )
    ]


def row_fault_chunk(
    config: HBMConfig, geometry: ChunkGeometry, row: int
) -> int:
    """The single chunk a stuck row lives in.

    The row field's high bits lie above the chunk window, i.e. they
    *are* (part of) the chunk number, which translation preserves — so
    one full row index pins one chunk.
    """
    layout = config.layout()
    row_shift = layout["row"].shift
    in_window = geometry.chunk_shift - row_shift
    if in_window <= 0:
        raise DeviceFaultError("row field lies entirely above the window")
    return int(row) >> in_window


def cube_for(
    config: HBMConfig,
    geometry: ChunkGeometry,
    kind: str,
    channel: int | None = None,
    bank: int | None = None,
    row: int | None = None,
) -> FaultCube:
    """The fault cube for a physical fault kind.

    ``row`` faults carry the affected chunk number; ``bank`` and
    ``channel`` cubes span every chunk.
    """
    if kind == "row":
        fixed = (
            _fix_field(config, geometry, "channel", channel)
            + _fix_field(config, geometry, "bank", bank)
            + _fix_field(config, geometry, "row", row)
        )
        return FaultCube(
            fixed=tuple(sorted(fixed)),
            label=f"row ch{channel} b{bank} r{row}",
            chunk_no=row_fault_chunk(config, geometry, row),
        )
    if kind == "bank":
        fixed = _fix_field(config, geometry, "channel", channel) + _fix_field(
            config, geometry, "bank", bank
        )
        return FaultCube(
            fixed=tuple(sorted(fixed)), label=f"bank ch{channel} b{bank}"
        )
    if kind == "channel":
        fixed = _fix_field(config, geometry, "channel", channel)
        return FaultCube(fixed=tuple(sorted(fixed)), label=f"channel {channel}")
    raise DeviceFaultError(f"unknown physical fault kind {kind!r}")


def fold_cube(
    config: HBMConfig, geometry: ChunkGeometry, dead_channel: int
) -> FaultCube:
    """The degradation cube: the top channel bit pinned to the dead side.

    A permutation cannot synthesise constants, so a lost channel cannot
    be excised exactly — instead the machine folds away the half of the
    device sharing the dead channel's top channel bit.  Retiring this
    cube's preimage guarantees no allocatable address selects the dead
    channel (it over-retires 15 healthy channels' worth of addresses;
    that is the graceful-degradation capacity cost).
    """
    pairs = _window_bits_of_field(config, geometry, "channel")
    if not pairs:
        raise DeviceFaultError("channel field lies outside the window")
    top_window_bit, top_field_bit = pairs[-1]
    side = (int(dead_channel) >> top_field_bit) & 1
    return FaultCube(
        fixed=((top_window_bit, side),),
        label=f"fold ch-top={side} (dead ch{dead_channel})",
    )


def cube_offsets(
    operator: BitOperator, cube: FaultCube, window_bits: int
) -> np.ndarray:
    """PA-side window offsets that ``operator`` maps onto the cube."""
    offsets = np.arange(1 << window_bits, dtype=np.uint64)
    out = np.asarray(operator.apply(offsets))
    return offsets[cube.matches(out)]


def preimage_pages(
    operator: BitOperator, cube: FaultCube, geometry: ChunkGeometry
) -> list[int]:
    """Chunk-relative page offsets whose lines can reach the cube."""
    offsets = cube_offsets(operator, cube, geometry.window_bits)
    page_low_bits = geometry.page_bits - geometry.line_bits
    return sorted({int(o) >> page_low_bits for o in offsets})


def _candidate_perms(geometry, cubes, rng, attempts):
    """Yield window permutations to score: structured first, then seeded.

    AMU semantics: ``perm[output_bit] = input_bit``.  The structured
    candidate for a cube sends the cube's free output bits to the
    lowest inputs (collapsing the preimage into the fewest pages);
    shuffling the fixed-bit inputs moves which pages those are.
    """
    window_bits = geometry.window_bits
    for primary in cubes:
        fixed_out = sorted(bit for bit, _v in primary.fixed)
        free_out = [b for b in range(window_bits) if b not in fixed_out]
        perm = np.empty(window_bits, dtype=np.int64)
        for position, out in enumerate(free_out):
            perm[out] = position
        remaining = list(range(len(free_out), window_bits))
        for out, inp in zip(fixed_out, remaining):
            perm[out] = inp
        yield perm.copy()
        for _ in range(max(0, attempts - 1) // max(1, len(cubes))):
            shuffled = rng.permutation(remaining)
            for out, inp in zip(fixed_out, shuffled):
                perm[out] = inp
            yield perm.copy()
    # Unstructured fallback: occasionally a plain random permutation
    # scores better when several cubes constrain each other.
    for _ in range(attempts // 4):
        yield rng.permutation(window_bits).astype(np.int64)


def compose_repair(
    geometry: ChunkGeometry,
    cubes,
    rng,
    live_pages=frozenset(),
    attempts: int = 48,
) -> tuple[np.ndarray, list[int]]:
    """Search for a window permutation that quarantines every cube.

    Returns ``(window_perm, pages_to_retire)`` where the pages are the
    union of all cubes' preimages under the permutation.  Candidates
    are scored by ``(live pages hit, total pages)`` — live pages mean
    relocation work, total pages mean capacity cost — and the search
    stops early at a zero-relocation candidate.
    """
    cubes = list(cubes)
    if not cubes:
        raise DeviceFaultError("nothing to repair: no fault cubes")
    live_pages = set(int(p) for p in live_pages)
    best_perm = None
    best_pages: list[int] = []
    best_score = None
    for perm in _candidate_perms(geometry, cubes, rng, attempts):
        operator = BitOperator.from_permutation(perm)
        pages: set[int] = set()
        for cube in cubes:
            pages.update(preimage_pages(operator, cube, geometry))
        score = (len(pages & live_pages), len(pages))
        if best_score is None or score < best_score:
            best_score = score
            best_perm = perm
            best_pages = sorted(pages)
            if score[0] == 0 and len(cubes) == 1:
                break
    return best_perm, best_pages
