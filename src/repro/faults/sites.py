"""Named fault-injection sites of the experiment engine.

A *fault site* is a stable string naming one place where a
:class:`~repro.faults.plan.FaultPlan` may act.  Sites come in two
families, distinguished by the token the engine passes alongside:

``store.load.<kind>``
    Checked by :class:`~repro.system.tracefile.StageStore` just before
    reading a cached entry; the token is the entry's cache key.  The
    only useful fault kind here is ``corrupt`` (garble the blob on
    disk so the checksum/decode path must heal it).

``worker.<stage>``
    Checked at the start of each compute stage, whether it runs in a
    worker process or inline.  The token is ``"<workload>:<system>"``
    for cell stages and the bare workload name for the shared
    profiling phase.  Useful kinds: ``raise`` (simulated crash),
    ``stall`` (sleep past the cell timeout) and ``break-pool``
    (``os._exit`` the worker so the whole pool breaks).

Site patterns in a :class:`FaultSpec` are ``fnmatch`` globs, so
``store.load.*`` or ``worker.*`` cover a family.
"""

from __future__ import annotations

from fnmatch import fnmatch

__all__ = [
    "KNOWN_SITES",
    "STORE_LOAD_PROFILE",
    "STORE_LOAD_RESULT",
    "STORE_LOAD_SELECTION",
    "STORE_LOAD_SWEEP",
    "STORE_LOAD_TRACE",
    "WORKER_EVALUATE",
    "WORKER_PROFILE",
    "WORKER_SELECTION",
    "matches_known_site",
]

STORE_LOAD_TRACE = "store.load.trace"
STORE_LOAD_PROFILE = "store.load.profile"
STORE_LOAD_SELECTION = "store.load.selection"
STORE_LOAD_RESULT = "store.load.result"
STORE_LOAD_SWEEP = "store.load.sweep"
WORKER_PROFILE = "worker.profile"
WORKER_SELECTION = "worker.selection"
WORKER_EVALUATE = "worker.evaluate"

KNOWN_SITES = (
    STORE_LOAD_TRACE,
    STORE_LOAD_PROFILE,
    STORE_LOAD_SELECTION,
    STORE_LOAD_RESULT,
    STORE_LOAD_SWEEP,
    WORKER_PROFILE,
    WORKER_SELECTION,
    WORKER_EVALUATE,
)


def matches_known_site(pattern: str) -> bool:
    """Whether a site pattern can ever match a real injection point."""
    return any(fnmatch(site, pattern) for site in KNOWN_SITES)
