"""Named fault-injection sites.

A *fault site* is a stable string naming one place where fault machinery
may act.  Sites come in two *families* with different injectors:

**Engine sites** — checked by the experiment engine, injected through a
:class:`~repro.faults.plan.FaultPlan`:

``store.load.<kind>``
    Checked by :class:`~repro.system.tracefile.StageStore` just before
    reading a cached entry; the token is the entry's cache key.  The
    only useful fault kind here is ``corrupt`` (garble the blob on
    disk so the checksum/decode path must heal it).

``worker.<stage>``
    Checked at the start of each compute stage, whether it runs in a
    worker process or inline.  The token is ``"<workload>:<system>"``
    for cell stages and the bare workload name for the shared
    profiling phase.  Useful kinds: ``raise`` (simulated crash),
    ``stall`` (sleep past the cell timeout) and ``break-pool``
    (``os._exit`` the worker so the whole pool breaks).

**Device sites** — modeled-hardware failures, injected through a
:class:`~repro.ras.faults.DeviceFaultPlan` at access-count trigger
points:

``device.hbm.row`` / ``device.hbm.bank`` / ``device.hbm.channel``
    A stuck DRAM row, a dead bank, a lost channel.  Accesses landing on
    the failed region return ECC errors; writes are dropped.

``device.cmt.flip``
    An SRAM bit upset in the CMT: either a first-level chunk entry
    (chunk silently rebinds to another — or an unknown — mapping) or a
    second-level configuration lane (the stored permutation corrupts).

``device.amu.misprogram``
    The AMU crossbar applies a *valid but wrong* permutation for one
    mapping index while the CMT SRAM stays correct — the failure a
    shadow compare cannot see and only translation spot checks catch.

**Backend sites** — guarded-execution failures inside the memory
backends, injected through the same :class:`~repro.faults.plan.
FaultPlan` as engine sites (they share its deterministic firing
machinery).  Unlike engine sites, where the spec's *kind* chooses the
effect, a backend site *names* its effect; the spec's ``seconds``
parameterises the stall and the other kinds are advisory:

``backend.shard.crash``
    The shard supervisor's worker raises mid-shard (a crashed shard);
    the token is ``shard<index>``.  Recovery: retry with backoff,
    then shard-granular serial fallback.

``backend.shard.stall``
    The worker sleeps ``seconds`` before evaluating its shard,
    driving it past the supervisor's per-shard timeout.  Recovery:
    the stalled pool is abandoned and the shard re-runs in-process.

``backend.shard.stats``
    The shard returns a *corrupted* partial ``RunStats`` (counters
    garbled).  Recovery: the supervisor's merge-time validation
    rejects it and re-runs the shard in-process.

``backend.divergence``
    The divergence guard's sampled primary-tier result is perturbed,
    forcing a cross-tier mismatch; the token is ``chunk<index>``.
    Recovery: the run demotes primary → reference with a structured
    report.

**Service sites** — failures inside the continuous multi-tenant
front-end's tenant lanes, injected through the same
:class:`~repro.faults.plan.FaultPlan` as engine and backend sites.
Like the ``backend.*`` family, a service site *names* its effect;
tokens are the tenant name (lane-level sites) or
``<tenant>:<job id>`` (job-level sites):

``service.lane.crash``
    The tenant's lane thread dies after dequeuing a job (the job is
    requeued first, so no work is lost silently).  Recovery: the lane
    supervisor records a strike and restarts the lane; ``K``
    consecutive strikes quarantine the tenant.

``service.lane.stall``
    The lane sleeps ``seconds`` mid-job, driving the job past its
    deadline.  Recovery: the supervisor abandons the wedged lane
    thread (its late result is discarded by generation check), marks
    the job timed out, and starts a replacement lane.

``service.job.crash``
    One job's execution raises before the pipeline runs.  Recovery:
    the lane's retry-with-backoff (reusing the experiment engine's
    :class:`~repro.system.runner.RetryPolicy`) re-runs the job;
    injected faults never fire on retries, so the job converges.

Site patterns in a :class:`FaultSpec` are ``fnmatch`` globs, so
``store.load.*`` or ``device.hbm.*`` cover a family.  Each injector
validates patterns against *its* family, so a spec that could never
fire (e.g. a ``device.*`` pattern handed to the engine's ``FaultPlan``)
fails fast at construction instead of silently never firing.
"""

from __future__ import annotations

from fnmatch import fnmatch

__all__ = [
    "BACKEND_DIVERGENCE",
    "BACKEND_SHARD_CRASH",
    "BACKEND_SHARD_STALL",
    "BACKEND_SHARD_STATS",
    "BACKEND_SITES",
    "DEVICE_AMU_MISPROGRAM",
    "DEVICE_CMT_FLIP",
    "DEVICE_HBM_BANK",
    "DEVICE_HBM_CHANNEL",
    "DEVICE_HBM_ROW",
    "DEVICE_SITES",
    "ENGINE_SITES",
    "KNOWN_SITES",
    "SERVICE_JOB_CRASH",
    "SERVICE_LANE_CRASH",
    "SERVICE_LANE_STALL",
    "SERVICE_SITES",
    "STORE_LOAD_PROFILE",
    "STORE_LOAD_RESULT",
    "STORE_LOAD_SELECTION",
    "STORE_LOAD_SWEEP",
    "STORE_LOAD_TRACE",
    "WORKER_EVALUATE",
    "WORKER_PROFILE",
    "WORKER_SELECTION",
    "matches_known_site",
]

STORE_LOAD_TRACE = "store.load.trace"
STORE_LOAD_PROFILE = "store.load.profile"
STORE_LOAD_SELECTION = "store.load.selection"
STORE_LOAD_RESULT = "store.load.result"
STORE_LOAD_SWEEP = "store.load.sweep"
WORKER_PROFILE = "worker.profile"
WORKER_SELECTION = "worker.selection"
WORKER_EVALUATE = "worker.evaluate"

DEVICE_HBM_ROW = "device.hbm.row"
DEVICE_HBM_BANK = "device.hbm.bank"
DEVICE_HBM_CHANNEL = "device.hbm.channel"
DEVICE_CMT_FLIP = "device.cmt.flip"
DEVICE_AMU_MISPROGRAM = "device.amu.misprogram"

BACKEND_SHARD_CRASH = "backend.shard.crash"
BACKEND_SHARD_STALL = "backend.shard.stall"
BACKEND_SHARD_STATS = "backend.shard.stats"
BACKEND_DIVERGENCE = "backend.divergence"

SERVICE_LANE_CRASH = "service.lane.crash"
SERVICE_LANE_STALL = "service.lane.stall"
SERVICE_JOB_CRASH = "service.job.crash"

#: Sites the experiment engine's FaultPlan can act on.
ENGINE_SITES = (
    STORE_LOAD_TRACE,
    STORE_LOAD_PROFILE,
    STORE_LOAD_SELECTION,
    STORE_LOAD_RESULT,
    STORE_LOAD_SWEEP,
    WORKER_PROFILE,
    WORKER_SELECTION,
    WORKER_EVALUATE,
)

#: Modeled-hardware sites the RAS DeviceFaultPlan can act on.
DEVICE_SITES = (
    DEVICE_HBM_ROW,
    DEVICE_HBM_BANK,
    DEVICE_HBM_CHANNEL,
    DEVICE_CMT_FLIP,
    DEVICE_AMU_MISPROGRAM,
)

#: Guarded-execution sites inside the memory backends, checked by the
#: shard supervisor and the cross-tier divergence guard.  They fire
#: through the engine :class:`~repro.faults.plan.FaultPlan`.
BACKEND_SITES = (
    BACKEND_SHARD_CRASH,
    BACKEND_SHARD_STALL,
    BACKEND_SHARD_STATS,
    BACKEND_DIVERGENCE,
)

#: Tenant-lane sites inside the continuous service front-end, checked
#: by the lane loop and the lane supervisor.  They fire through the
#: engine :class:`~repro.faults.plan.FaultPlan`.
SERVICE_SITES = (
    SERVICE_LANE_CRASH,
    SERVICE_LANE_STALL,
    SERVICE_JOB_CRASH,
)

KNOWN_SITES = ENGINE_SITES + DEVICE_SITES + BACKEND_SITES + SERVICE_SITES

_FAMILIES = {
    None: KNOWN_SITES,
    "engine": ENGINE_SITES,
    "device": DEVICE_SITES,
    "backend": BACKEND_SITES,
    "service": SERVICE_SITES,
}


def matches_known_site(pattern: str, family: str | None = None) -> bool:
    """Whether a site pattern can ever match a real injection point.

    ``family`` restricts the check to one injector's sites
    (``"engine"`` or ``"device"``); the default spans both families.
    """
    return any(fnmatch(site, pattern) for site in _FAMILIES[family])
