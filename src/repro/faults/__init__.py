"""Deterministic fault injection for resilience testing.

Two injectors share the site namespace of :mod:`repro.faults.sites`:

* the experiment engine's failure paths — corrupt cache entries,
  crashing workers, stalled cells, broken process pools — exercised
  through :class:`FaultPlan` (see :mod:`repro.faults.plan`);
* modeled-hardware failures — stuck rows, dead banks, lost channels,
  CMT bit flips, AMU misprogramming — exercised through the
  ``device.*`` family and :class:`repro.ras.DeviceFaultPlan`.
"""

from repro.faults.plan import ENV_VAR, FAULT_KINDS, FaultPlan, FaultSpec
from repro.faults.sites import (
    DEVICE_SITES,
    ENGINE_SITES,
    KNOWN_SITES,
    matches_known_site,
)

__all__ = [
    "DEVICE_SITES",
    "ENGINE_SITES",
    "ENV_VAR",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "KNOWN_SITES",
    "matches_known_site",
]
