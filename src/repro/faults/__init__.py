"""Deterministic fault injection for resilience testing.

The engine's failure paths — corrupt cache entries, crashing workers,
stalled cells, broken process pools — are exercised through
:class:`FaultPlan`: a picklable, seedable description of what to break
and where.  See :mod:`repro.faults.sites` for the injection points and
:mod:`repro.faults.plan` for the firing semantics.
"""

from repro.faults.plan import ENV_VAR, FAULT_KINDS, FaultPlan, FaultSpec
from repro.faults.sites import KNOWN_SITES, matches_known_site

__all__ = [
    "ENV_VAR",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "KNOWN_SITES",
    "matches_known_site",
]
