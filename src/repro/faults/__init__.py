"""Deterministic fault injection for resilience testing.

Four site families share the namespace of :mod:`repro.faults.sites`:

* the experiment engine's failure paths — corrupt cache entries,
  crashing workers, stalled cells, broken process pools — exercised
  through :class:`FaultPlan` (see :mod:`repro.faults.plan`);
* modeled-hardware failures — stuck rows, dead banks, lost channels,
  CMT bit flips, AMU misprogramming — exercised through the
  ``device.*`` family and :class:`repro.ras.DeviceFaultPlan`;
* guarded backend execution — shard crashes/stalls, corrupted shard
  stats, forced cross-tier divergence — exercised through the
  ``backend.*`` family, fired by the same :class:`FaultPlan` inside
  the shard supervisor and the divergence guard;
* the continuous service front-end — lane crashes, lane stalls, job
  crashes — exercised through the ``service.*`` family, fired by the
  same :class:`FaultPlan` inside the tenant lanes and their
  supervisor.
"""

from repro.faults.plan import ENV_VAR, FAULT_KINDS, FaultPlan, FaultSpec
from repro.faults.sites import (
    BACKEND_SITES,
    DEVICE_SITES,
    ENGINE_SITES,
    KNOWN_SITES,
    SERVICE_SITES,
    matches_known_site,
)

__all__ = [
    "BACKEND_SITES",
    "DEVICE_SITES",
    "ENGINE_SITES",
    "ENV_VAR",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "KNOWN_SITES",
    "SERVICE_SITES",
    "matches_known_site",
]
