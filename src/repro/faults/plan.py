"""Deterministic, seedable fault injection for the experiment engine.

A :class:`FaultPlan` is a picklable description of *which* failures to
inject *where*: each :class:`FaultSpec` names a site pattern (see
:mod:`repro.faults.sites`), a fault kind, a token match, and a firing
budget.  Plans are pure data — no wall-clock, no global randomness —
so the same plan against the same sweep injects the same faults in
every process, which is what makes fault-path tests reproducible:

* *Determinism*: probabilistic specs decide via a stable hash of
  ``(plan seed, site, token)``, never ``random``.
* *First attempts only*: a fault never fires on a retry
  (``attempt > 1``), so every injected transient failure converges.
* *Bounded firing*: ``times`` caps how often a spec fires.  With a
  ``ledger_dir`` the cap is enforced across processes through atomic
  marker files; without one, per-process counters apply (the runner
  attaches a ledger automatically when it has a cache directory).

Activate a plan with ``Session(faults=...)`` or through the
``REPRO_FAULT_PLAN`` environment variable (inline JSON or a path to a
JSON file), which is how CI exercises the failure paths.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

from repro.core.keys import stable_hash
from repro.errors import ConfigError, WorkerCrashError
from repro.faults.sites import (
    BACKEND_SITES,
    ENGINE_SITES,
    SERVICE_SITES,
    matches_known_site,
)

__all__ = ["ENV_VAR", "FAULT_KINDS", "FaultPlan", "FaultSpec"]

ENV_VAR = "REPRO_FAULT_PLAN"
FAULT_KINDS = ("raise", "stall", "corrupt", "break-pool")


def _corrupt_file(path: Path) -> None:
    """Truncate and garble a blob so checksums/decoders must reject it."""
    try:
        data = path.read_bytes()
    except OSError:
        return
    path.write_bytes(data[: len(data) // 2] + b"\xde\xad\xbe\xef")


@dataclass(frozen=True)
class FaultSpec:
    """One injectable failure: where, what, how often.

    ``site`` and ``match`` are ``fnmatch`` patterns over the site name
    and the engine-supplied token (cache key or ``workload:system``).
    ``times`` bounds total firings; ``probability`` thins matching
    events deterministically from the plan seed; ``seconds`` is the
    stall duration for ``kind="stall"``.
    """

    site: str
    kind: str = "raise"
    match: str = "*"
    times: int = 1
    probability: float = 1.0
    seconds: float = 0.0
    message: str = "injected fault"

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if not (
            matches_known_site(self.site, family="engine")
            or matches_known_site(self.site, family="backend")
            or matches_known_site(self.site, family="service")
        ):
            hint = (
                "; device.* sites are injected through "
                "repro.ras.DeviceFaultPlan, not the engine FaultPlan"
                if matches_known_site(self.site, family="device")
                else ""
            )
            raise ConfigError(
                f"fault site pattern {self.site!r} matches no engine, "
                f"backend or service fault site (known: "
                f"{', '.join(ENGINE_SITES + BACKEND_SITES + SERVICE_SITES)})"
                f"{hint}"
            )
        if self.times < 1:
            raise ConfigError("a fault spec must allow at least one firing")

    def spec_id(self) -> str:
        """A stable identifier for ledger bookkeeping."""
        return stable_hash(
            "fault-spec", self.site, self.kind, self.match, self.times,
            self.probability, self.seconds,
        )[:16]

    def to_dict(self) -> dict:
        """A JSON-serialisable form."""
        return {
            "site": self.site,
            "kind": self.kind,
            "match": self.match,
            "times": self.times,
            "probability": self.probability,
            "seconds": self.seconds,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        """Rebuild a spec, tolerating missing/extra keys."""
        return cls(
            site=str(data["site"]),
            kind=str(data.get("kind", "raise")),
            match=str(data.get("match", "*")),
            times=int(data.get("times", 1)),
            probability=float(data.get("probability", 1.0)),
            seconds=float(data.get("seconds", 0.0)),
            message=str(data.get("message", "injected fault")),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of fault specs plus the firing machinery."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0
    ledger_dir: str | None = None
    _fired: dict = field(
        default_factory=dict, init=False, compare=False, repr=False
    )

    # -- construction --------------------------------------------------------
    @classmethod
    def single(cls, site: str, **spec_kwargs) -> "FaultPlan":
        """A one-spec plan (the common test-fixture shape)."""
        return cls(specs=(FaultSpec(site=site, **spec_kwargs),))

    def with_ledger(self, ledger_dir: str | Path) -> "FaultPlan":
        """The same plan counting firings through an on-disk ledger."""
        return dataclasses.replace(self, ledger_dir=str(ledger_dir))

    # -- serialisation (the REPRO_FAULT_PLAN hook) ---------------------------
    def to_dict(self) -> dict:
        """A JSON-serialisable form."""
        return {
            "seed": self.seed,
            "ledger_dir": self.ledger_dir,
            "specs": [spec.to_dict() for spec in self.specs],
        }

    def to_json(self, **json_kwargs) -> str:
        """JSON text of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), **json_kwargs)

    @classmethod
    def from_dict(cls, data: dict | list) -> "FaultPlan":
        """Rebuild a plan; a bare list is read as a spec list."""
        if isinstance(data, list):
            data = {"specs": data}
        return cls(
            specs=tuple(
                FaultSpec.from_dict(spec) for spec in data.get("specs", ())
            ),
            seed=int(data.get("seed", 0)),
            ledger_dir=data.get("ledger_dir"),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Rebuild a plan from JSON text."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_env(cls, env_var: str = ENV_VAR) -> "FaultPlan | None":
        """The plan named by ``$REPRO_FAULT_PLAN``, if any.

        The variable holds either inline JSON or a path to a JSON file.
        """
        raw = os.environ.get(env_var)
        if not raw or not raw.strip():
            return None
        text = raw.strip()
        if not text.startswith(("{", "[")):
            text = Path(text).read_text()
        return cls.from_json(text)

    # -- firing --------------------------------------------------------------
    def _chance(self, spec: FaultSpec, site: str, token: str) -> float:
        """A stable fraction in [0, 1) for a (seed, site, token) event."""
        digest = stable_hash("fault-roll", self.seed, spec.spec_id(), site, token)
        return int(digest[:12], 16) / float(1 << 48)

    def _claim(self, spec: FaultSpec) -> bool:
        """Consume one firing slot; False once the budget is spent."""
        sid = spec.spec_id()
        if self.ledger_dir:
            ledger = Path(self.ledger_dir)
            ledger.mkdir(parents=True, exist_ok=True)
            for slot in range(spec.times):
                try:
                    (ledger / f"{sid}.{slot}").touch(exist_ok=False)
                    return True
                except FileExistsError:
                    continue
            return False
        fired = self._fired.get(sid, 0)
        if fired >= spec.times:
            return False
        self._fired[sid] = fired + 1
        return True

    def should_fire(
        self, site: str, token: str, attempt: int = 1
    ) -> FaultSpec | None:
        """The first spec that claims this event, if any.

        Retries (``attempt > 1``) never fault: every injected transient
        failure is guaranteed to converge under a retry policy.
        """
        if attempt > 1:
            return None
        for spec in self.specs:
            if not fnmatch(site, spec.site):
                continue
            if not fnmatch(token, spec.match):
                continue
            if (
                spec.probability < 1.0
                and self._chance(spec, site, token) >= spec.probability
            ):
                continue
            if self._claim(spec):
                return spec
        return None

    def inject(
        self,
        site: str,
        token: str,
        attempt: int = 1,
        path: str | Path | None = None,
        allow_exit: bool = False,
    ) -> FaultSpec | None:
        """Check the plan at a site and act on the matching spec.

        ``corrupt`` garbles ``path`` in place; ``stall`` sleeps;
        ``raise`` raises :class:`WorkerCrashError`; ``break-pool``
        hard-exits the process when ``allow_exit`` (i.e. inside a pool
        worker) and degrades to ``raise`` otherwise.
        """
        spec = self.should_fire(site, token, attempt)
        if spec is None:
            return None
        if spec.kind == "corrupt":
            if path is not None:
                _corrupt_file(Path(path))
            return spec
        if spec.kind == "stall":
            time.sleep(max(0.0, spec.seconds))
            return spec
        if spec.kind == "break-pool" and allow_exit:
            os._exit(13)
        raise WorkerCrashError(f"{spec.message} [{site} {token}]")
