"""Profiling substrate: variable attribution, BFRVs, major variables."""

from repro.profiling.bfrv import (
    bit_flip_rate_vector,
    dominant_flip_bit,
    window_flip_rates,
)
from repro.profiling.profiler import (
    VariableProfile,
    WorkloadProfile,
    profile_trace,
)
from repro.profiling.variables import UNATTRIBUTED, VariableInfo, VariableRegistry

__all__ = [
    "UNATTRIBUTED",
    "VariableInfo",
    "VariableProfile",
    "VariableRegistry",
    "WorkloadProfile",
    "bit_flip_rate_vector",
    "dominant_flip_bit",
    "profile_trace",
    "window_flip_rates",
]
