"""Trace profiling: per-variable sub-traces and major-variable statistics.

Implements Section 6.2's offline profiling pass and the Experiment 3
analysis behind Table 1: split the external-memory trace into
per-variable sub-traces, count references, measure footprints, and find
the *major variables* — the smallest set covering 80 % of references.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.trace import AccessTrace
from repro.errors import ProfilingError
from repro.profiling.bfrv import bit_flip_rate_vector, window_flip_rates
from repro.profiling.variables import UNATTRIBUTED, VariableRegistry

__all__ = ["VariableProfile", "WorkloadProfile", "profile_trace"]

MAJOR_COVERAGE = 0.8  # "variables that comprise 80% of references"


@dataclass
class VariableProfile:
    """Profiling result for one variable."""

    variable_id: int
    name: str
    size_bytes: int
    references: int
    addresses: np.ndarray  # the variable's sub-trace (addresses only)

    def flip_rates(self, num_bits: int, bit_offset: int = 0) -> np.ndarray:
        """Bit-flip rates of this variable's sub-trace."""
        return bit_flip_rate_vector(self.addresses, num_bits, bit_offset)

    def window_flip_rates(self, window: tuple[int, int]) -> np.ndarray:
        """Flip rates over the chunk-offset window."""
        return window_flip_rates(self.addresses, window)

    def delta_trace(self) -> np.ndarray:
        """XOR deltas between consecutive accesses (the DL model input)."""
        if self.addresses.size < 2:
            return np.zeros(0, dtype=np.uint64)
        return self.addresses[1:] ^ self.addresses[:-1]


@dataclass
class WorkloadProfile:
    """All per-variable profiles for one workload run."""

    name: str
    profiles: list[VariableProfile]
    total_references: int

    def __post_init__(self) -> None:
        self.profiles.sort(key=lambda p: (-p.references, p.variable_id))

    @property
    def num_variables(self) -> int:
        """Distinct profiled variables."""
        return len(self.profiles)

    def major_variables(
        self, coverage: float = MAJOR_COVERAGE
    ) -> list[VariableProfile]:
        """Smallest prefix (by reference count) covering the target share."""
        if not 0 < coverage <= 1:
            raise ProfilingError("coverage must be in (0, 1]")
        majors: list[VariableProfile] = []
        accumulated = 0
        threshold = coverage * self.total_references
        for profile in self.profiles:
            if accumulated >= threshold:
                break
            majors.append(profile)
            accumulated += profile.references
        return majors

    def table1_row(self) -> dict[str, float]:
        """The Table 1 statistics for this workload."""
        majors = self.major_variables()
        sizes_mb = [p.size_bytes / 1e6 for p in majors]
        return {
            "benchmark": self.name,
            "num_variables": self.num_variables,
            "num_major_variables": len(majors),
            "avg_major_size_mb": float(np.mean(sizes_mb)) if sizes_mb else 0.0,
            "min_major_size_mb": float(np.min(sizes_mb)) if sizes_mb else 0.0,
        }

    def by_name(self, name: str) -> VariableProfile:
        """Profile of a variable by name."""
        for profile in self.profiles:
            if profile.name == name:
                return profile
        raise ProfilingError(f"no profile for variable {name!r}")


def profile_trace(
    trace: AccessTrace,
    registry: VariableRegistry,
    name: str = "",
    use_tags: bool = True,
) -> WorkloadProfile:
    """Split a trace per variable and build a workload profile.

    If the trace carries variable tags (the workload models set them)
    and ``use_tags`` is true, those are trusted directly; otherwise
    addresses are attributed through the registry's interval index —
    the call-stack-matching path.
    """
    if use_tags and trace.variables_present().size:
        owner = trace.variable
    else:
        owner = registry.attribute(trace.va)
    profiles: list[VariableProfile] = []
    for info in registry:
        mask = owner == info.variable_id
        count = int(mask.sum())
        if count == 0:
            continue
        profiles.append(
            VariableProfile(
                variable_id=info.variable_id,
                name=info.name,
                size_bytes=info.size_bytes,
                references=count,
                addresses=trace.va[mask],
            )
        )
    attributed = int((owner != UNATTRIBUTED).sum())
    return WorkloadProfile(
        name=name, profiles=profiles, total_references=attributed
    )
